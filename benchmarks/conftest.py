"""Shared helpers for the benchmark suite.

Every benchmark regenerates one paper artifact (figure/analysis) via
:mod:`repro.bench.experiments`, times it with pytest-benchmark
(``rounds=1`` — each run is a full experiment sweep, not a microbench),
prints the paper-style table, and asserts the claimed *shape* (who wins,
what is constant, what scales linearly).
"""

from __future__ import annotations

import pytest

from repro.bench.report import render_table


def run_experiment(benchmark, experiment, **kwargs):
    """Time one experiment function and print its table."""
    result = benchmark.pedantic(
        lambda: experiment(**kwargs), rounds=1, iterations=1, warmup_rounds=0
    )
    headers, rows = result
    print()
    print(render_table(headers, rows))
    return headers, rows


def column(rows, index):
    return [row[index] for row in rows]


@pytest.fixture
def servers_small():
    """Cluster sizes used by the quick benchmark sweeps (paper: 2..8)."""
    return (2, 4, 6, 8)
