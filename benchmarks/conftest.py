"""Shared helpers for the benchmark suite.

Every benchmark regenerates one paper artifact (figure/analysis) via
:mod:`repro.bench.experiments`, times it with pytest-benchmark
(``rounds=1`` — each run is a full experiment sweep, not a microbench),
prints the paper-style table, and asserts the claimed *shape* (who wins,
what is constant, what scales linearly).
"""

from __future__ import annotations

import random

import pytest

from repro.bench.report import render_table

#: The benchmark suite's explicit seed.  Every simulator-backed
#: experiment takes it as a keyword — nothing here may depend on
#: wall-clock time or the process-global RNG, or two runs of the same
#: commit would disagree.
BENCH_SEED = 0


def run_experiment(benchmark, experiment, **kwargs):
    """Time one experiment function and print its table.

    Guards determinism: an experiment that draws from the process-global
    ``random`` stream (instead of its cluster's seeded registry) would
    make run-to-run tables diverge; the state check turns that leak into
    a test failure.
    """
    rng_state = random.getstate()
    result = benchmark.pedantic(
        lambda: experiment(**kwargs), rounds=1, iterations=1, warmup_rounds=0
    )
    assert random.getstate() == rng_state, (
        f"{getattr(experiment, '__name__', experiment)} touched the global "
        "random stream; all randomness must flow through seeded cluster RNGs"
    )
    headers, rows = result
    print()
    print(render_table(headers, rows))
    return headers, rows


def column(rows, index):
    return [row[index] for row in rows]


@pytest.fixture
def servers_small():
    """Cluster sizes used by the quick benchmark sweeps (paper: 2..8)."""
    return (2, 4, 6, 8)
