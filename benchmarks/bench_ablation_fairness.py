"""ABL4 — the fairness mechanism and commit piggybacking.

Design claims from the paper this ablation quantifies:

* commit ("write-phase") piggybacking — "write messages are piggybacked
  on pending write messages without the need for explicit
  acknowledgements" — is what keeps write throughput near the NIC rate;
  sending every commit standalone costs ring slots;
* the nb_msg fairness rule guarantees every origin its share; without
  it, servers prefer their own clients and the latency spread across
  clients widens.
"""

from conftest import BENCH_SEED, run_experiment

from repro.bench.experiments import run_ablation_fairness


def test_ablation_fairness_and_piggyback(benchmark):
    _headers, rows = run_experiment(benchmark, run_ablation_fairness, num_servers=4, seed=BENCH_SEED)
    by_label = {row[0]: row for row in rows}

    default = by_label["default"]
    no_piggyback = by_label["no piggyback"]
    # Standalone commits consume ring slots: measurable throughput loss.
    assert no_piggyback[1] < default[1] * 0.98, (
        f"piggybacking should win: {default[1]:.1f} vs {no_piggyback[1]:.1f}"
    )
    # All configurations still make progress (liveness).
    for label, mbps, _spread in rows:
        assert mbps > 20.0, f"{label} collapsed: {mbps}"
