"""FIG3c — read & write under contention, separate networks (chart 3).

Paper claim: "the write throughput remains constant at around 80 Mbit/s
and the read throughput scales linearly and is almost as high as in the
contention free case (a performance penalty of about 15% is incurred)".
The simulator has no CPU-contention model, so the read penalty here is
smaller (a few percent); the shape — constant writes, linear reads —
is the claim under test.
"""

from conftest import BENCH_SEED, column, run_experiment

from repro.analysis.stats import r_squared
from repro.bench.experiments import run_fig3c


def test_fig3c_contention_separate_networks(benchmark, servers_small):
    _headers, rows = run_experiment(
        benchmark, run_fig3c, servers=servers_small, quick=True, seed=BENCH_SEED
    )
    ns = column(rows, 0)
    reads = column(rows, 1)
    read_per_server = column(rows, 2)
    writes = column(rows, 3)

    assert r_squared(ns, reads) > 0.999, f"contended reads must scale linearly: {reads}"
    assert max(writes) / min(writes) < 1.10, f"writes must stay constant: {writes}"
    # Penalty vs the ~93 Mbit/s contention-free per-server rate is small
    # but reads must remain within the paper's "almost as high" regime.
    assert all(v > 78.0 for v in read_per_server), read_per_server
