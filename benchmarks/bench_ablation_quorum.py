"""ABL1 — ring vs ABD majority quorum (the paper's central comparison).

Claims under test: quorum read throughput cannot scale with servers
([25], Figure 1), while the ring's reads scale linearly; ring write
throughput is constant; and the ring does all this while tolerating
n-1 crashes versus the quorum's minority.
"""

from conftest import BENCH_SEED, column, run_experiment

from repro.bench.experiments import run_ablation_quorum


def test_ablation_ring_vs_quorum(benchmark):
    _headers, rows = run_experiment(benchmark, run_ablation_quorum, servers=(2, 4, 8), seed=BENCH_SEED)
    ns = column(rows, 0)
    ring_reads = column(rows, 1)
    abd_reads = column(rows, 2)
    ring_writes = column(rows, 3)

    # Ring reads scale ~4x from n=2 to n=8; ABD reads do not scale at all.
    assert ring_reads[-1] / ring_reads[0] > 3.5, ring_reads
    assert abd_reads[-1] <= abd_reads[0] * 1.1, (
        f"quorum reads must not scale: {abd_reads}"
    )
    # Crossover: by n=4 the ring reads dominate ABD decisively.
    by_n = dict(zip(ns, zip(ring_reads, abd_reads)))
    assert by_n[4][0] > 2.5 * by_n[4][1]
    assert by_n[8][0] > 5.0 * by_n[8][1]
    # Ring writes stay flat.
    assert max(ring_writes) / min(ring_writes) < 1.08, ring_writes
