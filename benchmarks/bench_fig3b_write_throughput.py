"""FIG3b — write throughput without contention (Figure 3, chart 2).

Paper claim: "the write throughput when the number of servers is between
2 and 8 remains almost constant and is about 80 Mbit/s", and "each
client machine roughly observed the same write throughput, i.e. 80
Mbit/s divided by the number of [writer machines]".
"""

from conftest import BENCH_SEED, column, run_experiment

from repro.bench.experiments import run_fig3b


def test_fig3b_write_throughput_constant(benchmark, servers_small):
    _headers, rows = run_experiment(
        benchmark, run_fig3b, servers=servers_small, quick=True, seed=BENCH_SEED
    )
    totals = column(rows, 1)

    # Constant across cluster sizes (the ring never multicasts).
    assert max(totals) / min(totals) < 1.08, f"write throughput must be flat: {totals}"
    # In the NIC-bound regime (paper: 80; our wire model has no CPU cost,
    # so the constant sits slightly higher).
    assert all(80.0 <= t <= 96.0 for t in totals), totals
