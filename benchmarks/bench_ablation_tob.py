"""ABL3 — the modular (total-order-broadcast) approach caps at 1 op/round.

Paper, Section 4.2: "Algorithms based on underlying total order
broadcast primitives have the same throughput as the underlying atomic
broadcast algorithm for both read and write operations.  The highest
throughput we know of for such algorithms is 1."  Ordering the *reads*
is what kills scalability; the paper's algorithm keeps reads local.

A companion wire-model measurement (`abl3-tob-wire`) is recorded in
EXPERIMENTS.md: with byte-based costs, small read tokens let TOB reads
scale further than the message-count model suggests — an honest caveat
to the paper's round-model argument.
"""

from conftest import column, run_experiment

from repro.bench.experiments import run_ablation_tob


def test_ablation_tob_round_model(benchmark):
    _headers, rows = run_experiment(benchmark, run_ablation_tob, servers=(2, 4, 8))
    ns = column(rows, 0)
    tob = column(rows, 1)
    ours = column(rows, 2)

    # TOB total throughput pinned at ~1/round for every n.
    assert all(t <= 1.05 for t in tob), tob
    # Ours grows as ~n + 1 (n reads + 1 write per round).
    for n, total in zip(ns, ours):
        assert total > n - 0.5, f"expected ~{n + 1} ops/round at n={n}, got {total}"
    assert ours[-1] / tob[-1] > 6.0, "the gap must widen with n"
