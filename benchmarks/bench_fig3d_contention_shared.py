"""FIG3d — read & write under contention, one shared network (chart 4).

Paper claim: "read and write throughput suffer, but the write throughput
remains constant at around 45 Mbit/s whereas the read throughput scales
linearly at about 31 Mbit/s per additional server.  This means that each
server uses about 76 Mbit/s of its incoming and outgoing network
bandwidth despite concurrency."

Our reproduction: the shared NIC round-robins ring forwarding against
client replies, giving writes a roughly constant ~50-60 Mbit/s and reads
~30-45 Mbit/s per server, with each server's transmit side ~93 Mbit/s
utilised.  The split between reads and writes differs from the paper's
(45/31 summing to 76 — their NIC was only ~76% utilised, pointing to CPU
overheads our simulator does not model); the shape and the saturation
statement hold.
"""

from conftest import BENCH_SEED, column, run_experiment

from repro.analysis.stats import linear_fit
from repro.bench.experiments import run_fig3d


def test_fig3d_contention_shared_network(benchmark, servers_small):
    _headers, rows = run_experiment(
        benchmark, run_fig3d, servers=servers_small, quick=True, seed=BENCH_SEED
    )
    ns = column(rows, 0)
    reads = column(rows, 1)
    writes = column(rows, 3)
    per_nic = column(rows, 4)

    # Both are well below the dual-network results (the suffering).
    assert all(w < 70.0 for w in writes), writes
    # Writes stay in a band (roughly constant), never collapsing.
    assert max(writes) / min(writes) < 1.35, f"writes should be roughly flat: {writes}"
    # Reads grow with servers (linear trend, positive slope).
    slope, _ = linear_fit(ns, reads)
    assert slope > 20.0, f"reads must scale with servers: {reads}"
    # Saturation: each server's shared NIC is nearly fully used.
    assert all(v > 85.0 for v in per_nic), per_nic
