"""ABL2 — chain replication reads are tail-bound.

Paper (related work on [28]): "the reads (also called queries) are
always directed to the same single server and are therefore not
scalable."  The chain's tail NIC caps total read throughput at one
server's worth regardless of n; the ring's reads scale linearly.
"""

from conftest import BENCH_SEED, column, run_experiment

from repro.bench.experiments import run_ablation_chain


def test_ablation_chain_reads_flat(benchmark):
    _headers, rows = run_experiment(benchmark, run_ablation_chain, servers=(2, 4, 8), seed=BENCH_SEED)
    ring_reads = column(rows, 1)
    chain_reads = column(rows, 2)

    assert ring_reads[-1] / ring_reads[0] > 3.5, ring_reads
    # Chain reads pinned at ~one NIC of goodput for every cluster size.
    assert max(chain_reads) / min(chain_reads) < 1.05, chain_reads
    assert all(v < 100.0 for v in chain_reads), chain_reads
