"""FIG1 — Figure 1: quorum (A) vs local-read (B) in the round model.

Paper claim: with 3 servers both algorithms have the same (4-round)
latency, but B completes 3 reads/round versus A's 1/round; adding
servers helps B linearly and A not at all.
"""

from conftest import column, run_experiment

from repro.bench.experiments import run_fig1


def test_fig1_quorum_vs_local_reads(benchmark):
    _headers, rows = run_experiment(benchmark, run_fig1, servers=(3, 5, 8))

    by_n = {row[0]: row for row in rows}
    n3 = by_n[3]
    # Paper's exact Figure 1 numbers at n = 3.
    assert abs(n3[1] - 1.0) < 0.1, "algorithm A should complete ~1 read/round"
    assert abs(n3[2] - 3.0) < 0.1, "algorithm B should complete ~3 reads/round"
    assert n3[3] == n3[4] == 4, "both algorithms have 4-round latency"

    # Scaling: B grows ~linearly with n; A stays ~flat.
    a_tputs = column(rows, 1)
    b_tputs = column(rows, 2)
    assert max(a_tputs) < 1.6, f"quorum throughput should stay flat, got {a_tputs}"
    assert b_tputs[-1] > 7.5, f"local reads should reach ~8/round at n=8, got {b_tputs}"
