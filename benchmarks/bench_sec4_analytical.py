"""SEC4 — the Section 4 analytical claims, executed in the round model.

Paper claims: read latency = 2 rounds; write latency = 2N + 2 rounds;
saturated write throughput = 1 op/round for any N; saturated read
throughput = N ops/round, also under write contention.
"""

from conftest import run_experiment

from repro.bench.experiments import run_sec4


def test_sec4_latency_and_throughput(benchmark):
    _headers, rows = run_experiment(benchmark, run_sec4, servers=(2, 3, 5, 8))

    for n, read_lat, write_lat, formula, wtput, rtput, rtput_c in rows:
        assert read_lat == 2, f"read latency must be 2 rounds, got {read_lat}"
        assert write_lat == formula == 2 * n + 2, (
            f"write latency must be 2N+2={2*n+2}, got {write_lat}"
        )
        assert abs(wtput - 1.0) < 0.05, f"write throughput must be ~1/round, got {wtput}"
        assert abs(rtput - n) < 0.05 * n, f"read throughput must be ~n/round, got {rtput}"
        # Under contention the reply slot is shared with ~1 ack/round.
        assert rtput_c > n - 1.05, (
            f"contended read throughput should stay near n, got {rtput_c}"
        )
