"""ABL5 — broadcast write-all collapses under ethernet collisions.

Paper, Section 1: "if write messages are simply broadcast to all
servers, the throughput would suffer even more drastically under high
load ... when receiving several messages at the same time, collisions
occur at the network layer.  A retransmission is thus necessary, in turn
causing even more collisions, ultimately harming the throughput of
write operations."  The ring never multicasts, so its write throughput
is immune to the collapse.
"""

from conftest import BENCH_SEED, column, run_experiment

from repro.bench.experiments import run_ablation_collisions


def test_ablation_multicast_collapse(benchmark):
    _headers, rows = run_experiment(benchmark, run_ablation_collisions, servers=(2, 4, 8), seed=BENCH_SEED)
    ns = column(rows, 0)
    ring = column(rows, 1)
    multicast = column(rows, 3)

    # Ring write throughput flat across n.
    assert max(ring) / min(ring) < 1.08, ring
    # Multicast write-all collapses under saturated concurrent writers:
    # overlapping frames destroy each other and the exponential backoff
    # cannot separate back-to-back 4 KiB frames.
    assert all(mc < 0.5 * r for mc, r in zip(multicast, ring)), (
        f"collision collapse expected: multicast={multicast} ring={ring}"
    )
    assert min(multicast) < 20.0, multicast
