"""FIG3a — read throughput without contention (Figure 3, chart 1).

Paper claim: "the total read throughput increases linearly and is equal
to 90 MBit/s per server" on 100 Mbit/s NICs (2..8 servers).
"""

from conftest import BENCH_SEED, column, run_experiment

from repro.analysis.stats import linear_fit, r_squared
from repro.bench.experiments import run_fig3a


def test_fig3a_read_scaling_is_linear(benchmark, servers_small):
    _headers, rows = run_experiment(
        benchmark, run_fig3a, servers=servers_small, quick=True, seed=BENCH_SEED
    )
    ns = column(rows, 0)
    totals = column(rows, 1)
    per_server = column(rows, 2)

    # Linearity: slope ~ per-server rate, excellent fit.
    slope, intercept = linear_fit(ns, totals)
    assert r_squared(ns, totals) > 0.999, f"read scaling must be linear: {totals}"
    assert 80.0 <= slope <= 100.0, f"per-server slope ~90 Mbit/s (paper), got {slope:.1f}"

    # Per-server rate is flat and in the paper's 90 Mbit/s regime.
    assert max(per_server) - min(per_server) < 3.0, per_server
    assert all(85.0 <= v <= 96.0 for v in per_server), per_server
