"""FIG4 — unloaded operation latency vs number of servers.

Paper claim: "Because of the ring topology, the write latency grows
linearly with the number of servers.  The read latency stays constant
since it involves only a single round-trip between the client and a
server."
"""

from conftest import BENCH_SEED, column, run_experiment

from repro.analysis.stats import linear_fit, r_squared
from repro.bench.experiments import run_fig4


def test_fig4_latency_shapes(benchmark):
    _headers, rows = run_experiment(benchmark, run_fig4, servers=(2, 3, 4, 5, 6, 7, 8), seed=BENCH_SEED)
    ns = column(rows, 0)
    read_ms = column(rows, 1)
    write_ms = column(rows, 2)

    # Reads: constant (one client-server round trip).
    assert max(read_ms) - min(read_ms) < 0.05, read_ms

    # Writes: linear in n (two ring traversals), strong fit.
    slope, intercept = linear_fit(ns, write_ms)
    assert slope > 0.5, f"write latency must grow with n: {write_ms}"
    assert r_squared(ns, write_ms) > 0.999, write_ms

    # Write latency exceeds read latency everywhere (2N+2 vs 2 rounds).
    assert all(w > r for w, r in zip(write_ms, read_ms))
