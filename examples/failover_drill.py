#!/usr/bin/env python3
"""Failover drill: crash servers one by one down to a single survivor.

Demonstrates the paper's resilience claim — the storage tolerates the
crash of n-1 of its n servers — and the client behaviour: "when their
request times out, they simply re-send it to another server."  Every
value written before a crash remains readable after it, and the recorded
operation history checks out as linearizable.

Run:  python examples/failover_drill.py
"""

from repro import AtomicStorage, ProtocolConfig, SimCluster
from repro.analysis import History, check_register_history


def main() -> None:
    config = ProtocolConfig(client_timeout=0.08, client_max_retries=20)
    cluster = SimCluster.build(num_servers=5, seed=42, protocol=config)
    cluster.history = History()
    storage = AtomicStorage.over(cluster, home_server=0)

    storage.write(b"genesis")
    print(f"[t={cluster.now*1e3:7.2f} ms] wrote 'genesis'; servers up: "
          f"{cluster.alive_servers()}")

    for epoch, victim in enumerate([0, 1, 2, 3]):
        cluster.crash_server(victim)
        cluster.run(until=cluster.now + 0.25)  # let the ring reconfigure
        value = b"epoch-%d" % epoch
        storage.write(value)  # may retry: the home server might be dead
        got = storage.read()
        retries = storage.client.protos[storage.client.client_id].stats_retries
        print(
            f"[t={cluster.now*1e3:7.2f} ms] crashed s{victim}; "
            f"wrote+read {got!r}; alive={cluster.alive_servers()}; "
            f"client retries so far: {retries}"
        )
        assert got == value

    assert cluster.alive_servers() == [4], "one survivor left"
    print(f"\nfinal read from the last survivor: {storage.read()!r}")

    cluster.history.close()
    ok, reason = check_register_history(cluster.history)
    print(f"history of {len(cluster.history)} operations linearizable: {ok} ({reason})")
    assert ok


if __name__ == "__main__":
    main()
