#!/usr/bin/env python3
"""Quickstart: a replicated atomic register in five lines.

Builds a five-server simulated cluster (the paper's ring algorithm over
100 Mbit/s NICs), writes and reads through the public API, and shows
that a second client — bound to a different server — observes the same
linearizable register.

Run:  python examples/quickstart.py
"""

from repro import AtomicStorage, SimCluster


def main() -> None:
    cluster = SimCluster.build(num_servers=5, seed=7)
    storage = AtomicStorage.over(cluster)

    storage.write(b"hello, ring")
    print(f"written and acknowledged at t={cluster.now * 1e3:.3f} ms (simulated)")
    print(f"read back: {storage.read()!r}")

    # A second client on a different server sees the same register.
    other = AtomicStorage.over(cluster, home_server=3)
    print(f"read via server 3: {other.read()!r}")

    other.write(b"updated elsewhere")
    print(f"first client now reads: {storage.read()!r}")

    # Peek at the protocol internals the paper describes.
    server = cluster.servers[0].proto
    print(
        f"\nserver 0 state: tag={server.tag}, "
        f"{server.stats_writes_initiated} writes initiated, "
        f"{server.stats_forwards} pre-writes forwarded, "
        f"{server.stats_commits_processed} commits processed"
    )


if __name__ == "__main__":
    main()
