#!/usr/bin/env python3
"""A real TCP cluster on localhost: the deployable implementation.

Runs the exact same protocol state machines as the simulator over real
asyncio sockets (as the paper's C implementation ran over its cluster),
including the connection-break failure detector: after a server is
killed, the next ring transmission fails, the predecessor splices the
ring, and a client that timed out retries at another server.

Run:  python examples/asyncio_cluster.py
"""

import asyncio
import time

from repro.core.config import ProtocolConfig
from repro.runtime.asyncio_net import AsyncCluster


async def main() -> None:
    config = ProtocolConfig(client_timeout=0.4, client_max_retries=10)
    cluster = AsyncCluster(4, config)
    await cluster.start()
    print(f"4 servers listening on: {sorted(cluster.addresses.values())}")

    alice = cluster.client(home_server=0)
    bob = cluster.client(home_server=2)

    await alice.write(b"over real sockets")
    print(f"bob reads: {await bob.read()!r}")

    # Measure a burst of small operations.
    started = time.perf_counter()
    ops = 50
    for i in range(ops):
        await alice.write(b"burst-%02d" % i)
    elapsed = time.perf_counter() - started
    print(f"{ops} sequential writes in {elapsed*1e3:.1f} ms "
          f"({ops/elapsed:.0f} writes/s on localhost)")

    # Kill bob's home server; bob's next op retries elsewhere.
    print("\ncrashing server 2 (bob's home server)...")
    await cluster.crash_server(2)
    await asyncio.sleep(0.05)
    await bob.write(b"bob failed over")
    print(f"alice reads after failover: {await alice.read()!r}")

    await alice.close()
    await bob.close()
    await cluster.stop()
    print("cluster stopped cleanly")


if __name__ == "__main__":
    asyncio.run(main())
