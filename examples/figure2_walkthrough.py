#!/usr/bin/env python3
"""Figure 2, narrated: how the pre-write phase prevents read inversion.

Replays the paper's illustration run on five servers, printing what each
reader observes at each stage of a write's two-phase journey:

1. while the pre-write circulates, a server that has forwarded it makes
   readers *wait*, while an untouched server still answers the old value
   (safe: the new value is not committed anywhere yet);
2. as the commit passes each server, its readers switch to the new
   value — and crucially, once anyone has seen v2, nobody can see v1
   again.

Run:  python examples/figure2_walkthrough.py
"""

from repro.core.config import ProtocolConfig
from repro.core.ring import RingView
from repro.core.server import ServerProtocol
from repro.core.messages import ClientRead, ClientWrite, OpId


def main() -> None:
    n = 5
    ring = RingView.initial(n)
    servers = [ServerProtocol(i, ring, ProtocolConfig()) for i in range(n)]
    in_flight: list[tuple[int, object]] = []
    replies: list = []

    def pump(label: str) -> None:
        nonlocal in_flight
        for server in servers:
            message = server.next_ring_message()
            if message is not None:
                in_flight.append((server.successor, message))
        deliveries, in_flight = in_flight, []
        for dst, message in deliveries:
            replies.extend(servers[dst].on_ring_message(message))
        print(f"  -- {label}")

    def read_at(server_id: int, who: str) -> None:
        op = OpId(hash(who) % 1000, read_at.seq)
        read_at.seq += 1
        before = len(replies)
        replies.extend(servers[server_id].on_client_message(op.client, ClientRead(op)))
        if len(replies) > before:
            print(f"  reader at s{server_id} ({who}): -> {replies[-1].message.value!r}")
        else:
            print(f"  reader at s{server_id} ({who}): ... waits (pre-write pending)")

    read_at.seq = 0

    # Pre-populate v1.
    servers[0].on_client_message(1, ClientWrite(OpId(1, 0), b"v1"))
    for _ in range(12):
        pump("(pre-populating v1)")
        if all(s.value == b"v1" and not s.has_ring_work for s in servers):
            break
    print(f"\nall servers hold v1; W(v2) now arrives at s0\n")

    servers[0].on_client_message(2, ClientWrite(OpId(2, 0), b"v2"))
    pump("s0 sends pre_write(v2) to s1")
    pump("s1 forwards pre_write(v2) to s2")
    pump("s2 forwards pre_write(v2) to s3")
    print("\nphase 1 in progress: s1, s2, s3 hold the pre-write pending")
    read_at(2, "reader R1")   # waits: s2 forwarded the pre-write
    read_at(4, "reader R2")   # immediate v1: s4 has not seen it

    pump("s3 forwards pre_write(v2) to s4")
    pump("s4 forwards pre_write(v2) back to s0 (circle complete)")
    pump("s0 installs v2 and sends the commit (the 'write' message)")
    print("\nphase 2: the commit is circulating")
    read_at(1, "reader R3")   # s1 may have committed already or waits

    for label in ("commit passes s2", "commit passes s3", "commit passes s4",
                  "commit returns to s0: client acked"):
        pump(label)
    read_at(2, "reader R4")
    read_at(4, "reader R5")

    print("\nfinal state:")
    for server in servers:
        print(f"  s{server.server_id}: value={server.value!r} tag={server.tag}")


if __name__ == "__main__":
    main()
