#!/usr/bin/env python3
"""A multi-register block store — the "distributed storage system" layer.

The paper's introduction: "Distributed storage systems combine multiple
of these read/write objects, each storing its share of data, as building
blocks for a single large storage system."  This example builds a
16-block store over four servers (one independent atomic register per
block, multiplexed over the same machines and NICs), writes a small
"file" across blocks, crashes a server, and reads the file back intact.

Run:  python examples/block_store.py
"""

from repro.core.config import ProtocolConfig
from repro.core.sharded import BlockStore

BLOCK_SIZE = 512


def main() -> None:
    store = BlockStore.build(
        num_servers=4,
        num_blocks=16,
        seed=11,
        protocol=ProtocolConfig(client_timeout=0.1, client_max_retries=20),
    )

    document = (
        b"A high-throughput atomic storage keeps reads local and pushes "
        b"writes around a ring twice: once to warn every server "
        b"(pre-write), once to commit. " * 8
    )
    blocks = [document[i : i + BLOCK_SIZE] for i in range(0, len(document), BLOCK_SIZE)]
    print(f"storing a {len(document)}-byte document across {len(blocks)} blocks")
    for index, chunk in enumerate(blocks):
        store.write_block(index, chunk)

    print("crashing server 1 mid-life...")
    store.cluster.crash_server(1)
    store.cluster.run(until=store.cluster.now + 0.2)

    recovered = b"".join(store.read_block(i) for i in range(len(blocks)))
    assert recovered == document, "document must survive the crash"
    print(f"document intact after the crash ({len(recovered)} bytes).")
    print(f"alive servers: {store.cluster.alive_servers()}")

    store.write_block(0, b"updated first block".ljust(BLOCK_SIZE, b"."))
    print(f"block 0 after update: {store.read_block(0)[:19]!r}...")


if __name__ == "__main__":
    main()
