#!/usr/bin/env python3
"""Reproduce the shape of Figure 3 at your terminal (small-scale).

Sweeps 2..8 servers for the paper's two headline experiments — read-only
load (linear scaling, ~90 Mbit/s per server) and write-only load
(constant throughput) — and renders the series as tables plus an ASCII
chart.  This is the same harness the benchmark suite uses, with short
measurement windows so it finishes in under a minute.

Run:  python examples/throughput_scaling.py
"""

from repro.bench.experiments import run_fig3a, run_fig3b
from repro.bench.report import render_chart, render_table


def main() -> None:
    servers = (2, 3, 4, 5, 6, 7, 8)

    print("Figure 3 chart 1 — read throughput, no contention")
    headers, rows = run_fig3a(servers=servers, quick=True)
    print(render_table(headers, rows))
    reads = [row[1] for row in rows]

    print("\nFigure 3 chart 2 — write throughput, no contention")
    headers, rows = run_fig3b(servers=servers, quick=True)
    print(render_table(headers, rows))
    writes = [row[1] for row in rows]

    print("\nTotal throughput vs number of servers (Mbit/s):")
    print(
        render_chart(
            list(servers),
            {"reads": reads, "writes": writes},
            y_label="Mbit/s",
        )
    )
    print(
        "\nPaper's claims: reads scale linearly (~90 Mbit/s per server); "
        "writes stay constant regardless of cluster size."
    )


if __name__ == "__main__":
    main()
