"""Chaos run execution: workload + fault plan + linearizability gate.

:func:`run_schedule` builds a fresh simulated cluster for one
:class:`~repro.chaos.schedule.ChaosSchedule`, drives a closed-loop
mixed read/write workload while the schedule's fault plan fires, records
the complete operation history, and gates the run through the
value-based linearizability checker
(:func:`repro.analysis.linearizability.check_register_history`).

Every protocol of the repo's zoo can be the target: the paper's ring
algorithm (``core``) and each baseline.  The naive read-one/write-all
baseline is *expected* to violate atomicity — that anomaly is the
paper's motivation — so its violations are reported as expected
anomalies rather than failures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.analysis.history import History
from repro.analysis.linearizability import check_register_history
from repro.baselines import (
    build_abd_cluster,
    build_chain_cluster,
    build_naive_cluster,
    build_tob_cluster,
)
from repro.chaos.schedule import (
    CORE_PROFILE,
    GENTLE_PROFILE,
    PARTITION_PROFILE,
    PROFILES,
    ChaosProfile,
    ChaosSchedule,
)
from repro.errors import ConfigurationError
from repro.runtime.sim_net import SimCluster


@dataclass(frozen=True)
class ProtocolTarget:
    """One protocol the chaos harness can attack."""

    name: str
    builder: object  # (num_servers, seed=..., protocol=...) -> SimCluster
    profile: ChaosProfile
    #: Whether a linearizability violation fails the run (False only for
    #: the naive baseline, whose read inversion is the expected anomaly).
    atomic: bool = True


def _build_core(num_servers: int, **kwargs) -> SimCluster:
    return SimCluster.build(num_servers=num_servers, **kwargs)


TARGETS: dict[str, ProtocolTarget] = {
    "core": ProtocolTarget("core", _build_core, CORE_PROFILE),
    "abd": ProtocolTarget("abd", build_abd_cluster, GENTLE_PROFILE),
    "chain": ProtocolTarget("chain", build_chain_cluster, GENTLE_PROFILE),
    "tob": ProtocolTarget("tob", build_tob_cluster, GENTLE_PROFILE),
    "naive": ProtocolTarget("naive", build_naive_cluster, GENTLE_PROFILE, atomic=False),
}

#: Trace counters proving a fault type actually fired during a run.
#: Where possible these count *effect*, not injection: a partition is
#: exercised when it held or dropped a frame, not merely when its cut
#: was installed.
_KIND_COUNTERS = {
    "crash": ("process.crashes",),
    "restart": ("process.restarts",),
    "partition": ("nemesis.held", "nemesis.cut_drops"),
    "drop": ("nemesis.drops",),
    "delay": ("nemesis.delayed",),
    "duplicate": ("nemesis.dup_deliveries",),
    "throttle": ("nemesis.throttles",),
    "pause": ("nemesis.pauses",),
}


@dataclass
class ChaosResult:
    """Outcome of one chaos run."""

    schedule: ChaosSchedule
    protocol: str
    linearizable: bool
    reason: str
    ops_completed: int
    ops_open: int
    ops_failed: int
    #: Completions required for the run to count as live: an empty or
    #: near-empty history passes the linearizability check vacuously, so
    #: safety alone would let a total deadlock report green.
    ops_required: int = 0
    exercised: set[str] = field(default_factory=set)
    #: Session-layer activity (repro.transport.reliable): proof that the
    #: implemented channel machinery — not generator restraint — is what
    #: kept the run inside the protocol's reliable-FIFO model.
    retransmits: int = 0
    dups_suppressed: int = 0
    #: Imperfect-detector activity (fd="heartbeat" profiles): suspicions
    #: raised against servers that were actually alive — the in-trace
    #: proof that a run exercised wrong suspicion — and data frames the
    #: epoch guard rejected as stale.
    wrong_suspicions: int = 0
    stale_epoch_drops: int = 0
    wall_seconds: float = 0.0

    @property
    def progressed(self) -> bool:
        return self.ops_completed >= self.ops_required

    @property
    def ok(self) -> bool:
        """Whether the run passes its gate (naive may violate safety,
        but even naive must make progress)."""
        if not self.progressed:
            return False
        if TARGETS[self.protocol].atomic:
            return self.linearizable
        return True

    @property
    def anomaly(self) -> bool:
        return not self.linearizable and not TARGETS[self.protocol].atomic

    def describe(self) -> str:
        if not self.progressed:
            verdict = f"STALLED: {self.ops_completed}/{self.ops_required} required ops"
        elif self.linearizable:
            verdict = "OK"
        elif self.anomaly:
            verdict = "ANOMALY (expected)"
        else:
            verdict = f"VIOLATION: {self.reason}"
        kinds = ",".join(sorted(self.exercised)) or "none"
        imperfect = (
            f"wrongsusp={self.wrong_suspicions} stale={self.stale_epoch_drops} "
            if self.wrong_suspicions or self.stale_epoch_drops
            else ""
        )
        return (
            f"{self.protocol:<5} {self.schedule.describe()} "
            f"done={self.ops_completed} open={self.ops_open} "
            f"failed={self.ops_failed} hit={kinds} "
            f"rtx={self.retransmits} dup={self.dups_suppressed} {imperfect}"
            f"-> {verdict} ({self.wall_seconds:.2f}s)"
        )


def run_schedule(schedule: ChaosSchedule, protocol: str = "core") -> ChaosResult:
    """Execute one chaos schedule against ``protocol`` and gate it."""
    target = TARGETS.get(protocol)
    if target is None:
        raise ConfigurationError(
            f"unknown protocol {protocol!r}; choose from {sorted(TARGETS)}"
        )
    if protocol != "core" and schedule.profile != target.profile.name:
        raise ConfigurationError(
            f"protocol {protocol!r} only survives {target.profile.name!r} "
            f"schedules, got a {schedule.profile!r} one (crashes and message "
            "loss are outside the failure-free baselines' model)"
        )
    profile = PROFILES.get(schedule.profile, target.profile)
    builder_kwargs = {}
    if profile.fd != "perfect":
        # Heartbeat schedules run the imperfect detector (and therefore
        # epoch-guarded quorum-installed views) in the cluster.
        builder_kwargs["fd"] = profile.fd
    started = time.perf_counter()
    cluster = target.builder(
        schedule.num_servers,
        seed=schedule.cluster_seed,
        protocol=schedule.config,
        **builder_kwargs,
    )
    cluster.history = History()

    progress = {"left": schedule.num_clients, "failed": 0}
    # Pace each client's operations across the whole fault span so the
    # workload demonstrably overlaps every scheduled fault window; the
    # stagger desynchronises clients to maximise read/write concurrency.
    pacing = schedule.workload_span / max(1, schedule.ops_per_client)

    def spawn(host, kind: str, stagger: float) -> None:
        state = {"seq": 0}

        def on_complete(result) -> None:
            if not result.ok:
                progress["failed"] += 1
            state["seq"] += 1
            if state["seq"] >= schedule.ops_per_client:
                progress["left"] -= 1
                return
            cluster.env.scheduler.schedule(pacing, issue)

        def issue() -> None:
            if kind == "write":
                stamp = b"%d:%d" % (host.client_id, state["seq"])
                host.write(stamp.ljust(schedule.value_size, b"."), on_complete)
            else:
                host.read(on_complete)

        cluster.env.scheduler.schedule(stagger, issue)

    num_clients = schedule.num_clients
    for i in range(schedule.writers):
        spawn(cluster.add_client(home_server=i % schedule.num_servers), "write",
              stagger=pacing * i / max(1, num_clients))
    for i in range(schedule.readers):
        spawn(cluster.add_client(home_server=i % schedule.num_servers), "read",
              stagger=pacing * (schedule.writers + i) / max(1, num_clients))

    # Faults are applied after the clients exist so client-side links
    # (partitions isolating clients) resolve to real processes.
    cluster.apply_faults(schedule.plan)

    scheduler = cluster.env.scheduler
    while progress["left"] > 0 and cluster.now < schedule.deadline:
        if not scheduler.step():
            break  # idle: every remaining operation is permanently stalled

    cluster.history.close()
    ok, reason = check_register_history(cluster.history)

    counters = cluster.env.trace.counters
    exercised = {
        kind
        for kind, names in _KIND_COUNTERS.items()
        if any(counters.get(name, 0) > 0 for name in names)
    }
    completed = len(cluster.history.completed())
    total_ops = schedule.num_clients * schedule.ops_per_client
    # Gentle schedules lose nothing, so every operation must complete;
    # under the full menu, retry exhaustion may legitimately fail a few
    # ops, but losing more than half the workload is a liveness bug.
    required = total_ops if not target.profile.retries else (total_ops + 1) // 2
    return ChaosResult(
        schedule=schedule,
        protocol=protocol,
        linearizable=ok,
        reason=reason if not ok else "",
        ops_completed=completed,
        ops_open=len(cluster.history) - completed,
        ops_failed=progress["failed"],
        ops_required=required,
        exercised=exercised,
        retransmits=counters.get("reliable.retransmits", 0),
        dups_suppressed=counters.get("reliable.dups_suppressed", 0),
        wrong_suspicions=counters.get("fd.wrong_suspicions", 0),
        stale_epoch_drops=counters.get("epoch.stale_dropped", 0),
        wall_seconds=time.perf_counter() - started,
    )
