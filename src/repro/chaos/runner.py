"""Chaos run execution: workload + fault plan + linearizability gate.

:func:`run_schedule` builds a fresh simulated cluster for one
:class:`~repro.chaos.schedule.ChaosSchedule`, drives a closed-loop
mixed read/write workload while the schedule's fault plan fires, records
the complete operation history, and gates the run through the
value-based linearizability checker
(:func:`repro.analysis.linearizability.check_register_history`).

Every protocol of the repo's zoo can be the target: the paper's ring
algorithm (``core``) and each baseline.  The naive read-one/write-all
baseline is *expected* to violate atomicity — that anomaly is the
paper's motivation — so its violations are reported as expected
anomalies rather than failures.
"""

from __future__ import annotations

import multiprocessing
import random
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.history import History
from repro.analysis.linearizability import check_register_history, check_tagged_history
from repro.baselines import (
    build_abd_cluster,
    build_chain_cluster,
    build_naive_cluster,
    build_tob_cluster,
)
from repro.chaos.schedule import (
    CORE_PROFILE,
    GENTLE_PROFILE,
    LEASE_PROFILE,
    PARTITION_PROFILE,
    SCALE_PROFILE,
    SKEW_PROFILE,
    PROFILES,
    ChaosProfile,
    ChaosSchedule,
)
from repro.sim.counters import (
    CODING_FRAGMENT_STORES,
    CODING_RECONSTRUCTIONS,
    CODING_REPAIRS,
    EPOCH_STALE_DROPPED,
    FD_WRONG_SUSPICIONS,
    LEASE_FALLBACKS,
    LEASE_LOCAL_READS,
    LEASE_WAITOUTS,
    MIGRATION_ABORTED,
    MIGRATION_COMPLETED,
    MIGRATION_SPLITS,
    NEMESIS_CLOCK_SKEWS,
    NEMESIS_CUT_DROPS,
    NEMESIS_DELAYED,
    NEMESIS_DROPS,
    NEMESIS_DUP_DELIVERIES,
    NEMESIS_HELD,
    NEMESIS_PAUSES,
    NEMESIS_THROTTLES,
    PROCESS_CRASHES,
    PROCESS_RESTARTS,
    RELIABLE_BATCHED_FRAMES,
    RELIABLE_BATCHED_MESSAGES,
    RELIABLE_DUPS_SUPPRESSED,
    RELIABLE_RETRANSMITS,
    SHARD_REDIRECTS,
)
from repro.core.sharded import (
    ShardedServerHost,
    add_shard_client,
    build_elastic_cluster,
)
from repro.errors import ConfigurationError
from repro.runtime.sim_net import SimCluster
from repro.sim.rng import derive_seed


@dataclass(frozen=True)
class ProtocolTarget:
    """One protocol the chaos harness can attack."""

    name: str
    builder: object  # (num_servers, seed=..., protocol=...) -> SimCluster
    profile: ChaosProfile
    #: Whether a linearizability violation fails the run (False only for
    #: the naive baseline, whose read inversion is the expected anomaly).
    atomic: bool = True


def _build_core(num_servers: int, **kwargs) -> SimCluster:
    return SimCluster.build(num_servers=num_servers, **kwargs)


def _build_sharded(num_servers: int, num_blocks: int = 8, **kwargs) -> SimCluster:
    """A cluster whose servers each host one protocol instance per block."""

    def factory(cluster: SimCluster, server_id: int) -> ShardedServerHost:
        return ShardedServerHost(cluster, server_id, num_blocks)

    return SimCluster.build(num_servers=num_servers, host_factory=factory, **kwargs)


TARGETS: dict[str, ProtocolTarget] = {
    "core": ProtocolTarget("core", _build_core, CORE_PROFILE),
    "sharded": ProtocolTarget("sharded", _build_sharded, SCALE_PROFILE),
    "abd": ProtocolTarget("abd", build_abd_cluster, GENTLE_PROFILE),
    "chain": ProtocolTarget("chain", build_chain_cluster, GENTLE_PROFILE),
    "tob": ProtocolTarget("tob", build_tob_cluster, GENTLE_PROFILE),
    "naive": ProtocolTarget("naive", build_naive_cluster, GENTLE_PROFILE, atomic=False),
}

#: Trace counters proving a fault type actually fired during a run.
#: Where possible these count *effect*, not injection: a partition is
#: exercised when it held or dropped a frame, not merely when its cut
#: was installed.
_KIND_COUNTERS = {
    "crash": (PROCESS_CRASHES,),
    "restart": (PROCESS_RESTARTS,),
    "partition": (NEMESIS_HELD, NEMESIS_CUT_DROPS),
    "drop": (NEMESIS_DROPS,),
    "delay": (NEMESIS_DELAYED,),
    "duplicate": (NEMESIS_DUP_DELIVERIES,),
    "throttle": (NEMESIS_THROTTLES,),
    "pause": (NEMESIS_PAUSES,),
    "clock_skew": (NEMESIS_CLOCK_SKEWS,),
}


@dataclass
class ChaosResult:
    """Outcome of one chaos run."""

    schedule: ChaosSchedule
    protocol: str
    linearizable: bool
    reason: str
    ops_completed: int
    ops_open: int
    ops_failed: int
    #: Completions required for the run to count as live: an empty or
    #: near-empty history passes the linearizability check vacuously, so
    #: safety alone would let a total deadlock report green.
    ops_required: int = 0
    exercised: set[str] = field(default_factory=set)
    #: Session-layer activity (repro.transport.reliable): proof that the
    #: implemented channel machinery — not generator restraint — is what
    #: kept the run inside the protocol's reliable-FIFO model.
    retransmits: int = 0
    dups_suppressed: int = 0
    #: Ring-frame batching activity: frames that carried more than one
    #: session segment, and the segments they carried.  Nonzero proves a
    #: batched run actually exercised the batched wire path rather than
    #: degenerating to one-message frames.
    batched_frames: int = 0
    batched_messages: int = 0
    #: Imperfect-detector activity (fd="heartbeat" profiles): suspicions
    #: raised against servers that were actually alive — the in-trace
    #: proof that a run exercised wrong suspicion — and data frames the
    #: epoch guard rejected as stale.
    wrong_suspicions: int = 0
    stale_epoch_drops: int = 0
    #: Leased-read activity (``read_leases`` profiles): reads served
    #: locally under a valid lease, reads that fell back to a ring
    #: fence, and old-epoch wait-outs honoured at view installs — the
    #: in-trace proof that a run exercised the leased path and its
    #: safety machinery rather than silently fencing everything.
    lease_local_reads: int = 0
    lease_fallbacks: int = 0
    lease_waitouts: int = 0
    #: Coded-backend activity (``value_coding="coded"`` profiles):
    #: fragments scattered by writes, full-value reconstructions served
    #: to readers, and fragment *repairs* — shares re-derived from k
    #: peers by a reconfiguration merge or a read that found its local
    #: share stale.  Nonzero repairs are the in-trace proof that a run
    #: exercised coded durability, not just coded steady state.
    coding_fragment_stores: int = 0
    coding_reconstructions: int = 0
    coding_repairs: int = 0
    #: Sharded runs: how many per-block histories passed the tagged
    #: gate, and the fraction of completed operations carrying a
    #: protocol tag (the gate demands 1.0 — an untagged op would make
    #: the tagged check vacuous, not green).
    blocks_checked: int = 0
    tag_coverage: Optional[float] = None
    #: Elastic runs: live-migration activity.  ``migration_required``
    #: makes completed migrations part of the per-run gate — a skew run
    #: whose rebalancer never moved a block would pass the checker
    #: while exercising none of the machinery under test.
    migration_required: bool = False
    migrations_completed: int = 0
    migrations_aborted: int = 0
    migration_splits: int = 0
    shard_redirects: int = 0
    wall_seconds: float = 0.0

    @property
    def progressed(self) -> bool:
        return self.ops_completed >= self.ops_required

    @property
    def migrated(self) -> bool:
        return not self.migration_required or self.migrations_completed >= 1

    @property
    def ok(self) -> bool:
        """Whether the run passes its gate (naive may violate safety,
        but even naive must make progress)."""
        if not self.progressed:
            return False
        if not self.migrated:
            return False
        if TARGETS[self.protocol].atomic:
            return self.linearizable
        return True

    @property
    def anomaly(self) -> bool:
        return not self.linearizable and not TARGETS[self.protocol].atomic

    def describe(self) -> str:
        if not self.progressed:
            verdict = f"STALLED: {self.ops_completed}/{self.ops_required} required ops"
        elif not self.migrated:
            verdict = "NO MIGRATION: rebalancer never completed a move"
        elif self.linearizable:
            verdict = "OK"
        elif self.anomaly:
            verdict = "ANOMALY (expected)"
        else:
            verdict = f"VIOLATION: {self.reason}"
        kinds = ",".join(sorted(self.exercised)) or "none"
        imperfect = (
            f"wrongsusp={self.wrong_suspicions} stale={self.stale_epoch_drops} "
            if self.wrong_suspicions or self.stale_epoch_drops
            else ""
        )
        leases = (
            f"lease={self.lease_local_reads}lo/{self.lease_fallbacks}fb/"
            f"{self.lease_waitouts}wo "
            if self.lease_local_reads or self.lease_fallbacks
            else ""
        )
        coded = (
            f"coded={self.coding_fragment_stores}fs/"
            f"{self.coding_reconstructions}rc/{self.coding_repairs}rp "
            if self.coding_fragment_stores or self.coding_repairs
            else ""
        )
        sharded = (
            f"blocks={self.blocks_checked} "
            f"tagcov={self.tag_coverage:.3f} "
            if self.tag_coverage is not None
            else ""
        )
        elastic = (
            f"mig={self.migrations_completed}c/{self.migrations_aborted}a/"
            f"{self.migration_splits}s redir={self.shard_redirects} "
            if self.migration_required
            else ""
        )
        batching = (
            f"batched={self.batched_frames}f/{self.batched_messages}m "
            if self.batched_frames
            else ""
        )
        return (
            f"{self.protocol:<5} {self.schedule.describe()} "
            f"done={self.ops_completed} open={self.ops_open} "
            f"failed={self.ops_failed} hit={kinds} "
            f"rtx={self.retransmits} dup={self.dups_suppressed} {batching}"
            f"{imperfect}{leases}{coded}{sharded}{elastic}"
            f"-> {verdict} ({self.wall_seconds:.2f}s)"
        )


def run_schedule(schedule: ChaosSchedule, protocol: str = "core") -> ChaosResult:
    """Execute one chaos schedule against ``protocol`` and gate it."""
    target = TARGETS.get(protocol)
    if target is None:
        raise ConfigurationError(
            f"unknown protocol {protocol!r}; choose from {sorted(TARGETS)}"
        )
    allowed_profiles = {target.profile.name}
    if protocol == "sharded":
        # The sharded block store runs both the uniform benchmark-scale
        # profile and the elastic skewed one.
        allowed_profiles.add(SKEW_PROFILE.name)
    if protocol != "core" and schedule.profile not in allowed_profiles:
        raise ConfigurationError(
            f"protocol {protocol!r} only survives {sorted(allowed_profiles)} "
            f"schedules, got a {schedule.profile!r} one (crashes and message "
            "loss are outside the failure-free baselines' model)"
        )
    if schedule.num_blocks > 1 and protocol != "sharded":
        raise ConfigurationError(
            f"schedule targets {schedule.num_blocks} blocks; only the "
            "'sharded' protocol hosts a multi-register cluster"
        )
    profile = PROFILES.get(schedule.profile, target.profile)
    builder_kwargs = {}
    if profile.fd != "perfect":
        # Heartbeat schedules run the imperfect detector (and therefore
        # epoch-guarded quorum-installed views) in the cluster.
        builder_kwargs["fd"] = profile.fd
    if protocol == "sharded":
        builder_kwargs["num_blocks"] = schedule.num_blocks
    started = time.perf_counter()  # staticheck: allow(determinism.wall-clock) -- wall_seconds is diagnostic reporting only; nothing simulated reads it
    if profile.elastic:
        # Elastic skew run: explicit placement over the profile's rings
        # with the rebalancer live.  Its cadence is drawn per schedule so
        # the first tick (and therefore the migration window) sweeps
        # across the crash window over a batch — some runs migrate
        # cleanly before the crash, others get caught mid-transfer and
        # must abort and retry.
        pacing_rng = random.Random(
            derive_seed(
                schedule.seed, f"chaos.rebalance.{schedule.profile}.{schedule.index}"
            )
        )
        cluster = build_elastic_cluster(
            schedule.num_servers,
            schedule.num_blocks,
            list(profile.rings),
            seed=schedule.cluster_seed,
            protocol=schedule.config,
            rebalance_interval=round(pacing_rng.uniform(0.03, 0.08), 4),
            rebalance_first_delay=round(pacing_rng.uniform(0.05, 0.6), 4),
            horizon=schedule.deadline,
            imbalance=1.3,
            split_fraction=0.4,
            min_load=5.0,
        )
    else:
        cluster = target.builder(
            schedule.num_servers,
            seed=schedule.cluster_seed,
            protocol=schedule.config,
            **builder_kwargs,
        )
    cluster.history = History()

    progress = {"left": schedule.num_clients, "failed": 0}
    # Pace each client's operations across the whole fault span so the
    # workload demonstrably overlaps every scheduled fault window; the
    # stagger desynchronises clients to maximise read/write concurrency.
    pacing = schedule.workload_span / max(1, schedule.ops_per_client)

    if protocol == "sharded":
        _spawn_sharded_workload(schedule, cluster, progress, pacing)
    else:
        _spawn_register_workload(schedule, cluster, progress, pacing)

    # Faults are applied after the clients exist so client-side links
    # (partitions isolating clients) resolve to real processes.
    cluster.apply_faults(schedule.plan)

    scheduler = cluster.env.scheduler
    while progress["left"] > 0 and cluster.now < schedule.deadline:
        if not scheduler.step():
            break  # idle: every remaining operation is permanently stalled

    cluster.history.close()
    blocks_checked = 0
    tag_coverage = None
    if protocol == "sharded":
        ok, reason, blocks_checked, tag_coverage = _gate_sharded(cluster.history)
    else:
        ok, reason = check_register_history(cluster.history)

    counters = cluster.env.trace.counters
    exercised = {
        kind
        for kind, names in _KIND_COUNTERS.items()
        if any(counters.get(name, 0) > 0 for name in names)
    }
    completed = len(cluster.history.completed())
    total_ops = schedule.num_clients * schedule.ops_per_client
    # Gentle schedules lose nothing, so every operation must complete;
    # under the full menu, retry exhaustion may legitimately fail a few
    # ops, but losing more than half the workload is a liveness bug.
    # The floor follows the *schedule's* profile: a profile-overridden
    # run (e.g. a gentle batch against the core protocol) is judged by
    # what its schedule can lose, not by the target's default menu.
    required = total_ops if not profile.retries else (total_ops + 1) // 2
    return ChaosResult(
        schedule=schedule,
        protocol=protocol,
        linearizable=ok,
        reason=reason if not ok else "",
        ops_completed=completed,
        ops_open=len(cluster.history) - completed,
        ops_failed=progress["failed"],
        ops_required=required,
        exercised=exercised,
        retransmits=counters.get(RELIABLE_RETRANSMITS, 0),
        dups_suppressed=counters.get(RELIABLE_DUPS_SUPPRESSED, 0),
        batched_frames=counters.get(RELIABLE_BATCHED_FRAMES, 0),
        batched_messages=counters.get(RELIABLE_BATCHED_MESSAGES, 0),
        wrong_suspicions=counters.get(FD_WRONG_SUSPICIONS, 0),
        stale_epoch_drops=counters.get(EPOCH_STALE_DROPPED, 0),
        lease_local_reads=counters.get(LEASE_LOCAL_READS, 0),
        lease_fallbacks=counters.get(LEASE_FALLBACKS, 0),
        lease_waitouts=counters.get(LEASE_WAITOUTS, 0),
        coding_fragment_stores=counters.get(CODING_FRAGMENT_STORES, 0),
        coding_reconstructions=counters.get(CODING_RECONSTRUCTIONS, 0),
        coding_repairs=counters.get(CODING_REPAIRS, 0),
        blocks_checked=blocks_checked,
        tag_coverage=tag_coverage,
        migration_required=profile.elastic,
        migrations_completed=counters.get(MIGRATION_COMPLETED, 0),
        migrations_aborted=counters.get(MIGRATION_ABORTED, 0),
        migration_splits=counters.get(MIGRATION_SPLITS, 0),
        shard_redirects=counters.get(SHARD_REDIRECTS, 0),
        wall_seconds=time.perf_counter() - started,  # staticheck: allow(determinism.wall-clock) -- wall_seconds is diagnostic reporting only; nothing simulated reads it
    )


def _spawn_register_workload(schedule, cluster, progress, pacing) -> None:
    """Closed-loop workload over the single register: one client machine
    per logical client, reads and writes paced across the fault span."""

    def spawn(host, kind: str, stagger: float) -> None:
        state = {"seq": 0}

        def on_complete(result) -> None:
            if not result.ok:
                progress["failed"] += 1
            state["seq"] += 1
            if state["seq"] >= schedule.ops_per_client:
                progress["left"] -= 1
                return
            cluster.env.scheduler.schedule(pacing, issue)

        def issue() -> None:
            if kind == "write":
                stamp = b"%d:%d" % (host.client_id, state["seq"])
                host.write(stamp.ljust(schedule.value_size, b"."), on_complete)
            else:
                host.read(on_complete)

        cluster.env.scheduler.schedule(stagger, issue)

    num_clients = schedule.num_clients
    for i in range(schedule.writers):
        spawn(cluster.add_client(home_server=i % schedule.num_servers), "write",
              stagger=pacing * i / max(1, num_clients))
    for i in range(schedule.readers):
        spawn(cluster.add_client(home_server=i % schedule.num_servers), "read",
              stagger=pacing * (schedule.writers + i) / max(1, num_clients))


def _spawn_sharded_workload(schedule, cluster, progress, pacing) -> None:
    """Benchmark-scale workload over the block store.

    The paper's methodology scaled out by emulating clients: "the client
    application can emulate multiple clients... a single writing node can
    saturate the storage."  Likewise here — ``schedule.client_machines``
    machines multiplex ``writers + readers`` *logical* clients, each
    pinned to a home block (round-robin, so every block sees writers and
    readers) with an occasional deterministic hop to a random block.
    The hops matter: a logical client that times out mid-hop retries
    an operation started against one block after its machine has issued
    traffic to others, which is exactly the envelope mis-routing
    scenario the per-op block pinning in ShardClientHost guards.
    """
    rng = random.Random(
        derive_seed(schedule.seed, f"chaos.workload.{schedule.profile}.{schedule.index}")
    )
    chaos_profile = PROFILES.get(schedule.profile)
    elastic = chaos_profile is not None and chaos_profile.elastic
    hop_p = 0.1 if elastic else 0.2
    machines = [
        add_shard_client(cluster, home_server=i % schedule.num_servers)
        for i in range(max(1, schedule.client_machines))
    ]
    roles = ["write"] * schedule.writers + ["read"] * schedule.readers

    def elastic_home(pos: int) -> int:
        # Skewed homes are the whole point of the skew profile: the first
        # num_blocks clients of each role class cover every block (so the
        # per-block tagged gate always has traffic to check), and every
        # extra client piles onto block 0 (and a little onto block 1) so
        # the rebalancer's imbalance threshold is guaranteed to trip.
        if pos < schedule.num_blocks:
            return pos
        roll = rng.random()
        if roll < 0.8:
            return 0
        if roll < 0.95:
            return 1 % schedule.num_blocks
        return rng.randrange(schedule.num_blocks)

    def spawn(host, vid: int, kind: str, home: int, stagger: float) -> None:
        state = {"seq": 0}

        def on_complete(result) -> None:
            if not result.ok:
                progress["failed"] += 1
            state["seq"] += 1
            if state["seq"] >= schedule.ops_per_client:
                progress["left"] -= 1
                return
            cluster.env.scheduler.schedule(pacing, issue)

        def issue() -> None:
            if rng.random() < hop_p:
                reg = rng.randrange(schedule.num_blocks)
            else:
                reg = home
            if kind == "write":
                stamp = b"%d:%d" % (vid, state["seq"])
                host.write_block(
                    reg, stamp.ljust(schedule.value_size, b"."),
                    on_complete, client_id=vid,
                )
            else:
                host.read_block(reg, on_complete, client_id=vid)

        cluster.env.scheduler.schedule(stagger, issue)

    for index, kind in enumerate(roles):
        host = machines[index % len(machines)]
        vid = host.add_virtual_client()
        if elastic:
            pos = index if kind == "write" else index - schedule.writers
            home = elastic_home(pos)
        else:
            home = index % schedule.num_blocks
        spawn(host, vid, kind, home=home,
              stagger=pacing * index / max(1, len(roles)))


#: Below this many blocks the per-block gate runs inline: worker startup
#: costs more than the checks themselves on small splits.
_GATE_PARALLEL_MIN_BLOCKS = 4


def _check_block(item: tuple) -> tuple:
    """Worker: gate one block's history (module-level for pickling)."""
    block, block_history = item
    ok, reason = check_tagged_history(block_history, require_full_coverage=True)
    return block, ok, reason


def _gate_sharded(history: History) -> tuple[bool, str, int, float]:
    """Per-block tagged gate: split the history by block key and require
    every block's history to pass ``check_tagged_history`` at full tag
    coverage.  Returns ``(ok, reason, blocks_checked, coverage)``.

    The per-block checks are independent, so benchmark-scale splits
    (8+ blocks, thousands of operations each) fan out over a process
    pool.  The verdict is deterministic either way: blocks are checked
    in sorted key order and the *first* failing block in that order is
    reported, regardless of which worker finished first — and
    ``blocks_checked`` keeps the sequential meaning (blocks up to and
    including the first failure).
    """
    completed = history.completed()
    tagged = sum(1 for op in completed if op.tag is not None)
    coverage = tagged / len(completed) if completed else 1.0
    per_block = history.split_by_block()
    orphans = per_block.pop(None, None)
    if orphans is not None:
        return (
            False,
            f"{len(orphans.operations)} operation(s) recorded without a "
            "block key cannot be gated",
            0,
            coverage,
        )
    items = [(block, per_block[block]) for block in sorted(per_block)]
    if len(items) < _GATE_PARALLEL_MIN_BLOCKS:
        verdicts = [_check_block(item) for item in items]
    else:
        workers = min(len(items), multiprocessing.cpu_count())
        with multiprocessing.Pool(processes=workers) as pool:
            # Pool.map preserves input order, so the fan-out cannot
            # reorder which failure wins.
            verdicts = pool.map(_check_block, items)
    blocks_checked = 0
    for block, ok, reason in verdicts:
        blocks_checked += 1
        if not ok:
            return False, f"block {block}: {reason}", blocks_checked, coverage
    return True, "", blocks_checked, coverage
