"""Randomized chaos schedule generation.

A :class:`ChaosSchedule` bundles everything one chaos run needs: a
:class:`~repro.sim.faults.FaultPlan` drawn from a seeded RNG, the
workload shape, the protocol tunables and the run deadline.  Schedules
are pure data — :mod:`repro.chaos.runner` executes them — and are fully
determined by ``(seed, index, profile, num_servers)``, so any failing run
can be replayed bit-identically from its coordinates.

The generation profiles encode which faults a protocol family can be
expected to survive (see also ``PARTITION_PROFILE`` — the imperfect
heartbeat detector under partition-heavy schedules — and
``SCALE_PROFILE`` — the sharded ``BlockStore`` at multi-thousand-op
benchmark scale, gated per block by the tagged checker):

``CORE_PROFILE``
    The full menu for the paper's ring algorithm: crashes (the paper's
    n−1 claim), crash *recovery* (a crashed server restarts from its
    durable snapshot and rejoins the ring mid-run), hold-mode
    partitions of either network, probabilistic drop and duplication on
    any link, FIFO-preserving delays, NIC throttles and process
    pauses — with *no* scheduling restrictions.
    Two historic envelopes are gone because the reliable session layer
    (:mod:`repro.transport.reliable`) now implements the channel model
    instead of the generator assuming it:

    * ring loss freely combines with crashes, on any ring link (not just
      successor links): a dropped pre-write is retransmitted, so a
      crash-triggered state merge no longer resurrects zombie pending
      entries left by silent loss;
    * the client timeout is an aggressive constant
      (:data:`AGGRESSIVE_CLIENT_TIMEOUT`) well below the stall horizon,
      so retries deliberately race stalled operations; safety rests on
      server-side OpId deduplication plus the session layer's
      duplicate suppression, which is exactly the claim the harness is
      meant to attack.

``GENTLE_PROFILE``
    Pure-delay menu for the failure-free baselines (ABD, chain, TOB,
    naive): hold-mode partitions, delays, throttles and pauses, with
    client retries disabled.  Nothing is ever lost, so every baseline
    except the (deliberately broken) naive one must stay linearizable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from dataclasses import replace

from repro.core.config import ProtocolConfig
from repro.fd.heartbeat import HeartbeatConfig
from repro.sim.faults import FaultPlan
from repro.sim.rng import derive_seed

#: Fault types the harness knows how to schedule and count.
FAULT_KINDS = (
    "crash", "restart", "partition", "drop", "delay", "duplicate",
    "throttle", "pause", "clock_skew",
)


@dataclass(frozen=True)
class ChaosProfile:
    """Which fault types a schedule may contain, with probabilities."""

    name: str
    crash_weights: tuple[int, ...] = (0,)  # distribution of crash counts
    #: Per crash, the probability that a matching restart is scheduled —
    #: turning the crash into a crash-*recovery* event: the server comes
    #: back from its durable snapshot and rejoins the ring mid-run.
    p_restart: float = 0.0
    p_partition: float = 0.0
    p_ring_loss: float = 0.0    # probabilistic drop on a ring link
    p_client_loss: float = 0.0  # probabilistic drop on a client link
    p_duplicate: float = 0.0
    p_delay: float = 0.0
    p_throttle: float = 0.0
    p_pause: float = 0.0
    #: Per-server probability of an absolute clock-skew fault, drawn
    #: within the declared ``clock_drift_bound`` — the adversary the
    #: lease arithmetic's ``2*drift`` charge is provably sound against.
    #: (Offsets beyond the declared bound would break the *assumption*,
    #: not the implementation, so the generator stays inside it.)
    p_clock_skew: float = 0.0
    retries: bool = True
    #: Failure detector the cluster runs under this profile: "perfect"
    #: (the oracle the paper assumes) or "heartbeat" (the imperfect
    #: detector + epoch-guarded quorum-installed views).
    fd: str = "perfect"
    #: Partition-heavy generation: guaranteed partition windows (hold
    #: *and* drop modes), long enough for the heartbeat detector to
    #: wrongly suspect a partitioned-but-alive server, with at most one
    #: *permanent* crash so the surviving side always keeps an ack
    #: quorum of the current view and the run stays live.
    partition_heavy: bool = False
    #: Epoch-scoped read leases (``ProtocolConfig.read_leases``): reads
    #: are served locally under a valid lease and fence through the ring
    #: otherwise.  Implies quorum-installed views; only meaningful with
    #: ``fd="heartbeat"``.
    read_leases: bool = False
    #: Value backend ("replicated" or "coded").  "coded" stripes every
    #: value k-of-n across the ring (``ProtocolConfig.value_coding``);
    #: implies quorum-installed views and sets ``coding_n`` to the
    #: cluster size at generation time.
    value_coding: str = "replicated"
    #: Fault kinds the batch gate requires to have demonstrably fired
    #: (empty means the harness-wide default applies).
    required_kinds: tuple[str, ...] = ()
    #: Benchmark-scale sharded generation: the ``(lo, hi)`` draw range
    #: for the number of blocks — ``(0, 0)`` means unsharded (one
    #: register, the default) — and the minimum total operations per
    #: run.  A sharded profile sizes the workload as *logical* clients
    #: multiplexed over a few client machines (the paper's "a single
    #: writing node can saturate the storage") and is gated per block by
    #: the O(n log n) tagged checker, the only one that survives
    #: multi-thousand-op histories.
    blocks: tuple[int, int] = (0, 0)
    min_total_ops: int = 0
    #: Elastic sharded generation: the cluster runs explicit placement
    #: over ``rings`` (disjoint server-id tuples) with the rebalancer
    #: live-migrating blocks mid-run.  Crash victims are drawn from the
    #: *destination* ring — the migration target — so schedules attack
    #: the transfer/cutover window, and the batch gate requires in-trace
    #: completed migrations (plus aborts, across a large batch).
    elastic: bool = False
    rings: tuple[tuple[int, ...], ...] = ()


CORE_PROFILE = ChaosProfile(
    name="core",
    crash_weights=(0, 0, 1, 1, 1, 2),
    p_restart=0.75,
    p_partition=0.55,
    p_ring_loss=0.5,
    p_client_loss=0.6,
    p_duplicate=0.6,
    p_delay=0.7,
    p_throttle=0.45,
    p_pause=0.45,
    retries=True,
)

GENTLE_PROFILE = ChaosProfile(
    name="gentle",
    crash_weights=(0,),
    p_partition=0.5,
    p_ring_loss=0.0,
    p_client_loss=0.0,
    p_duplicate=0.0,
    p_delay=0.8,
    p_throttle=0.5,
    p_pause=0.5,
    retries=False,
)

#: Partition-tolerant reconfiguration under the *imperfect* detector.
#: Every schedule cuts the cluster at least once (hold and drop modes
#: both drawn), long enough past the heartbeat timeout that a
#: partitioned-but-alive server is wrongly suspected, excluded by a
#: quorum-installed epoch, and folded back after the heal — combined
#: with crashes, restarts, link loss/delay/duplication, throttles and
#: pauses.  Every crash restarts: under quorum-installed views a member
#: lost *permanently* from an already-shrunken view (say, the ring
#: wrongly excluded two partitioned peers and then one of the two
#: survivors died for good) is an unrecoverable configuration in any
#: majority-based reconfigurable system — the epoch guard makes such a
#: side stall rather than fork, so a schedule that durably destroys the
#: last quorum would fail the liveness gate by design, not by bug.
#: Permanent crashes stay covered by the perfect-detector core profile.
PARTITION_PROFILE = ChaosProfile(
    name="partition",
    fd="heartbeat",
    partition_heavy=True,
    crash_weights=(0, 1, 1, 2),
    p_restart=1.0,
    p_partition=1.0,
    p_ring_loss=0.45,
    p_client_loss=0.5,
    p_duplicate=0.5,
    p_delay=0.6,
    p_throttle=0.4,
    p_pause=0.4,
    retries=True,
    required_kinds=("crash", "restart", "partition", "drop", "delay", "duplicate"),
)

#: Leased local reads under the partition envelope.  Same guaranteed
#: partition windows and imperfect-detector churn as ``partition`` —
#: wrong suspicion is exactly the hazard a lease must die *before* —
#: plus ``read_leases`` on and guaranteed per-server clock-skew faults
#: drawn within the declared drift bound, attacking the lease
#: freshness/wait-out arithmetic (a skewed holder ages grants faster or
#: slower than their grantors intended; the ``2*drift`` charge must
#: absorb it).  The batch gate additionally demands in-trace leased
#: local reads: a batch that silently fenced every read would pass the
#: checker without ever exercising the path under test.
LEASE_PROFILE = ChaosProfile(
    name="lease",
    fd="heartbeat",
    partition_heavy=True,
    read_leases=True,
    crash_weights=(0, 1, 1, 2),
    p_restart=1.0,
    p_partition=1.0,
    p_ring_loss=0.45,
    p_client_loss=0.5,
    p_duplicate=0.5,
    p_delay=0.6,
    p_throttle=0.4,
    p_pause=0.4,
    p_clock_skew=0.6,
    retries=True,
    required_kinds=(
        "crash", "restart", "partition", "drop", "delay", "duplicate",
        "clock_skew",
    ),
)

#: The erasure-coded value backend under the partition envelope.  Same
#: guaranteed partition windows, imperfect-detector churn, crashes and
#: restarts as ``partition`` — every one of which now moves *fragments*:
#: a reconfiguration merge must union surviving fragment shares, a
#: rejoiner must re-derive its share from k peers (the RADON-style
#: repair), and a read landing on a server without the full value must
#: reconstruct it from k live fragment holders mid-fault.  The batch
#: gate additionally demands in-trace fragment repairs: a batch whose
#: merges never repaired a share would pass the checker without ever
#: exercising the path that makes coded durability work.
CODED_PROFILE = ChaosProfile(
    name="coded",
    fd="heartbeat",
    partition_heavy=True,
    value_coding="coded",
    crash_weights=(0, 1, 1, 2),
    p_restart=1.0,
    p_partition=1.0,
    p_ring_loss=0.45,
    p_client_loss=0.5,
    p_duplicate=0.5,
    p_delay=0.6,
    p_throttle=0.4,
    p_pause=0.4,
    retries=True,
    required_kinds=("crash", "restart", "partition", "drop", "delay", "duplicate"),
)

#: Chaos at benchmark scale: the sharded ``BlockStore`` under the core
#: fault envelope — crashes with restarts, partitions, link loss, delay,
#: duplication, throttles and pauses — with a multi-thousand-operation
#: concurrent workload (dozens of logical clients over a handful of
#: client machines, 8–12 blocks).  Every run is gated per block through
#: ``check_tagged_history`` at 100% tag coverage: the value-based
#: checker's search is hopeless on histories this size, so the tagged
#: checker's O(n log n) claim is what makes the gate affordable — and
#: the harness proves it load-bearing on every run.  At least one crash
#: per schedule keeps crash/restart coverage dense enough for a 10-run
#: acceptance batch.
SCALE_PROFILE = ChaosProfile(
    name="scale",
    crash_weights=(1, 1, 2),
    p_restart=0.85,
    p_partition=0.7,
    p_ring_loss=0.55,
    p_client_loss=0.6,
    p_duplicate=0.6,
    p_delay=0.7,
    p_throttle=0.4,
    p_pause=0.4,
    retries=True,
    blocks=(8, 12),
    min_total_ops=5000,
    required_kinds=("crash", "restart", "partition", "drop", "delay", "duplicate"),
)

#: Elastic sharding under a deliberately skewed workload: two rings of
#: two servers, eight blocks, and a client population concentrated on
#: blocks 0 and 1 (plus a round-robin tail so every block still gets a
#: writer and a reader — no block's history is checked vacuously).  The
#: rebalancer must migrate and split hot blocks off ring 0 *mid-run*,
#: while every crash in the schedule lands on a ring-1 (destination)
#: member inside the migration window with a guaranteed restart: the
#: abort path — staged state discarded, parked requests replayed, the
#: placement table untouched — is the thing under attack, and
#: duplication attacks the transfer nonce.  Partitions are left to the
#: other profiles: a cut between rings only stalls whole blocks without
#: touching the migration machinery.  The batch gate demands in-trace
#: completed migrations on every run (and aborts across the batch);
#: per-block tagged checking stays at 100% coverage.
SKEW_PROFILE = ChaosProfile(
    name="skew",
    elastic=True,
    rings=((0, 1), (2, 3)),
    crash_weights=(1, 1, 2),
    p_restart=1.0,
    p_partition=0.0,
    p_ring_loss=0.4,
    p_client_loss=0.4,
    p_duplicate=0.6,
    p_delay=0.6,
    p_throttle=0.3,
    p_pause=0.3,
    retries=True,
    blocks=(8, 8),
    min_total_ops=2500,
    required_kinds=("crash", "restart"),
)

#: Generation profiles by name (the runner maps a schedule's profile
#: string back to its definition, e.g. to pick the failure detector).
PROFILES: dict[str, ChaosProfile] = {
    profile.name: profile
    for profile in (
        CORE_PROFILE,
        GENTLE_PROFILE,
        PARTITION_PROFILE,
        LEASE_PROFILE,
        CODED_PROFILE,
        SCALE_PROFILE,
        SKEW_PROFILE,
    )
}

#: Last instant any fault window may still be open.
FAULT_WINDOW_END = 1.0
#: Client timeout under the full menu: deliberately *below* the stall
#: horizon (fault windows run past 1.0s), so retries race operations
#: that are stalled — not lost — in cut, paused or slowed links.  A
#: retry landing at a server that has not seen the stalled pre-write
#: initiates the operation a second time; OpId dedup and the session
#: layer must keep that safe, and the chaos gate proves it.
AGGRESSIVE_CLIENT_TIMEOUT = 0.25
#: Post-fault settling time added to the deadline: enough for session
#: retransmission backoff (rto_max plus a round trip) and a few client
#: retries to finish every straggler after the last window closes.
SETTLE_TIME = 4.0


@dataclass(frozen=True)
class ChaosSchedule:
    """One fully-specified chaos run."""

    seed: int
    index: int
    profile: str
    num_servers: int
    cluster_seed: int
    writers: int
    readers: int
    ops_per_client: int
    value_size: int
    plan: FaultPlan = field(compare=False)
    config: ProtocolConfig = field(compare=False)
    #: Sharded runs: number of independent registers (1 = unsharded) and
    #: the number of client *machines* the logical clients multiplex
    #: over (0 = one machine per logical client, the unsharded layout).
    num_blocks: int = 1
    client_machines: int = 0
    deadline: float = 10.0
    #: Simulated time the workload is paced to span.  Without pacing a
    #: few dozen operations finish in single-digit milliseconds — before
    #: the first fault window even opens — so each client spreads its
    #: operations across this span to guarantee fault/operation overlap.
    workload_span: float = 0.0

    @property
    def num_clients(self) -> int:
        return self.writers + self.readers

    def describe(self) -> str:
        kinds = ",".join(sorted(self.plan.fault_kinds())) or "none"
        shard = f"blocks={self.num_blocks} " if self.num_blocks > 1 else ""
        return (
            f"[{self.profile}#{self.index}] servers={self.num_servers} {shard}"
            f"clients={self.writers}w+{self.readers}r ops={self.ops_per_client} "
            f"faults={kinds}"
        )


def generate_schedule(
    seed: int,
    index: int,
    num_servers: int = 4,
    profile: ChaosProfile = CORE_PROFILE,
) -> ChaosSchedule:
    """Draw one randomized schedule, deterministic in all arguments."""
    rng = random.Random(derive_seed(seed, f"chaos.{profile.name}.{index}"))
    if profile.elastic:
        # The ring layout fixes the cluster size: placement rings are
        # literal server ids, so a different num_servers would either
        # leave servers outside every ring or point rings at nothing.
        num_servers = max(sid for ring in profile.rings for sid in ring) + 1
    servers = [f"s{i}" for i in range(num_servers)]
    num_blocks = 1
    client_machines = 0
    if profile.blocks[0] > 0:
        # Benchmark scale: 8+ blocks, dozens of *logical* clients spread
        # over a few client machines, enough operations per client that
        # the total clears the profile's floor.  Writer and reader
        # counts start at the block count so round-robin assignment
        # gives every block at least one writer and one reader — no
        # block's history is checked vacuously.
        num_blocks = rng.randint(*profile.blocks)
        client_machines = rng.randint(3, 4)
        if profile.elastic:
            # Guaranteed extra clients beyond the per-block coverage
            # tail: the runner piles them onto blocks 0 and 1, and it is
            # that concentration (not the tail) that clears the
            # rebalancer's imbalance threshold on every draw.
            writers = rng.randint(num_blocks + 2, num_blocks + 6)
            readers = rng.randint(num_blocks + 6, num_blocks + 14)
        else:
            writers = rng.randint(num_blocks, num_blocks + 8)
            readers = rng.randint(num_blocks + 4, num_blocks + 16)
        total_clients = writers + readers
        ops_per_client = -(-profile.min_total_ops // total_clients) + rng.randint(0, 8)
        clients = [f"c{i}" for i in range(client_machines)]
    else:
        writers = rng.randint(2, 3)
        readers = rng.randint(2, 4)
        clients = [f"c{i}" for i in range(writers + readers)]
        ops_per_client = rng.randint(4, 8)

    plan = FaultPlan()
    num_crashes = min(rng.choice(profile.crash_weights), num_servers - 1)
    if profile.elastic:
        # Crash only destination-ring members, inside the window where
        # migrations run: the hot blocks start on ring 0, so transfers
        # target the last ring, and killing a member there mid-transfer
        # is what forces the abort path.  Every crash restarts — the
        # rebalancer refuses to start a migration toward a dead member,
        # so a permanent destination crash would make the required
        # migration gate unreachable by construction, not by bug.
        pool = [f"s{sid}" for sid in profile.rings[-1]]
        for victim in rng.sample(pool, min(num_crashes, len(pool))):
            at = round(rng.uniform(0.2, 0.9), 4)
            plan.crash(victim, at=at)
            plan.restart(victim, at=round(at + rng.uniform(0.5, 1.1), 4))
    elif profile.partition_heavy:
        # The heartbeat detector takes timeout + grace + a merge round
        # to install an exclusion, so recovery leaves a wider gap; and
        # only the first crash may be permanent under the quorum
        # discipline — a second never-restarted crash plus a partition
        # could durably destroy every ack quorum and stall the run by
        # design (wrong suspicion costs liveness, never safety).
        for ordinal, victim in enumerate(rng.sample(servers, num_crashes)):
            at = round(rng.uniform(0.05, 1.4), 4)
            plan.crash(victim, at=at)
            if ordinal > 0 or rng.random() < profile.p_restart:
                plan.restart(victim, at=round(at + rng.uniform(1.0, 1.6), 4))
    else:
        for victim in rng.sample(servers, num_crashes):
            plan.crash(victim, at=round(rng.uniform(0.05, 1.4), 4))
        # Crash recovery: each crashed server may come back and rejoin.
        # The gap past the crash leaves room for the detection delay and
        # the crash reconfiguration to finish, so the rejoin exercises
        # the steady-state recovery path (restart-into-a-reconfiguration
        # is covered separately by scheduling two crashes close together).
        for crash in list(plan.crashes):
            if rng.random() < profile.p_restart:
                plan.restart(
                    crash.process_name,
                    at=round(crash.time + rng.uniform(0.5, 1.1), 4),
                )

    def window(max_len: float) -> tuple[float, float]:
        start = rng.uniform(0.05, FAULT_WINDOW_END - 0.05)
        end = min(FAULT_WINDOW_END, start + rng.uniform(0.02, max_len))
        return round(start, 4), round(end, 4)

    def split_groups() -> list[list[str]]:
        if rng.random() < 0.7 or len(clients) == 0:
            # Ring partition: the servers split into two non-empty sides.
            cut = rng.randint(1, num_servers - 1)
            shuffled = rng.sample(servers, num_servers)
            return [shuffled[:cut], shuffled[cut:]]
        # Client-side partition: some servers unreachable by clients.
        cut = rng.randint(1, num_servers - 1)
        return [rng.sample(servers, cut), clients]

    if profile.partition_heavy and num_servers >= 2:
        # Guaranteed partition windows, sized past the heartbeat timeout
        # so suspicion demonstrably fires while the cut holds; hold and
        # drop modes both occur.  A possible second window starts after
        # the first heals (the validator rejects same-link overlap).
        at = round(rng.uniform(0.1, 0.5), 4)
        heal_at = round(at + rng.uniform(0.3, 0.6), 4)
        plan.partition(
            split_groups(), at=at, heal_at=heal_at,
            mode="hold" if rng.random() < 0.5 else "drop",
        )
        if rng.random() < 0.4:
            at2 = round(heal_at + rng.uniform(0.15, 0.35), 4)
            heal2 = round(at2 + rng.uniform(0.25, 0.45), 4)
            plan.partition(
                split_groups(), at=at2, heal_at=heal2,
                mode="hold" if rng.random() < 0.5 else "drop",
            )
    elif num_servers >= 2 and rng.random() < profile.p_partition:
        at, heal_at = window(0.3)
        if rng.random() < 0.5:
            # Ring partition: split the servers into two non-empty groups.
            cut = rng.randint(1, num_servers - 1)
            shuffled = rng.sample(servers, num_servers)
            plan.partition([shuffled[:cut], shuffled[cut:]], at=at, heal_at=heal_at)
        else:
            # Client-side partition: some servers unreachable by clients.
            cut = rng.randint(1, num_servers - 1)
            island = rng.sample(servers, cut)
            plan.partition([island, clients], at=at, heal_at=heal_at)

    # Probabilistic loss on any ring link — successor or not, crashes or
    # not.  The reliable session layer retransmits, so silent loss is a
    # transport-level event the protocol never observes; the historic
    # "no loss with crashes / successor links only" envelope is gone.
    # The draw is biased toward links that carry frames (successor data
    # links and their reverse ack links), because a drop rule on a link
    # no frame crosses exercises nothing — but any pair is schedulable.
    if num_servers >= 2 and rng.random() < profile.p_ring_loss:
        src = rng.choice(servers)
        roll = rng.random()
        if roll < 0.5:
            dst = f"s{(int(src[1:]) + 1) % num_servers}"  # data link
        elif roll < 0.75:
            dst = f"s{(int(src[1:]) - 1) % num_servers}"  # ack link
        else:
            dst = rng.choice([name for name in servers if name != src])
        at, until = window(0.5)
        plan.drop(src, dst, p=round(rng.uniform(0.05, 0.3), 3), at=at, until=until)

    if rng.random() < profile.p_client_loss:
        at, until = window(0.6)
        plan.drop(
            rng.choice(clients), rng.choice(servers),
            p=round(rng.uniform(0.1, 0.4), 3), at=at, until=until, symmetric=True,
        )

    if rng.random() < profile.p_duplicate:
        at, until = window(0.6)
        if num_servers >= 2 and rng.random() < 0.5:
            src = rng.choice(servers)
            dst = f"s{(int(src[1:]) + 1) % num_servers}"
        else:
            src, dst = rng.choice(clients), rng.choice(servers)
        plan.duplicate(src, dst, p=round(rng.uniform(0.2, 0.6), 3),
                       at=at, until=until, symmetric=True)

    if rng.random() < profile.p_delay:
        at, until = window(0.6)
        # Pick a link that actually carries traffic (ring successor or
        # client<->server); a delay between two clients would stretch a
        # link no frame ever crosses and count as coverage never fired.
        if num_servers >= 2 and rng.random() < 0.5:
            src = rng.choice(servers)
            dst = f"s{(int(src[1:]) + 1) % num_servers}"
        else:
            src, dst = rng.choice(clients), rng.choice(servers)
        plan.delay(src, dst, at=at, until=until,
                   extra=round(rng.uniform(0.0005, 0.003), 5),
                   jitter=round(rng.uniform(0.0, 0.002), 5), symmetric=True)

    if rng.random() < profile.p_throttle:
        at, until = window(0.5)
        plan.throttle(rng.choice(servers), factor=round(rng.uniform(2.0, 6.0), 2),
                      at=at, until=until)

    if rng.random() < profile.p_pause:
        at, _ = window(0.3)
        plan.pause(rng.choice(servers), at=at,
                   resume_at=round(at + rng.uniform(0.02, 0.12), 4))

    if profile.p_clock_skew > 0:
        # Absolute per-server clock offsets within the *declared* drift
        # bound (the assumption under which the lease arithmetic is
        # proved; beyond it the contract — not the code — is broken).
        # Skews land before or during the fault span so skewed clocks
        # age lease grants through partitions, suspicion and wait-outs.
        bound = HeartbeatConfig().clock_drift_bound
        for server in servers:
            if rng.random() < profile.p_clock_skew:
                magnitude = rng.uniform(0.2 * bound, bound)
                sign = 1.0 if rng.random() < 0.5 else -1.0
                plan.clock_skew(server, offset=round(sign * magnitude, 5),
                                at=round(rng.uniform(0.0, 0.4), 4))

    horizon = plan.stall_horizon()
    if profile.retries:
        # The timeout is deliberately below the stall horizon: retries
        # race stalled operations, and the dedup machinery is on trial.
        config = ProtocolConfig(
            client_timeout=AGGRESSIVE_CLIENT_TIMEOUT,
            client_max_retries=40,
        )
    else:
        # Nothing in the gentle menu loses a frame, so every operation
        # completes without retries; an enormous timeout documents that.
        config = ProtocolConfig(client_timeout=1e9, client_max_retries=0)
    if profile.read_leases:
        # Leased local reads ride on epoch-guarded quorum installs;
        # view_quorum is set here (rather than trusting the builder's
        # fd-driven default) because read_leases validates against it.
        config = replace(config, view_quorum=True, read_leases=True)
    if profile.value_coding == "coded":
        # k=2 stripes, n = the cluster size: with quorum-installed views
        # every active view keeps n-f >= k fragment holders, so reads
        # stay reconstructable through any schedule the quorum
        # discipline itself survives (the config validates the bound).
        config = replace(
            config,
            view_quorum=True,
            value_coding="coded",
            coding_k=2,
            coding_n=num_servers,
        )

    last_crash = max((crash.time for crash in plan.crashes), default=0.0)
    span = max(horizon, last_crash) + 0.3
    deadline = span + SETTLE_TIME
    if profile.fd == "heartbeat":
        # Detection is no longer an oracle: every exclusion costs a
        # heartbeat timeout plus the propose grace, and a wrongly
        # suspected server re-enters through a sponsored merge after the
        # heal — give stragglers room to finish behind that churn.
        deadline += 1.5

    return ChaosSchedule(
        seed=seed,
        index=index,
        profile=profile.name,
        num_servers=num_servers,
        cluster_seed=derive_seed(seed, f"chaos.cluster.{profile.name}.{index}") % (2**31),
        writers=writers,
        readers=readers,
        ops_per_client=ops_per_client,
        # Scale runs push two orders of magnitude more operations
        # through the simulator; small values keep wire time (and wall
        # time) proportionate without changing the protocol surface.
        value_size=rng.choice((32, 128) if num_blocks > 1 else (32, 128, 512)),
        num_blocks=num_blocks,
        client_machines=client_machines,
        plan=plan,
        config=config,
        deadline=round(deadline, 4),
        workload_span=round(span, 4),
    )
