"""Randomized chaos schedule generation.

A :class:`ChaosSchedule` bundles everything one chaos run needs: a
:class:`~repro.sim.faults.FaultPlan` drawn from a seeded RNG, the
workload shape, the protocol tunables and the run deadline.  Schedules
are pure data — :mod:`repro.chaos.runner` executes them — and are fully
determined by ``(seed, index, profile, num_servers)``, so any failing run
can be replayed bit-identically from its coordinates.

Two generation profiles encode which faults a protocol family can be
expected to survive:

``CORE_PROFILE``
    The full menu for the paper's ring algorithm: crashes (the paper's
    n−1 claim), hold-mode partitions of either network, probabilistic
    drop and duplication, FIFO-preserving delays, NIC throttles and
    process pauses.  Two scheduling rules keep the faults inside the
    protocol's stated model (reliable FIFO channels between correct
    processes, perfect failure detection):

    * the client timeout is set beyond the last fault window
      (:meth:`FaultPlan.stall_horizon`), so a retry can never race a
      pre-write that is merely stalled — under TCP a request is retried
      only once its server is actually gone;
    * probabilistic *loss* on the server ring is never combined with
      crashes: a lost pre-write leaves a zombie pending entry that a
      crash-triggered state merge would resurrect and re-commit, which
      models a TCP connection silently eating one message — a failure
      TCP does not exhibit.

``GENTLE_PROFILE``
    Pure-delay menu for the failure-free baselines (ABD, chain, TOB,
    naive): hold-mode partitions, delays, throttles and pauses, with
    client retries disabled.  Nothing is ever lost, so every baseline
    except the (deliberately broken) naive one must stay linearizable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.config import ProtocolConfig
from repro.sim.faults import FaultPlan
from repro.sim.rng import derive_seed

#: Fault types the harness knows how to schedule and count.
FAULT_KINDS = ("crash", "partition", "drop", "delay", "duplicate", "throttle", "pause")


@dataclass(frozen=True)
class ChaosProfile:
    """Which fault types a schedule may contain, with probabilities."""

    name: str
    crash_weights: tuple[int, ...] = (0,)  # distribution of crash counts
    p_partition: float = 0.0
    p_ring_loss: float = 0.0    # probabilistic drop on a ring link
    p_client_loss: float = 0.0  # probabilistic drop on a client link
    p_duplicate: float = 0.0
    p_delay: float = 0.0
    p_throttle: float = 0.0
    p_pause: float = 0.0
    retries: bool = True


CORE_PROFILE = ChaosProfile(
    name="core",
    crash_weights=(0, 0, 1, 1, 1, 2),
    p_partition=0.55,
    p_ring_loss=0.5,
    p_client_loss=0.6,
    p_duplicate=0.6,
    p_delay=0.7,
    p_throttle=0.45,
    p_pause=0.45,
    retries=True,
)

GENTLE_PROFILE = ChaosProfile(
    name="gentle",
    crash_weights=(0,),
    p_partition=0.5,
    p_ring_loss=0.0,
    p_client_loss=0.0,
    p_duplicate=0.0,
    p_delay=0.8,
    p_throttle=0.5,
    p_pause=0.5,
    retries=False,
)

#: Last instant any fault window may still be open.
FAULT_WINDOW_END = 1.0
#: Extra slack between the stall horizon and the client timeout: long
#: enough that a stalled-then-healed operation completes (and acks) well
#: before its retry timer fires.
RETRY_MARGIN = 0.4


@dataclass(frozen=True)
class ChaosSchedule:
    """One fully-specified chaos run."""

    seed: int
    index: int
    profile: str
    num_servers: int
    cluster_seed: int
    writers: int
    readers: int
    ops_per_client: int
    value_size: int
    plan: FaultPlan = field(compare=False)
    config: ProtocolConfig = field(compare=False)
    deadline: float = 10.0
    #: Simulated time the workload is paced to span.  Without pacing a
    #: few dozen operations finish in single-digit milliseconds — before
    #: the first fault window even opens — so each client spreads its
    #: operations across this span to guarantee fault/operation overlap.
    workload_span: float = 0.0

    @property
    def num_clients(self) -> int:
        return self.writers + self.readers

    def describe(self) -> str:
        kinds = ",".join(sorted(self.plan.fault_kinds())) or "none"
        return (
            f"[{self.profile}#{self.index}] servers={self.num_servers} "
            f"clients={self.writers}w+{self.readers}r ops={self.ops_per_client} "
            f"faults={kinds}"
        )


def generate_schedule(
    seed: int,
    index: int,
    num_servers: int = 4,
    profile: ChaosProfile = CORE_PROFILE,
) -> ChaosSchedule:
    """Draw one randomized schedule, deterministic in all arguments."""
    rng = random.Random(derive_seed(seed, f"chaos.{profile.name}.{index}"))
    servers = [f"s{i}" for i in range(num_servers)]
    writers = rng.randint(2, 3)
    readers = rng.randint(2, 4)
    clients = [f"c{i}" for i in range(writers + readers)]
    ops_per_client = rng.randint(4, 8)

    plan = FaultPlan()
    num_crashes = min(rng.choice(profile.crash_weights), num_servers - 1)
    for victim in rng.sample(servers, num_crashes):
        plan.crash(victim, at=round(rng.uniform(0.05, 1.4), 4))

    def window(max_len: float) -> tuple[float, float]:
        start = rng.uniform(0.05, FAULT_WINDOW_END - 0.05)
        end = min(FAULT_WINDOW_END, start + rng.uniform(0.02, max_len))
        return round(start, 4), round(end, 4)

    if num_servers >= 2 and rng.random() < profile.p_partition:
        at, heal_at = window(0.3)
        if rng.random() < 0.5 or len(clients) == 0:
            # Ring partition: split the servers into two non-empty groups.
            cut = rng.randint(1, num_servers - 1)
            shuffled = rng.sample(servers, num_servers)
            plan.partition([shuffled[:cut], shuffled[cut:]], at=at, heal_at=heal_at)
        else:
            # Client-side partition: some servers unreachable by clients.
            cut = rng.randint(1, num_servers - 1)
            island = rng.sample(servers, cut)
            plan.partition([island, clients], at=at, heal_at=heal_at)

    # Probabilistic loss on a ring link.  Never combined with crashes:
    # see the module docstring for why (zombie-pending resurrection).
    if num_servers >= 2 and num_crashes == 0 and rng.random() < profile.p_ring_loss:
        src = rng.choice(servers)
        dst = f"s{(int(src[1:]) + 1) % num_servers}"
        at, until = window(0.5)
        plan.drop(src, dst, p=round(rng.uniform(0.05, 0.3), 3), at=at, until=until)

    if rng.random() < profile.p_client_loss:
        at, until = window(0.6)
        plan.drop(
            rng.choice(clients), rng.choice(servers),
            p=round(rng.uniform(0.1, 0.4), 3), at=at, until=until, symmetric=True,
        )

    if rng.random() < profile.p_duplicate:
        at, until = window(0.6)
        if num_servers >= 2 and rng.random() < 0.5:
            src = rng.choice(servers)
            dst = f"s{(int(src[1:]) + 1) % num_servers}"
        else:
            src, dst = rng.choice(clients), rng.choice(servers)
        plan.duplicate(src, dst, p=round(rng.uniform(0.2, 0.6), 3),
                       at=at, until=until, symmetric=True)

    if rng.random() < profile.p_delay:
        at, until = window(0.6)
        everyone = servers + clients
        src = rng.choice(everyone)
        dst = rng.choice([name for name in everyone if name != src])
        plan.delay(src, dst, at=at, until=until,
                   extra=round(rng.uniform(0.0005, 0.003), 5),
                   jitter=round(rng.uniform(0.0, 0.002), 5), symmetric=True)

    if rng.random() < profile.p_throttle:
        at, until = window(0.5)
        plan.throttle(rng.choice(servers), factor=round(rng.uniform(2.0, 6.0), 2),
                      at=at, until=until)

    if rng.random() < profile.p_pause:
        at, _ = window(0.3)
        plan.pause(rng.choice(servers), at=at,
                   resume_at=round(at + rng.uniform(0.02, 0.12), 4))

    horizon = plan.stall_horizon()
    if profile.retries:
        config = ProtocolConfig(
            client_timeout=round(horizon + RETRY_MARGIN, 4),
            client_max_retries=40,
        )
    else:
        # Nothing in the gentle menu loses a frame, so every operation
        # completes without retries; an enormous timeout documents that.
        config = ProtocolConfig(client_timeout=1e9, client_max_retries=0)

    last_crash = max((crash.time for crash in plan.crashes), default=0.0)
    span = max(horizon, last_crash) + 0.3
    deadline = span + 4.0 * config.client_timeout + 2.0
    if not profile.retries:
        deadline = span + 4.0

    return ChaosSchedule(
        seed=seed,
        index=index,
        profile=profile.name,
        num_servers=num_servers,
        cluster_seed=derive_seed(seed, f"chaos.cluster.{profile.name}.{index}") % (2**31),
        writers=writers,
        readers=readers,
        ops_per_client=ops_per_client,
        value_size=rng.choice((32, 128, 512)),
        plan=plan,
        config=config,
        deadline=round(deadline, 4),
        workload_span=round(span, 4),
    )
