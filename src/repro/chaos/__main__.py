"""Command-line chaos harness.

Examples::

    python -m repro.chaos --runs 25 --seed 0
        25 randomized fault schedules against the core ring protocol;
        exits non-zero unless 25/25 are linearizable AND every required
        fault type (crash, restart, partition, drop, delay, duplicate)
        demonstrably fired at least once across the batch.

    python -m repro.chaos --profile partition --runs 25 --seed 0
        The partition-heavy batch: every schedule cuts the cluster under
        the *imperfect* heartbeat detector (epoch-guarded, quorum-
        installed views).  The gate additionally requires in-trace proof
        that at least one run wrongly suspected a live server
        (``fd.wrong_suspicions``) and still checked linearizable.

    python -m repro.chaos --profile scale --runs 10 --seed 0
        Chaos at benchmark scale: the sharded ``BlockStore`` (8+ blocks,
        thousands of operations per run) under the core fault envelope.
        Every run's history is split per block and gated through the
        O(n log n) tagged checker at 100% tag coverage — the value-based
        search would be hopeless on histories this size.

    python -m repro.chaos --profile skew --runs 25 --seed 0
        Elastic sharding under a skewed (hot/cold) workload: blocks live
        on per-ring placements and the rebalancer migrates and splits
        hot blocks *mid-run* while servers of the hot destination ring
        crash and recover.  Every run must complete at least one
        migration; the batch must also exercise the abort path.

    python -m repro.chaos --runs 5 --seed 3 --protocols core,abd,tob
        Smaller batch against several protocols (baselines get the
        gentle, loss-free profile they are expected to survive).

    python -m repro.chaos --smoke
        The fixed-seed CI job: a quick pass over the whole zoo.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import Optional

from repro.chaos.runner import TARGETS, ChaosResult, run_schedule
from repro.chaos.schedule import FAULT_KINDS, PROFILES, ChaosProfile, generate_schedule

#: Fault types the acceptance gate requires to have demonstrably fired
#: (throttle/pause are reported but not required: they are refinements).
#: ``restart`` is required: every core batch must prove — via the
#: ``process.restarts`` trace counter — that at least one crashed server
#: came back from its durable snapshot and rejoined mid-run.  A profile
#: may override this set (``ChaosProfile.required_kinds``).
REQUIRED_KINDS = ("crash", "restart", "partition", "drop", "delay", "duplicate")


def run_batch(
    protocol: str,
    runs: int,
    seed: int,
    num_servers: int,
    verbose: bool = True,
    profile: Optional[ChaosProfile] = None,
    batching: bool = True,
) -> list[ChaosResult]:
    if profile is None:
        profile = TARGETS[protocol].profile
    results = []
    for index in range(runs):
        schedule = generate_schedule(seed, index, num_servers, profile)
        if not batching:
            # Same schedule (plan/seeds compare equal; config is
            # compare=False), one message per frame.
            schedule = replace(
                schedule,
                config=replace(schedule.config, batch_max_messages=1),
            )
        result = run_schedule(schedule, protocol)
        results.append(result)
        if verbose:
            print(f"  run {index:3d}: {result.describe()}")
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="randomized fault injection with linearizability gating",
    )
    parser.add_argument("--runs", type=int, default=25,
                        help="schedules per protocol (default 25)")
    parser.add_argument("--seed", type=int, default=0,
                        help="root seed; every run derives from (seed, index)")
    parser.add_argument("--servers", type=int, default=4,
                        help="cluster size (default 4)")
    parser.add_argument("--protocols", default="core",
                        help="comma-separated targets, or 'all' "
                             f"(choices: {','.join(TARGETS)})")
    parser.add_argument("--profile", default=None,
                        help="generation profile override for the core "
                             f"protocol (choices: {','.join(PROFILES)}); "
                             "'partition' runs the imperfect heartbeat "
                             "detector with epoch-guarded views; 'lease' "
                             "adds epoch-scoped read leases and clock-skew "
                             "faults on top of the partition envelope; "
                             "'coded' runs the erasure-coded value backend "
                             "(k-of-n striping) under the partition "
                             "envelope and requires in-trace fragment "
                             "repairs; 'scale' runs the sharded block "
                             "store at benchmark scale, gated per block by "
                             "the tagged checker; 'skew' runs the elastic "
                             "block store under a hot/cold workload with "
                             "live block migration, requiring every run to "
                             "complete at least one migration")
    parser.add_argument("--smoke", action="store_true",
                        help="fixed quick pass over the whole zoo (CI)")
    parser.add_argument("--no-batch", action="store_true",
                        help="disable ring-frame batching (one message per "
                             "wire frame; the default gates the batched "
                             "path, which is also what benchmarks run)")
    parser.add_argument("-q", "--quiet", action="store_true")
    args = parser.parse_args(argv)

    if args.runs < 1:
        parser.error(f"--runs must be >= 1, got {args.runs}")
    if args.servers < 1:
        parser.error(f"--servers must be >= 1, got {args.servers}")
    profile = None
    if args.profile is not None:
        if args.profile not in PROFILES:
            parser.error(f"unknown profile {args.profile!r}; "
                         f"choices: {','.join(PROFILES)}")
        profile = PROFILES[args.profile]
        if args.smoke:
            parser.error("--smoke runs fixed profiles; drop --profile")
        if args.protocols not in ("core", "sharded"):
            parser.error("--profile only applies to the core or sharded protocol")
        if args.protocols == "sharded" and profile.name not in ("scale", "skew"):
            parser.error("the sharded protocol only runs 'scale' or 'skew' "
                         "schedules")
    if args.smoke:
        batches = [("core", 12), ("abd", 2), ("chain", 2), ("tob", 2), ("naive", 2)]
    else:
        if args.protocols == "all":
            # 'all' means the single-register zoo; the sharded target runs
            # multi-thousand-op schedules and is opted into explicitly
            # (--profile scale or --protocols sharded) so 'all' batches
            # keep their historical cost.
            names = [name for name in TARGETS if name != "sharded"]
        else:
            names = args.protocols.split(",")
        for name in names:
            if name not in TARGETS:
                parser.error(f"unknown protocol {name!r}; choices: {','.join(TARGETS)}")
        batches = [(name, args.runs) for name in names]
    if profile is not None and profile.name in ("scale", "skew"):
        # The scale and skew profiles *are* the sharded block store:
        # `--profile scale|skew` retargets the batch at the
        # multi-register cluster (skew additionally runs it elastic, with
        # the rebalancer live-migrating blocks mid-run).
        batches = [("sharded", args.runs)]

    failures = 0
    anomalies = 0
    retransmits = 0
    dups_suppressed = 0
    batched_frames = 0
    batched_messages = 0
    wrong_suspicions = 0
    lease_local_reads = 0
    lease_fallbacks = 0
    lease_waitouts = 0
    coding_fragment_stores = 0
    coding_reconstructions = 0
    coding_repairs = 0
    sharded_blocks = 0
    sharded_min_coverage = None
    migrations_completed = 0
    migrations_aborted = 0
    migration_splits = 0
    shard_redirects = 0
    exercised: set[str] = set()
    #: Coverage accumulated over the profile-gated batches (the core
    #: ring protocol and its sharded block-store variant) — the
    #: baselines' gentle schedules would dilute the gate.
    gated_exercised: set[str] = set()
    for protocol, runs in batches:
        batch_profile = profile if protocol in ("core", "sharded") else None
        profile_name = (batch_profile or TARGETS[protocol].profile).name
        if not args.quiet:
            print(f"== {protocol}: {runs} randomized {profile_name!r} schedules "
                  f"(seed {args.seed}) ==")
        results = run_batch(protocol, runs, args.seed, args.servers,
                            verbose=not args.quiet, profile=batch_profile,
                            batching=not args.no_batch)
        passed = sum(1 for result in results if result.ok)
        failures += sum(1 for result in results if not result.ok)
        anomalies += sum(1 for result in results if result.anomaly)
        for result in results:
            exercised |= result.exercised
            retransmits += result.retransmits
            dups_suppressed += result.dups_suppressed
            batched_frames += result.batched_frames
            batched_messages += result.batched_messages
            wrong_suspicions += result.wrong_suspicions
            lease_local_reads += result.lease_local_reads
            lease_fallbacks += result.lease_fallbacks
            lease_waitouts += result.lease_waitouts
            coding_fragment_stores += result.coding_fragment_stores
            coding_reconstructions += result.coding_reconstructions
            coding_repairs += result.coding_repairs
            migrations_completed += result.migrations_completed
            migrations_aborted += result.migrations_aborted
            migration_splits += result.migration_splits
            shard_redirects += result.shard_redirects
            if protocol in ("core", "sharded"):
                gated_exercised |= result.exercised
            if result.tag_coverage is not None:
                sharded_blocks += result.blocks_checked
                sharded_min_coverage = (
                    result.tag_coverage
                    if sharded_min_coverage is None
                    else min(sharded_min_coverage, result.tag_coverage)
                )
        print(f"  {protocol}: {passed}/{len(results)} schedules passed "
              f"the linearizability gate")

    print(f"fault types exercised: "
          f"{', '.join(kind for kind in FAULT_KINDS if kind in exercised) or 'none'}")
    print(f"reliable transport: {retransmits} retransmission(s), "
          f"{dups_suppressed} duplicate(s) suppressed")
    if batched_frames:
        print(f"ring-frame batching: {batched_messages} message(s) shared "
              f"{batched_frames} batch frame(s)")
    if anomalies:
        print(f"expected anomalies observed (naive baseline): {anomalies}")
    if sharded_min_coverage is not None:
        print(f"sharded gate: {sharded_blocks} per-block histories checked "
              f"(tagged checker), minimum tag coverage "
              f"{sharded_min_coverage:.3f}")

    gated = [(protocol, runs) for protocol, runs in batches
             if protocol in ("core", "sharded")]
    if profile is not None:
        gate_profile = profile
    elif gated:
        gate_profile = TARGETS[gated[0][0]].profile
    else:
        gate_profile = TARGETS["core"].profile
    if gate_profile.fd == "heartbeat":
        print(f"imperfect detector: {wrong_suspicions} wrong suspicion(s) "
              "of live servers, all runs gated through the checker")
    if gate_profile.read_leases:
        print(f"read leases: {lease_local_reads} read(s) served locally, "
              f"{lease_fallbacks} fence fallback(s), "
              f"{lease_waitouts} old-epoch wait-out(s)")
    if gate_profile.value_coding == "coded":
        print(f"coded backend: {coding_fragment_stores} fragment(s) "
              f"scattered, {coding_reconstructions} reconstruction(s), "
              f"{coding_repairs} fragment repair(s)")
    if gate_profile.elastic:
        print(f"elastic placement: {migrations_completed} migration(s) "
              f"completed, {migrations_aborted} aborted, "
              f"{migration_splits} hot-block split(s), "
              f"{shard_redirects} client redirect(s)")

    code = 0
    if failures:
        print(f"FAIL: {failures} run(s) failed the gate "
              "(linearizability violation or stalled workload)")
        code = 1
    gate = gated_exercised if gated_exercised else exercised
    required = gate_profile.required_kinds or REQUIRED_KINDS
    missing = [kind for kind in required if kind not in gate]
    gated_runs = sum(runs for _protocol, runs in gated)
    # Coverage is a statistical property; only gate on it when the gated
    # batch is large enough that every required kind should have fired.
    if missing and gated_runs >= 10:
        print(f"FAIL: fault coverage incomplete, never fired: {', '.join(missing)}")
        code = 1
    if gate_profile.fd == "heartbeat" and gated_runs >= 10 and not wrong_suspicions:
        print("FAIL: no run wrongly suspected a live server — the batch "
              "never exercised the imperfect detector's defining hazard")
        code = 1
    if gate_profile.read_leases and gated_runs >= 10 and not lease_local_reads:
        print("FAIL: no read was served locally under a lease — the batch "
              "fenced everything and never exercised the leased path")
        code = 1
    if (gate_profile.value_coding == "coded" and gated_runs >= 10
            and not coding_repairs):
        print("FAIL: no fragment was ever repaired from peers — the batch "
              "never exercised coded durability (merge union / RADON "
              "repair), only coded steady state")
        code = 1
    # Aborts need a crash to land inside a migration's short drain/transfer
    # window — rarer than the per-run fault kinds, so this gate needs a
    # bigger batch before "never fired" is evidence of a dead code path.
    if gate_profile.elastic and gated_runs >= 20 and not migrations_aborted:
        print("FAIL: no migration was ever aborted — the batch never "
              "exercised the crash-mid-migration abort path (staged state "
              "discarded, parked requests replayed)")
        code = 1
    if code == 0:
        print("chaos: all gates green")
    return code


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
