"""Randomized chaos harness: adversarial validation of atomicity.

The paper proves the ring algorithm atomic under crashes; the ROADMAP
asks for "as many scenarios as you can imagine".  This package generates
seeded random fault schedules — crashes, partitions, message loss,
delay, duplication, slow NICs, process pauses — executes them against
the core protocol and every baseline in the zoo, and gates each recorded
history through the linearizability checker.

Usage::

    python -m repro.chaos --runs 25 --seed 0          # core protocol
    python -m repro.chaos --runs 5 --protocols all    # whole zoo
    python -m repro.chaos --smoke                     # 30-second CI job

or programmatically::

    from repro.chaos import generate_schedule, run_schedule
    result = run_schedule(generate_schedule(seed=0, index=7))
    assert result.linearizable, result.reason
"""

from repro.chaos.runner import TARGETS, ChaosResult, run_schedule
from repro.chaos.schedule import (
    CORE_PROFILE,
    FAULT_KINDS,
    GENTLE_PROFILE,
    PARTITION_PROFILE,
    SCALE_PROFILE,
    PROFILES,
    ChaosProfile,
    ChaosSchedule,
    generate_schedule,
)

__all__ = [
    "CORE_PROFILE",
    "FAULT_KINDS",
    "GENTLE_PROFILE",
    "PARTITION_PROFILE",
    "SCALE_PROFILE",
    "PROFILES",
    "ChaosProfile",
    "ChaosResult",
    "ChaosSchedule",
    "TARGETS",
    "generate_schedule",
    "run_schedule",
]
