"""Real asyncio TCP runtime: the deployable implementation.

The same sans-I/O state machines that run in the simulator and the round
model run here over real sockets, exactly as the paper's C implementation
ran over a cluster:

* each server listens on a TCP port; connections identify themselves
  with a one-frame handshake (ring predecessor or client);
* a writer task pulls ring messages one at a time
  (:meth:`ServerProtocol.next_ring_message`) and sends them to the
  current successor — natural backpressure gives the paper's
  one-message-at-a-time ring slotting;
* a broken outgoing ring connection *is* the perfect failure detector
  (the paper: "when a TCP connection fails, the server on the other side
  of the connection failed"); the detecting predecessor coordinates the
  reconfiguration, and other servers learn of the crash from the
  reconfiguration token's dead set;
* clients connect to any server, retry at the next one on timeout.

Everything runs on one event loop; protocol calls are serialized by the
loop, so the state machines need no locks.
"""

from __future__ import annotations

import asyncio
import struct
from typing import Optional

from repro.core.client import ClientProtocol
from repro.core.config import ProtocolConfig
from repro.core.messages import OpId, ReadAck, WriteAck
from repro.core.ring import RingView
from repro.core.server import ServerProtocol
from repro.errors import StorageUnavailableError
from repro.runtime.interface import (
    CancelTimer,
    Complete,
    Fail,
    SendTo,
    SetTimer,
)
from repro.transport.codec import decode_message, encode_message
from repro.transport.framing import FrameDecoder, frame

_HELLO = struct.Struct(">Bq")  # kind (0 = ring, 1 = client), peer id
_KIND_RING = 0
_KIND_CLIENT = 1


async def _read_frames(reader: asyncio.StreamReader, decoder: FrameDecoder):
    """Yield complete frames from ``reader`` until EOF."""
    while True:
        chunk = await reader.read(64 * 1024)
        if not chunk:
            return
        for payload in decoder.feed(chunk):
            yield payload


class AsyncServerNode:
    """One storage server on asyncio TCP."""

    def __init__(
        self,
        server_id: int,
        ring: RingView,
        addresses: dict[int, tuple[str, int]],
        config: Optional[ProtocolConfig] = None,
    ):
        self.server_id = server_id
        # Shared mapping (the cluster may still be filling it in).
        self.addresses = addresses
        self.proto = ServerProtocol(server_id, ring, config)
        self._server: Optional[asyncio.AbstractServer] = None
        self._client_writers: dict[int, asyncio.StreamWriter] = {}
        self._inbound_writers: list[asyncio.StreamWriter] = []
        self._ring_writer: Optional[asyncio.StreamWriter] = None
        self._ring_peer: Optional[int] = None
        self._ring_wake = asyncio.Event()
        self._tasks: list[asyncio.Task] = []
        self._stopped = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        host, port = self.addresses[self.server_id]
        self._server = await asyncio.start_server(self._on_connection, host, port)
        self._tasks.append(asyncio.create_task(self._ring_sender()))

    async def stop(self) -> None:
        """Crash the server: abort every connection immediately."""
        self._stopped = True
        if self._server is not None:
            self._server.close()
        for task in self._tasks:
            task.cancel()
        writers = [self._ring_writer, *self._client_writers.values(), *self._inbound_writers]
        for writer in writers:
            if writer is not None:
                writer.transport.abort()
        await asyncio.sleep(0)

    # ------------------------------------------------------------------
    # Inbound connections
    # ------------------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        decoder = FrameDecoder()
        self._inbound_writers.append(writer)
        try:
            hello = await reader.readexactly(_HELLO.size)
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        kind, peer_id = _HELLO.unpack(hello)
        if kind == _KIND_CLIENT:
            self._client_writers[peer_id] = writer
        try:
            async for payload in _read_frames(reader, decoder):
                if self._stopped:
                    break
                message = decode_message(payload)
                if kind == _KIND_RING:
                    replies = self.proto.on_ring_message(message)
                else:
                    replies = self.proto.on_client_message(peer_id, message)
                await self._dispatch_replies(replies)
                self._ring_wake.set()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if kind == _KIND_CLIENT:
                self._client_writers.pop(peer_id, None)
            writer.close()

    async def _dispatch_replies(self, replies) -> None:
        for reply in replies:
            writer = self._client_writers.get(reply.client)
            if writer is None:
                continue
            try:
                writer.write(frame(encode_message(reply.message)))
                await writer.drain()
            except ConnectionError:
                self._client_writers.pop(reply.client, None)

    # ------------------------------------------------------------------
    # Outgoing ring connection + perfect failure detection
    # ------------------------------------------------------------------

    async def _ring_sender(self) -> None:
        while not self._stopped:
            message = self.proto.next_ring_message()
            if message is None:
                self._ring_wake.clear()
                if self.proto.has_ring_work:
                    continue
                await self._ring_wake.wait()
                continue
            successor = self.proto.successor
            try:
                writer = await self._successor_writer(successor)
                writer.write(frame(encode_message(message)))
                await writer.drain()
            except (ConnectionError, OSError):
                # The paper's failure detector: a broken ring connection
                # means the successor crashed.  Splice and reconfigure.
                self._drop_ring_writer()
                if self.proto.ring.is_alive(successor) and self.proto.ring.num_alive > 1:
                    replies = self.proto.on_server_crash(successor)
                    await self._dispatch_replies(replies)
                # The undelivered message's state is covered by the
                # reconfiguration merge; do not retransmit it verbatim.
                continue

    async def _successor_writer(self, successor: int) -> asyncio.StreamWriter:
        if (
            self._ring_writer is not None
            and self._ring_peer == successor
            and not self._ring_writer.is_closing()
        ):
            return self._ring_writer
        self._drop_ring_writer()
        host, port = self.addresses[successor]
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(_HELLO.pack(_KIND_RING, self.server_id))
        await writer.drain()
        self._ring_writer = writer
        self._ring_peer = successor
        # Watch the read side: EOF or a reset on this connection is the
        # paper's failure-detector signal for the successor's crash.
        self._tasks.append(asyncio.create_task(self._watch_successor(reader, successor)))
        return writer

    async def _watch_successor(self, reader: asyncio.StreamReader, peer: int) -> None:
        try:
            while True:
                chunk = await reader.read(4096)
                if not chunk:
                    break
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        if self._stopped or self._ring_peer != peer:
            return
        self._drop_ring_writer()
        if self.proto.ring.is_alive(peer) and self.proto.ring.num_alive > 1:
            replies = self.proto.on_server_crash(peer)
            await self._dispatch_replies(replies)
        self._ring_wake.set()

    def _drop_ring_writer(self) -> None:
        if self._ring_writer is not None:
            self._ring_writer.close()
        self._ring_writer = None
        self._ring_peer = None


class AsyncClient:
    """One logical client over asyncio TCP (one operation at a time)."""

    def __init__(
        self,
        client_id: int,
        servers: list[int],
        addresses: dict[int, tuple[str, int]],
        config: Optional[ProtocolConfig] = None,
    ):
        self.proto = ClientProtocol(client_id, servers, config)
        self.client_id = client_id
        self.addresses = dict(addresses)
        self._connections: dict[int, tuple[asyncio.StreamReader, asyncio.StreamWriter]] = {}
        self._futures: dict[OpId, asyncio.Future] = {}
        self._timers: dict[int, asyncio.TimerHandle] = {}
        self._reader_tasks: dict[int, asyncio.Task] = {}

    async def write(self, value: bytes) -> None:
        op, effects = self.proto.start_write(value)
        await self._run_op(op, effects)

    async def read(self) -> bytes:
        op, effects = self.proto.start_read()
        result = await self._run_op(op, effects)
        return result

    async def close(self) -> None:
        for timer in self._timers.values():
            timer.cancel()
        for task in self._reader_tasks.values():
            task.cancel()
        for _reader, writer in self._connections.values():
            writer.close()
        self._connections.clear()

    # ------------------------------------------------------------------

    async def _run_op(self, op: OpId, effects) -> Optional[bytes]:
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._futures[op] = future
        await self._execute(effects)
        return await future

    async def _execute(self, effects) -> None:
        loop = asyncio.get_running_loop()
        for effect in effects:
            if isinstance(effect, SendTo):
                await self._send(effect.server, effect.message)
            elif isinstance(effect, SetTimer):
                self._cancel(effect.timer_id)
                self._timers[effect.timer_id] = loop.call_later(
                    effect.delay, self._timeout, effect.timer_id
                )
            elif isinstance(effect, CancelTimer):
                self._cancel(effect.timer_id)
            elif isinstance(effect, Complete):
                future = self._futures.pop(effect.op, None)
                if future is not None and not future.done():
                    future.set_result(effect.value)
            elif isinstance(effect, Fail):
                future = self._futures.pop(effect.op, None)
                if future is not None and not future.done():
                    future.set_exception(
                        StorageUnavailableError(f"{effect.op}: {effect.reason}")
                    )

    async def _send(self, server: int, message) -> None:
        try:
            writer = await self._connection(server)
            writer.write(frame(encode_message(message)))
            await writer.drain()
        except (ConnectionError, OSError):
            self._drop(server)
            # The retry timer will move us to another server.

    async def _connection(self, server: int) -> asyncio.StreamWriter:
        if server in self._connections:
            return self._connections[server][1]
        host, port = self.addresses[server]
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(_HELLO.pack(_KIND_CLIENT, self.client_id))
        await writer.drain()
        self._connections[server] = (reader, writer)
        self._reader_tasks[server] = asyncio.create_task(self._reader(server, reader))
        return writer

    async def _reader(self, server: int, reader: asyncio.StreamReader) -> None:
        decoder = FrameDecoder()
        try:
            async for payload in _read_frames(reader, decoder):
                message = decode_message(payload)
                if isinstance(message, (ReadAck, WriteAck)):
                    await self._execute(self.proto.on_reply(message))
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._drop(server)

    def _timeout(self, timer_id: int) -> None:
        self._timers.pop(timer_id, None)
        asyncio.ensure_future(self._execute(self.proto.on_timeout(timer_id)))

    def _cancel(self, timer_id: int) -> None:
        timer = self._timers.pop(timer_id, None)
        if timer is not None:
            timer.cancel()

    def _drop(self, server: int) -> None:
        conn = self._connections.pop(server, None)
        if conn is not None:
            conn[1].close()
        task = self._reader_tasks.pop(server, None)
        if task is not None:
            task.cancel()


class AsyncCluster:
    """Convenience: an n-server cluster on localhost ephemeral ports."""

    def __init__(self, num_servers: int, config: Optional[ProtocolConfig] = None):
        self.num_servers = num_servers
        self.config = config or ProtocolConfig()
        self.nodes: dict[int, AsyncServerNode] = {}
        self.addresses: dict[int, tuple[str, int]] = {}
        self._next_client = 0

    async def start(self, base_port: int = 0) -> None:
        ring = RingView.initial(self.num_servers)
        # Bind listeners first so successor connections find them.
        for server_id in range(self.num_servers):
            node = AsyncServerNode(server_id, ring, self.addresses, self.config)
            host, port = "127.0.0.1", 0
            node._server = await asyncio.start_server(node._on_connection, host, port)
            actual = node._server.sockets[0].getsockname()
            self.addresses[server_id] = (actual[0], actual[1])
            self.nodes[server_id] = node
        for node in self.nodes.values():
            node._tasks.append(asyncio.create_task(node._ring_sender()))

    async def stop(self) -> None:
        for node in self.nodes.values():
            await node.stop()

    async def crash_server(self, server_id: int) -> None:
        await self.nodes[server_id].stop()

    def client(self, home_server: int = 0) -> AsyncClient:
        self._next_client += 1
        order = sorted(self.nodes)
        index = order.index(home_server)
        order = order[index:] + order[:index]
        return AsyncClient(10_000 + self._next_client, order, self.addresses, self.config)
