"""Real asyncio TCP runtime: the deployable implementation.

The same sans-I/O state machines that run in the simulator and the round
model run here over real sockets, exactly as the paper's C implementation
ran over a cluster:

* each server listens on a TCP port; connections identify themselves
  with a one-frame handshake (ring predecessor or client);
* a writer task pulls ring messages one at a time
  (:meth:`ServerProtocol.next_ring_message`) and sends them to the
  current successor — natural backpressure gives the paper's
  one-message-at-a-time ring slotting;
* a broken outgoing ring connection *is* the perfect failure detector
  (the paper: "when a TCP connection fails, the server on the other side
  of the connection failed"); the detecting predecessor coordinates the
  reconfiguration, and other servers learn of the crash from the
  reconfiguration token's dead set;
* clients connect to any server, retry at the next one on timeout;
* every frame rides in a reliable-session segment
  (:mod:`repro.transport.reliable`).  TCP already retransmits *within* a
  connection, so the session layer earns its keep at the seams TCP does
  not cover.  The *ring* session persists across same-peer reconnects: a
  sender re-establishes a dropped successor connection by retransmitting
  exactly its unacked suffix, and the receiver's sequence numbers
  deduplicate whatever had already arrived.  *Client* sessions are
  connection-scoped on both ends — across a reconnect, exactly-once
  delivery of client operations is the protocol's OpId dedup (the same
  machinery that covers retries to a *different* server) — while within
  a connection the cumulative acks tell each side which frames actually
  reached the peer application, not merely its socket buffer.  The
  simulator wires the identical sessions under its fabric, so both
  runtimes implement — not assume — the paper's reliable FIFO channels;
* crashed servers can *restart*: each node persists a write-ahead
  snapshot (:mod:`repro.core.durable`; file-backed via
  ``AsyncCluster(durable_dir=...)``), and :meth:`AsyncServerNode.restart`
  reloads it, re-listens on the node's port and announces the node to a
  live sponsor (hello kind ``rejoin``) until a reconfiguration folds it
  back into the ring.  Every hello carries the sender's restart
  generation, so a receiver can tell a same-incarnation reconnect (keep
  the ring session; replay the unacked suffix) from a restarted peer
  (fresh session — the restarted sender's sequence numbers start over);
* ``AsyncCluster(fd="heartbeat")`` swaps the perfect detector for the
  *imperfect* one: every node beacons every other (hello kind ``hb``)
  and suspects on timeout, a broken ring connection is just a broken
  connection (the sender redials; the session replays the unacked
  suffix), and reconfiguration runs in epoch-guarded ``view_quorum``
  mode — suspicion pauses a server, views install only with an ack
  quorum of the previous view, stale traffic is rejected by epoch, and
  a wrongly suspected server is folded back in through a sponsored
  merge instead of serving stale reads (see docs/reconfiguration.md).
"""

from __future__ import annotations

import asyncio
import struct
from typing import Optional

from repro.core.client import ClientProtocol
from repro.core.config import ProtocolConfig
from repro.core.durable import MemorySnapshotStore, SnapshotStore
from repro.core.messages import (
    Heartbeat,
    LeaseGrant,
    LeaseRevoke,
    OpId,
    ReadAck,
    RejoinRequest,
    WriteAck,
)
from repro.core.ring import RingView
from repro.core.server import ServerProtocol
from repro.errors import ConfigurationError, StorageUnavailableError
from repro.fd.heartbeat import HeartbeatConfig, HeartbeatTracker, ReadLease
from repro.runtime.interface import (
    CancelTimer,
    Complete,
    Fail,
    SendTo,
    SetTimer,
)
from repro.transport.codec import decode_message, encode_message
from repro.transport.framing import FrameDecoder, frame
from repro.transport.reliable import (
    ReliableSession,
    Segment,
    decode_frame,
    encode_batch,
    encode_segment,
)

#: Connection hello: kind (0 = ring, 1 = client, 2 = control, 3 =
#: heartbeat), peer id, and the peer's restart generation.  The
#: generation gives ring connections *incarnation* identity: a reconnect
#: from the same peer at the same generation resumes the persistent ring
#: session (the sender replays its unacked suffix), while a higher
#: generation means the peer restarted — its session state is gone, so
#: the receiver starts a fresh session instead of suppressing the
#: newcomer's restarted sequence numbers as duplicates.
_HELLO = struct.Struct(">BqI")
_KIND_RING = 0
_KIND_CLIENT = 1
#: Out-of-ring-order control traffic: rejoin announcements and
#: stale-epoch notices, one idempotent raw frame per short-lived
#: connection.
_KIND_REJOIN = 2
#: Persistent heartbeat stream (fd="heartbeat"): raw Heartbeat frames,
#: no session layer — a retransmitted heartbeat is not freshness.
_KIND_HB = 3

#: How often a rejoining server re-announces itself (to the next
#: candidate sponsor, round-robin) until a reconfiguration commit folds
#: it back into the ring.
_REJOIN_RETRY = 0.3

#: How long the ring sender waits before redialling an unreachable
#: successor under the heartbeat detector (where a refused connection is
#: *not* a crash certificate — the session holds the unacked suffix and
#: replays it once the dial succeeds).
_RING_REDIAL = 0.1

#: Default heartbeat timings for real sockets: much coarser than the
#: simulator's, because an event loop stalled by CI noise must not spray
#: wrong suspicions (they would be *safe*, but churny).
DEFAULT_ASYNC_HEARTBEAT = HeartbeatConfig(
    period=0.1, timeout=0.6, check_interval=0.05, propose_grace=0.25,
    lease_duration=0.4, clock_drift_bound=0.05,
)


def _segment_frame(segment: Segment) -> bytes:
    """One wire frame carrying a session-layer segment."""
    return frame(encode_segment(segment, encode_message))


def _segments_frame(segments: list) -> bytes:
    """One wire frame carrying one or more segments: the plain encoding
    for a single segment, the batch container for several.  Receivers
    decode both through :func:`repro.transport.reliable.decode_frame`."""
    if len(segments) == 1:
        return _segment_frame(segments[0])
    return frame(encode_batch(segments, encode_message))


def _now() -> float:
    return asyncio.get_running_loop().time()


async def _read_frames(reader: asyncio.StreamReader, decoder: FrameDecoder):
    """Yield complete frames from ``reader`` until EOF."""
    while True:
        chunk = await reader.read(64 * 1024)
        if not chunk:
            return
        for payload in decoder.feed(chunk):
            yield payload


class AsyncServerNode:
    """One storage server on asyncio TCP."""

    def __init__(
        self,
        server_id: int,
        ring: RingView,
        addresses: dict[int, tuple[str, int]],
        config: Optional[ProtocolConfig] = None,
        durable: Optional[SnapshotStore] = None,
        fd: str = "perfect",
        heartbeat: Optional[HeartbeatConfig] = None,
    ):
        self.server_id = server_id
        # Shared mapping (the cluster may still be filling it in).
        self.addresses = addresses
        self.config = config
        #: Failure detection mode: "perfect" treats a broken ring
        #: connection as a crash certificate (the paper's model);
        #: "heartbeat" runs the imperfect detector — periodic beacons,
        #: timeout suspicion that may be wrong, epoch-guarded
        #: quorum-installed views (``config.view_quorum``) — and treats
        #: a broken connection as just a broken connection.
        self.fd = fd
        self.hb_config = (
            (heartbeat or DEFAULT_ASYNC_HEARTBEAT).validate()
            if fd == "heartbeat"
            else None
        )
        self._tracker: Optional[HeartbeatTracker] = None
        self._hb_writers: dict[int, asyncio.StreamWriter] = {}
        #: Holder-side read lease (``config.read_leases`` under the
        #: heartbeat detector).  Deliberately volatile: a restart
        #: rebuilds it empty in :meth:`spawn_background`, so a rejoining
        #: incarnation re-earns grants instead of reviving pre-crash ones.
        self._lease: Optional[ReadLease] = None
        self._lease_pushed: Optional[tuple[bool, int]] = None
        self._reconcile_pending = False
        self._announcer_task: Optional[asyncio.Task] = None
        #: Durable snapshot store; a restart reloads from it.  Use a
        #: :class:`~repro.core.durable.FileSnapshotStore` for state that
        #: must survive the *process* (the deployment story); the default
        #: in-memory store survives :meth:`restart` within one process.
        self.durable = durable if durable is not None else MemorySnapshotStore()
        #: Restart generation, carried in every outgoing hello so peers
        #: can tell a restarted incarnation from a reconnect.
        self.generation = 0
        self.proto = ServerProtocol(server_id, ring, config, durable=self.durable)
        self._server: Optional[asyncio.AbstractServer] = None
        self._client_writers: dict[int, asyncio.StreamWriter] = {}
        self._inbound_writers: list[asyncio.StreamWriter] = []
        self._ring_writer: Optional[asyncio.StreamWriter] = None
        self._ring_peer: Optional[int] = None
        self._ring_wake = asyncio.Event()
        self._tasks: list[asyncio.Task] = []
        self._stopped = False
        # Reliable sessions: one endpoint toward the current successor
        # (reset whenever the successor changes — a new ring link is a
        # new channel), one per inbound peer (ring predecessors by
        # ``-peer_id - 1`` to keep them disjoint from client ids).
        self._ring_session = ReliableSession()
        #: The peer the ring session's stream is addressed to; a
        #: successor change resets the session *before* new messages
        #: enter it, so an undialled successor never wipes queued data.
        self._session_peer: Optional[int] = None
        self._peer_sessions: dict[int, ReliableSession] = {}
        # Last hello generation seen per inbound ring peer: a higher one
        # means the peer restarted, so its persistent session is void.
        self._peer_generations: dict[int, int] = {}

    def _peer_session(self, key: int) -> ReliableSession:
        session = self._peer_sessions.get(key)
        if session is None:
            session = self._peer_sessions[key] = ReliableSession()
        return session

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        host, port = self.addresses[self.server_id]
        self._server = await asyncio.start_server(self._on_connection, host, port)
        self.spawn_background(trusting=True)

    def spawn_background(self, trusting: bool) -> None:
        """Start the sender task and, in heartbeat mode, the detector.

        ``trusting`` seeds the tracker's silence clocks: a cold start
        trusts its peers for one timeout, a restart starts suspect-first
        (the snapshot carries no liveness information, so nobody is
        vouched for until a heartbeat actually arrives).
        """
        self._tasks.append(asyncio.create_task(self._ring_sender()))
        if self.fd != "heartbeat":
            return
        self._lease = (
            ReadLease(self.hb_config.lease_duration)
            if self.proto.config.read_leases
            else None
        )
        self._lease_pushed = None
        base = _now() if trusting else _now() - self.hb_config.timeout - 1e-9
        self._tracker = HeartbeatTracker(
            [sid for sid in sorted(self.addresses) if sid != self.server_id],
            self.hb_config.timeout,
            now=base,
            imperfect=True,
        )
        self._tasks.append(asyncio.create_task(self._heartbeat_sender()))
        self._tasks.append(asyncio.create_task(self._suspicion_checker()))

    async def stop(self) -> None:
        """Crash the server: abort every connection immediately."""
        self._stopped = True
        if self._server is not None:
            self._server.close()
        for task in self._tasks:
            task.cancel()
        if self._announcer_task is not None:
            self._announcer_task.cancel()
        writers = [
            self._ring_writer,
            *self._client_writers.values(),
            *self._inbound_writers,
            *self._hb_writers.values(),
        ]
        for writer in writers:
            if writer is not None:
                writer.transport.abort()
        await asyncio.sleep(0)

    async def restart(self) -> None:
        """Restart a stopped server from its durable snapshot and rejoin.

        The volatile half is rebuilt from scratch (a new protocol
        restored from the snapshot, fresh sessions — every link is a new
        connection, which the bumped ``generation`` communicates); the
        node re-listens on its recorded address and announces itself to
        the live servers until a reconfiguration folds it back in.
        """
        if not self._stopped:
            return
        self.generation += 1
        self._stopped = False
        self._tasks = []
        self._client_writers = {}
        self._inbound_writers = []
        self._hb_writers = {}
        self._ring_writer = None
        self._ring_peer = None
        self._ring_wake = asyncio.Event()
        self._ring_session = ReliableSession()
        self._session_peer: Optional[int] = None
        self._peer_sessions = {}
        self._peer_generations = {}
        self._reconcile_pending = False
        self._announcer_task = None
        self.proto = ServerProtocol.restore(
            self.server_id,
            sorted(self.addresses),
            self.durable.load(),
            self.config,
            durable=self.durable,
            generation=self.generation,
            alone=len(self.addresses) == 1,
        )
        host, port = self.addresses[self.server_id]
        self._server = await asyncio.start_server(self._on_connection, host, port)
        self.spawn_background(trusting=False)
        self._ensure_announcer()

    async def _rejoin_announcer(self) -> None:
        """Announce this restarted server to candidate sponsors until a
        reconfiguration commit resumes it.

        Each attempt opens a short-lived connection (hello kind
        ``rejoin``) to the next candidate, round-robin, pacing attempts
        at ``_REJOIN_RETRY`` whether or not the candidate answered.
        With the paper's failure model a refused connection means that
        server is down, so two full rounds of nothing-but-refusals mean
        *nobody* is alive: the restarted server is the whole ring and
        resumes alone from its snapshot, mirroring the simulator's
        alone-restart.  Known limitation: if every server crashes and
        several restart near-simultaneously, their listeners accept each
        other's announcements (no refusal), each defers the other's
        request while paused, and none takes the alone path — mass
        cold-start recovery needs the quorum/epoch reconfiguration the
        roadmap's partition-tolerance item calls for.
        """
        candidates = [sid for sid in sorted(self.addresses) if sid != self.server_id]
        consecutive_refusals = 0
        attempt = 0
        while not self._stopped and self.proto.rejoining and candidates:
            sponsor = candidates[attempt % len(candidates)]
            attempt += 1
            try:
                _reader, writer = await asyncio.open_connection(
                    *self.addresses[sponsor]
                )
                writer.write(_HELLO.pack(_KIND_REJOIN, self.server_id, self.generation))
                writer.write(
                    frame(
                        encode_message(
                            RejoinRequest(
                                self.server_id,
                                self.generation,
                                self.proto.installed_epoch,
                            )
                        )
                    )
                )
                await writer.drain()
                writer.close()
                consecutive_refusals = 0
            except (ConnectionError, OSError):
                consecutive_refusals += 1
                if (
                    self.fd != "heartbeat"
                    and consecutive_refusals >= 2 * len(candidates)
                ):
                    # Perfect-detector reasoning only: a refused
                    # connection *means* the peer is down, so a full
                    # round of refusals means nobody is alive.  Under
                    # the heartbeat detector silence could be a
                    # partition, and resuming alone without quorum
                    # evidence would fork the register — keep announcing
                    # instead.
                    self.proto.complete_rejoin_alone()
                    self.proto.drain_replies()  # nobody is waiting across a restart
                    self._ring_wake.set()
                    return
            await asyncio.sleep(_REJOIN_RETRY)

    def _ensure_announcer(self) -> None:
        """Keep a rejoin announcer running while the protocol rejoins.

        Covers both a restarted server and a live one demoted by the
        epoch guard (StaleEpochNotice / future-epoch evidence)."""
        if not self.proto.rejoining or self._stopped:
            return
        if self._announcer_task is None or self._announcer_task.done():
            self._announcer_task = asyncio.create_task(self._rejoin_announcer())

    # ------------------------------------------------------------------
    # Imperfect failure detector (fd="heartbeat")
    # ------------------------------------------------------------------

    async def _heartbeat_sender(self) -> None:
        """Beacon to every peer each period over persistent connections.

        A failed or slow dial simply drops the beat — silence *is* the
        signal — and the connection is re-attempted next period.  Every
        await is bounded by the period: one blackholed peer (a firewall
        that swallows SYNs rather than refusing them) must not suppress
        the beacons every *other* peer relies on for our liveness.
        """
        budget = self.hb_config.period
        while not self._stopped:
            for peer in sorted(self.addresses):
                if peer == self.server_id:
                    continue
                writer = self._hb_writers.get(peer)
                if writer is None or writer.is_closing():
                    try:
                        _r, writer = await asyncio.wait_for(
                            asyncio.open_connection(*self.addresses[peer]),
                            timeout=budget,
                        )
                        writer.write(
                            _HELLO.pack(_KIND_HB, self.server_id, self.generation)
                        )
                        self._hb_writers[peer] = writer
                    except (ConnectionError, OSError, asyncio.TimeoutError):
                        self._hb_writers.pop(peer, None)
                        continue
                try:
                    writer.write(frame(encode_message(Heartbeat(self.server_id))))
                    if self._lease_granting and self.proto.may_grant_lease(peer):
                        # Grants ride the raw heartbeat stream (no
                        # session layer): a retransmitted grant must not
                        # count as fresh, and the sent_at stamp makes a
                        # delayed one expire on the holder's clock.
                        writer.write(
                            frame(
                                encode_message(
                                    LeaseGrant(
                                        self.server_id,
                                        self.proto.installed_epoch,
                                        _now(),
                                    )
                                )
                            )
                        )
                    await asyncio.wait_for(writer.drain(), timeout=budget)
                except (ConnectionError, OSError, asyncio.TimeoutError):
                    writer.close()
                    self._hb_writers.pop(peer, None)
            await asyncio.sleep(self.hb_config.period)

    @property
    def _lease_granting(self) -> bool:
        return (
            self.proto.config.read_leases
            and self.hb_config is not None
            and self.hb_config.grant_leases
        )

    async def _suspicion_checker(self) -> None:
        """Poll the tracker and feed suspicion transitions to the protocol."""
        while not self._stopped:
            await asyncio.sleep(self.hb_config.check_interval)
            if self._stopped:
                return
            for peer in self._tracker.check(_now()):
                if self._lease_granting:
                    self._send_lease_revoke(peer)
                await self._dispatch_replies(self.proto.on_suspect(peer))
                self._after_step()
            # Periodic validity recheck: grants expire by clock, not by
            # any arriving message, so the checker is what notices.
            await self._sync_lease()

    async def _on_heartbeat(self, peer: int) -> None:
        if self._tracker is None:
            return
        if self._tracker.heard_from(peer, _now()):
            await self._dispatch_replies(self.proto.on_unsuspect(peer))
            self._after_step()

    # ------------------------------------------------------------------
    # Read leases (fd="heartbeat" + config.read_leases)
    # ------------------------------------------------------------------

    def _send_lease_revoke(self, peer: int) -> None:
        """Best-effort immediate revoke on new suspicion.

        Rides the existing heartbeat connection if one survives; when it
        does not (the usual case — the peer is silent because the link
        is gone), the grant's own expiry bounds the holder's exposure.
        """
        writer = self._hb_writers.get(peer)
        if writer is None or writer.is_closing():
            return
        try:
            writer.write(
                frame(
                    encode_message(
                        LeaseRevoke(self.server_id, self.proto.installed_epoch)
                    )
                )
            )
        except (ConnectionError, OSError):
            self._hb_writers.pop(peer, None)

    async def _sync_lease(self) -> None:
        """Re-derive lease validity and push transitions to the protocol."""
        if self._lease is None:
            return
        proto = self.proto
        self._lease.set_required(
            [sid for sid in proto.installed_view.alive() if sid != self.server_id]
        )
        epoch = proto.installed_epoch
        valid = self._lease.valid(_now(), epoch)
        if self._lease_pushed == (valid, epoch):
            return
        self._lease_pushed = (valid, epoch)
        await self._dispatch_replies(proto.on_lease_update(valid, epoch))
        self._ring_wake.set()

    def _schedule_lease_waitout(self, epoch: int) -> None:
        self._track(
            asyncio.create_task(self._lease_waitout(epoch, self.generation))
        )

    async def _lease_waitout(self, epoch: int, generation: int) -> None:
        """Fire the old-epoch lease wait-out after its provable bound."""
        await asyncio.sleep(self.hb_config.waitout())
        if self._stopped or self.generation != generation:
            return
        await self._dispatch_replies(self.proto.lease_waitout_elapsed(epoch))
        self._after_step()
        self._ring_wake.set()

    def _track(self, task: asyncio.Task) -> None:
        """Register a background task, pruning finished ones.

        Reconcile cycles and watchdog re-arms spawn tasks for the whole
        life of the node; without pruning, a long partition would grow
        the list (and its retained coroutine frames) without bound.
        """
        self._tasks = [t for t in self._tasks if not t.done()]
        self._tasks.append(task)

    def _after_step(self) -> None:
        """Post-handler hook: reconcile timers and the rejoin announcer."""
        proto = self.proto
        if not proto.config.view_quorum:
            return
        if proto.rejoining:
            self._ensure_announcer()
        if proto.lease_waitout_due:
            proto.lease_waitout_due = False
            self._schedule_lease_waitout(proto.installed_epoch)
        if proto.reconcile_due:
            proto.reconcile_due = False
            if not self._reconcile_pending:
                self._reconcile_pending = True
                self._track(
                    asyncio.create_task(
                        self._reconcile_later(self.hb_config.propose_grace)
                    )
                )
        self._ring_wake.set()

    async def _reconcile_later(self, delay: float) -> None:
        await asyncio.sleep(delay)
        self._reconcile_pending = False
        if self._stopped:
            return
        await self._dispatch_replies(self.proto.propose_reconfig())
        self._after_step()
        proto = self.proto
        if proto.paused and not proto.rejoining and (
            proto._suspicion_paused or proto._attempt_nonce is not None
        ):
            # Watchdog: re-evaluate while blocked (an attempt can die
            # silently with a crashed hop; a quorum stall heals only
            # when the detector changes its mind).
            if not self._reconcile_pending:
                self._reconcile_pending = True
                self._track(
                    asyncio.create_task(
                        self._reconcile_later(4 * self.hb_config.propose_grace)
                    )
                )

    async def _send_control(self, destination: int, message) -> None:
        """Best-effort out-of-ring-order frame (stale-epoch notices)."""
        try:
            _r, writer = await asyncio.open_connection(*self.addresses[destination])
            writer.write(_HELLO.pack(_KIND_REJOIN, self.server_id, self.generation))
            writer.write(frame(encode_message(message)))
            await writer.drain()
            writer.close()
        except (ConnectionError, OSError):
            pass  # advisory traffic; the guard re-triggers it

    # ------------------------------------------------------------------
    # Inbound connections
    # ------------------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        decoder = FrameDecoder()
        self._inbound_writers.append(writer)
        try:
            hello = await reader.readexactly(_HELLO.size)
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        kind, peer_id, peer_generation = _HELLO.unpack(hello)
        if kind == _KIND_HB:
            # Peer heartbeat stream: raw frames, no session.
            try:
                async for payload in _read_frames(reader, decoder):
                    if self._stopped:
                        break
                    message = decode_message(payload)
                    if isinstance(message, Heartbeat):
                        await self._on_heartbeat(message.server_id)
                    elif isinstance(message, LeaseGrant) and self._lease is not None:
                        # Freshness runs from the grantor's sent_at, so
                        # a grant that sat in a dead link arrives
                        # already-expired instead of reviving a lease.
                        self._lease.grant(
                            message.grantor, message.epoch, message.sent_at
                        )
                        await self._sync_lease()
                    elif isinstance(message, LeaseRevoke) and self._lease is not None:
                        self._lease.revoke(message.grantor)
                        await self._sync_lease()
            except (ConnectionError, asyncio.CancelledError):
                pass
            finally:
                writer.close()
            return
        if kind == _KIND_REJOIN:
            # Out-of-ring-order control traffic (rejoin announcements,
            # stale-epoch notices): raw frames, no session — each
            # message is idempotent and retried by its sender.
            try:
                async for payload in _read_frames(reader, decoder):
                    if self._stopped:
                        break
                    replies = self.proto.on_ring_message(
                        decode_message(payload), int(peer_id)
                    )
                    await self._dispatch_replies(replies)
                    self._after_step()
                    self._ring_wake.set()
            except (ConnectionError, asyncio.CancelledError):
                pass
            finally:
                writer.close()
            return
        # Ring predecessors and clients share one id space for sessions;
        # predecessors are mapped below zero to keep them disjoint.
        session_key = peer_id if kind == _KIND_CLIENT else -peer_id - 1
        if kind == _KIND_RING:
            # Ring sessions persist across same-peer reconnects (the
            # unacked-suffix replay needs the receive cursor) — but only
            # within one incarnation.  A higher hello generation means
            # the peer restarted with fresh sequence numbers; keeping the
            # old cursor would suppress its entire fresh stream as
            # duplicates.
            if self._peer_generations.get(session_key) != peer_generation:
                self._peer_generations[session_key] = peer_generation
                self._peer_sessions[session_key] = ReliableSession()
        if kind == _KIND_CLIENT:
            self._client_writers[peer_id] = writer
            # Client sessions are connection-scoped (both ends make a
            # fresh one per connection): cross-connection exactly-once
            # for client operations is the protocol's OpId dedup, so
            # tying the session to the connection avoids both permanent
            # seq gaps across seams and leaking sessions under client
            # churn.  Ring sessions, by contrast, persist across
            # same-peer reconnects — there the unacked-suffix replay is
            # the only recovery short of a reconfiguration.
            self._peer_sessions[peer_id] = ReliableSession()
        # Bind this connection to its session object once: a stale
        # handler must never feed late frames into a replacement
        # connection's fresh session.
        session = self._peer_session(session_key)
        try:
            async for payload in _read_frames(reader, decoder):
                if self._stopped:
                    break
                for segment in decode_frame(payload, decode_message):
                    for message in session.on_segment(segment, _now()):
                        if kind == _KIND_RING:
                            replies = self.proto.on_ring_message(message, int(peer_id))
                            self._after_step()
                        else:
                            replies = self.proto.on_client_message(peer_id, message)
                        await self._dispatch_replies(replies)
                        self._ring_wake.set()
                if session.ack_owed:
                    # No reverse traffic carried the ack (ring links are
                    # one-directional; client requests may defer their
                    # reply): spend a frame on a pure ack.
                    writer.write(_segment_frame(session.make_ack()))
                    await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if kind == _KIND_CLIENT and self._client_writers.get(peer_id) is writer:
                # Deregister only our own writer and session: a reconnect
                # may have replaced both before this stale handler
                # observed EOF, and it must not tear down the new ones.
                self._client_writers.pop(peer_id, None)
                self._peer_sessions.pop(peer_id, None)
            writer.close()

    async def _dispatch_replies(self, replies) -> None:
        for reply in replies:
            writer = self._client_writers.get(reply.client)
            if writer is None:
                continue
            session = self._peer_session(reply.client)
            try:
                writer.write(_segment_frame(session.send(reply.message, _now())))
                await writer.drain()
            except ConnectionError:
                self._client_writers.pop(reply.client, None)

    # ------------------------------------------------------------------
    # Outgoing ring connection + perfect failure detection
    # ------------------------------------------------------------------

    async def _ring_sender(self) -> None:
        while not self._stopped:
            directed = self.proto.next_directed_message()
            if directed is not None:
                destination, out_of_band = directed
                await self._send_control(destination, out_of_band)
                continue
            limit = self.proto.config.batch_max_messages
            if limit > 1:
                batch = self.proto.next_ring_batch(limit)
            else:
                message = self.proto.next_ring_message()
                batch = [] if message is None else [message]
            if not batch:
                if (
                    self.fd == "heartbeat"
                    and self._ring_session.in_flight
                    and (self._ring_writer is None or self._ring_writer.is_closing())
                ):
                    # Unacked ring traffic but no connection and no new
                    # work to trigger a dial: keep redialling, or the
                    # suffix would sit in the session until the next
                    # outbound message (a final standalone commit could
                    # otherwise stall forever on a healthy cluster).
                    # _successor_writer replays the unacked suffix.
                    try:
                        await self._successor_writer(self.proto.successor)
                    except (ConnectionError, OSError):
                        pass
                    await asyncio.sleep(_RING_REDIAL)
                    continue
                self._ring_wake.clear()
                if self.proto.has_ring_work:
                    continue
                await self._ring_wake.wait()
                continue
            successor = self.proto.successor
            if self._session_peer != successor:
                # A different successor is a different channel: fresh
                # seqs.  Reset happens *before* the message enters the
                # session, so a retargeted stream never wipes live data.
                self._ring_session.reset()
                self._session_peer = successor
            now = _now()
            segments = [self._ring_session.send(m, now) for m in batch]
            try:
                writer = await self._successor_writer(successor)
                writer.write(_segments_frame(segments))
                await writer.drain()
            except (ConnectionError, OSError):
                self._drop_ring_writer()
                if self.fd == "heartbeat":
                    # Not a crash certificate here: the successor may be
                    # pausing, partitioned, or restarting.  The message
                    # sits unacked in the session (replayed on the next
                    # successful dial); suspicion — and with it the
                    # reconfiguration — is the heartbeat tracker's call.
                    await asyncio.sleep(_RING_REDIAL)
                    self._ring_wake.set()
                    continue
                # The paper's failure detector: a broken ring connection
                # means the successor crashed.  Splice and reconfigure.
                self._ring_session.reset()
                self._session_peer = None
                if self.proto.ring.is_alive(successor) and self.proto.ring.num_alive > 1:
                    replies = self.proto.on_server_crash(successor)
                    await self._dispatch_replies(replies)
                # The undelivered messages' state is covered by the
                # reconfiguration merge; do not retransmit them verbatim.
                continue

    async def _successor_writer(self, successor: int) -> asyncio.StreamWriter:
        if (
            self._ring_writer is not None
            and self._ring_peer == successor
            and not self._ring_writer.is_closing()
        ):
            return self._ring_writer
        self._drop_ring_writer()
        host, port = self.addresses[successor]
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(_HELLO.pack(_KIND_RING, self.server_id, self.generation))
        # Reconnected to the same peer: frames written to the old
        # connection may or may not have reached it — retransmit the
        # unacked suffix and let receive-side dedup resolve the
        # ambiguity.  This is the session layer doing for connection
        # seams what TCP does within one connection.  The replay is
        # chunked into batch frames like a fresh burst would be.
        unacked = list(self._ring_session.unacked_segments())
        chunk_size = max(1, self.proto.config.batch_max_messages)
        for start in range(0, len(unacked), chunk_size):
            writer.write(_segments_frame(unacked[start : start + chunk_size]))
        await writer.drain()
        self._ring_writer = writer
        self._ring_peer = successor
        # Watch the read side: the successor's cumulative acks arrive
        # here, and EOF or a reset on this connection is the paper's
        # failure-detector signal for the successor's crash.
        self._tasks.append(
            asyncio.create_task(self._watch_successor(reader, writer, successor))
        )
        return writer

    async def _watch_successor(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        peer: int,
    ) -> None:
        decoder = FrameDecoder()
        try:
            async for payload in _read_frames(reader, decoder):
                if self._ring_writer is not writer:
                    break
                for segment in decode_frame(payload, decode_message):
                    self._ring_session.on_segment(segment, _now())
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        if self._stopped or self._ring_writer is not writer:
            # A stale watcher (its connection was already replaced, e.g.
            # by a same-peer reconnect) must not tear down the live
            # connection or report a live successor as crashed —
            # identity is the *connection*, not the peer id.
            return
        self._drop_ring_writer()
        if self.fd == "heartbeat":
            # Just a broken connection: keep the session (the unacked
            # suffix replays on reconnect) and let the tracker decide
            # whether anyone is actually gone.
            self._ring_wake.set()
            return
        self._ring_session.reset()
        self._session_peer = None
        if self.proto.ring.is_alive(peer) and self.proto.ring.num_alive > 1:
            replies = self.proto.on_server_crash(peer)
            await self._dispatch_replies(replies)
        self._ring_wake.set()

    def _drop_ring_writer(self) -> None:
        if self._ring_writer is not None:
            self._ring_writer.close()
        self._ring_writer = None
        self._ring_peer = None


class AsyncClient:
    """One logical client over asyncio TCP (one operation at a time)."""

    def __init__(
        self,
        client_id: int,
        servers: list[int],
        addresses: dict[int, tuple[str, int]],
        config: Optional[ProtocolConfig] = None,
    ):
        self.proto = ClientProtocol(client_id, servers, config)
        self.client_id = client_id
        self.addresses = dict(addresses)
        self._connections: dict[int, tuple[asyncio.StreamReader, asyncio.StreamWriter]] = {}
        self._futures: dict[OpId, asyncio.Future] = {}
        self._timers: dict[int, asyncio.TimerHandle] = {}
        self._reader_tasks: dict[int, asyncio.Task] = {}
        # Strong references to in-flight timeout handlers: the loop only
        # holds weak ones, so an untracked task can be collected
        # mid-retry and its exceptions silently dropped.
        self._timeout_tasks: set[asyncio.Task] = set()
        # One reliable session per live server connection.  Sessions are
        # connection-scoped (dropped with the connection, matching the
        # server side): requests lost at a connection seam are recovered
        # by the protocol's retry timer plus server-side OpId dedup, the
        # same machinery that covers retries to a different server.
        self._sessions: dict[int, ReliableSession] = {}

    def _session(self, server: int) -> ReliableSession:
        session = self._sessions.get(server)
        if session is None:
            session = self._sessions[server] = ReliableSession()
        return session

    async def write(self, value: bytes) -> None:
        op, effects = self.proto.start_write(value)
        await self._run_op(op, effects)

    async def read(self) -> bytes:
        op, effects = self.proto.start_read()
        result = await self._run_op(op, effects)
        return result

    async def close(self) -> None:
        for timer in self._timers.values():
            timer.cancel()
        for task in self._timeout_tasks:
            task.cancel()
        for task in self._reader_tasks.values():
            task.cancel()
        for _reader, writer in self._connections.values():
            writer.close()
        self._connections.clear()

    # ------------------------------------------------------------------

    async def _run_op(self, op: OpId, effects) -> Optional[bytes]:
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._futures[op] = future
        await self._execute(effects)
        return await future

    async def _execute(self, effects) -> None:
        loop = asyncio.get_running_loop()
        for effect in effects:
            if isinstance(effect, SendTo):
                await self._send(effect.server, effect.message)
            elif isinstance(effect, SetTimer):
                self._cancel(effect.timer_id)
                self._timers[effect.timer_id] = loop.call_later(
                    effect.delay, self._timeout, effect.timer_id
                )
            elif isinstance(effect, CancelTimer):
                self._cancel(effect.timer_id)
            elif isinstance(effect, Complete):
                future = self._futures.pop(effect.op, None)
                if future is not None and not future.done():
                    future.set_result(effect.value)
            elif isinstance(effect, Fail):
                future = self._futures.pop(effect.op, None)
                if future is not None and not future.done():
                    future.set_exception(
                        StorageUnavailableError(f"{effect.op}: {effect.reason}")
                    )

    async def _send(self, server: int, message) -> None:
        try:
            writer = await self._connection(server)
            writer.write(_segment_frame(self._session(server).send(message, _now())))
            await writer.drain()
        except (ConnectionError, OSError):
            self._drop(server)
            # The retry timer will move us to another server.

    async def _connection(self, server: int) -> asyncio.StreamWriter:
        if server in self._connections:
            return self._connections[server][1]
        host, port = self.addresses[server]
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(_HELLO.pack(_KIND_CLIENT, self.client_id, 0))
        await writer.drain()
        self._connections[server] = (reader, writer)
        self._reader_tasks[server] = asyncio.create_task(self._reader(server, reader))
        return writer

    async def _reader(self, server: int, reader: asyncio.StreamReader) -> None:
        decoder = FrameDecoder()
        session = self._session(server)
        try:
            async for payload in _read_frames(reader, decoder):
                for segment in decode_frame(payload, decode_message):
                    for message in session.on_segment(segment, _now()):
                        if isinstance(message, (ReadAck, WriteAck)):
                            await self._execute(self.proto.on_reply(message))
                if session.ack_owed:
                    # Acknowledge replies even when no further request is
                    # imminent, so the server's send window stays clean.
                    self._connections[server][1].write(
                        _segment_frame(session.make_ack())
                    )
                    await self._connections[server][1].drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._drop(server)

    def _timeout(self, timer_id: int) -> None:
        self._timers.pop(timer_id, None)
        task = asyncio.ensure_future(self._execute(self.proto.on_timeout(timer_id)))
        self._timeout_tasks.add(task)
        task.add_done_callback(self._timeout_tasks.discard)

    def _cancel(self, timer_id: int) -> None:
        timer = self._timers.pop(timer_id, None)
        if timer is not None:
            timer.cancel()

    def _drop(self, server: int) -> None:
        conn = self._connections.pop(server, None)
        if conn is not None:
            conn[1].close()
        task = self._reader_tasks.pop(server, None)
        if task is not None:
            task.cancel()
        # The session dies with its connection (the server makes a fresh
        # one per connection too); the retry timer re-issues anything
        # that was in flight, and OpId dedup absorbs double delivery.
        self._sessions.pop(server, None)


class AsyncCluster:
    """Convenience: an n-server cluster on localhost ephemeral ports.

    ``durable_dir`` switches every node's snapshot store to the file
    backend (one ``s<id>.snapshot`` per server under the directory), the
    deployment configuration where state must survive the process; by
    default each node keeps an in-memory store, which is enough for
    :meth:`restart_server` within one process.
    """

    def __init__(
        self,
        num_servers: int,
        config: Optional[ProtocolConfig] = None,
        durable_dir: Optional[str] = None,
        fd: str = "perfect",
        heartbeat: Optional[HeartbeatConfig] = None,
    ):
        if fd not in ("perfect", "heartbeat"):
            raise ConfigurationError(f"unknown failure detector {fd!r}")
        self.num_servers = num_servers
        self.config = config or ProtocolConfig()
        self.fd = fd
        self.heartbeat = heartbeat
        if fd == "heartbeat":
            if not self.config.view_quorum:
                from dataclasses import replace

                self.config = replace(self.config, view_quorum=True)
        elif self.config.view_quorum:
            raise ConfigurationError(
                "view_quorum requires the heartbeat failure detector"
            )
        self.durable_dir = durable_dir
        self.nodes: dict[int, AsyncServerNode] = {}
        self.addresses: dict[int, tuple[str, int]] = {}
        self._next_client = 0

    def _make_store(self, server_id: int) -> SnapshotStore:
        if self.durable_dir is None:
            return MemorySnapshotStore()
        from repro.core.durable import FileSnapshotStore

        return FileSnapshotStore(
            f"{self.durable_dir}/s{server_id}.snapshot"
        )

    async def start(self, base_port: int = 0) -> None:
        ring = RingView.initial(self.num_servers)
        # Bind listeners first so successor connections find them.
        for server_id in range(self.num_servers):
            node = AsyncServerNode(
                server_id,
                ring,
                self.addresses,
                self.config,
                durable=self._make_store(server_id),
                fd=self.fd,
                heartbeat=self.heartbeat,
            )
            host, port = "127.0.0.1", 0
            node._server = await asyncio.start_server(node._on_connection, host, port)
            actual = node._server.sockets[0].getsockname()
            self.addresses[server_id] = (actual[0], actual[1])
            self.nodes[server_id] = node
        for node in self.nodes.values():
            node.spawn_background(trusting=True)

    async def stop(self) -> None:
        for node in self.nodes.values():
            await node.stop()

    async def crash_server(self, server_id: int) -> None:
        await self.nodes[server_id].stop()

    async def restart_server(self, server_id: int) -> None:
        """Restart a crashed server from its durable snapshot; it
        re-listens on its original port and rejoins the ring."""
        await self.nodes[server_id].restart()

    def client(self, home_server: int = 0) -> AsyncClient:
        self._next_client += 1
        order = sorted(self.nodes)
        index = order.index(home_server)
        order = order[index:] + order[:index]
        return AsyncClient(10_000 + self._next_client, order, self.addresses, self.config)
