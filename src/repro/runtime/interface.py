"""Effect vocabulary shared by every runtime.

Protocol state machines (:mod:`repro.core.server`,
:mod:`repro.core.client`, and every baseline) are *sans-I/O*: they never
touch sockets, clocks or event loops.  Inputs arrive through ``on_*``
methods; outputs are returned as lists of the effect values defined here,
which the runtime then executes.

Ring data messages are deliberately **not** an effect: a server's ring
link transmits one message at a time, so the runtime *pulls* the next ring
message (``ServerProtocol.next_ring_message``) whenever the link is free.
This pull contract is what the paper's ``queue handler`` task becomes in
an event-driven implementation, and it maps one-to-one onto "send at most
one message per round" in the round model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.core.messages import ClientMessage, OpId, ServerReply


@dataclass(frozen=True)
class Reply:
    """Server-side effect: send ``message`` to ``client``."""

    client: int
    message: ServerReply


@dataclass(frozen=True)
class SendTo:
    """Client-side effect: send ``message`` to ``server``."""

    server: int
    message: ClientMessage


@dataclass(frozen=True)
class SetTimer:
    """Client-side effect: arm timer ``timer_id`` to fire in ``delay`` s."""

    timer_id: int
    delay: float


@dataclass(frozen=True)
class CancelTimer:
    """Client-side effect: disarm timer ``timer_id`` (no-op if unarmed)."""

    timer_id: int


@dataclass(frozen=True)
class Complete:
    """Client-side effect: operation ``op`` finished.

    ``value`` is the read result (``None`` for writes); ``tag`` is the
    value's tag when the runtime records histories for linearizability
    checking.
    """

    op: OpId
    kind: str  # "read" | "write"
    value: Optional[bytes] = None
    tag: Optional[object] = None


@dataclass(frozen=True)
class Fail:
    """Client-side effect: operation ``op`` exhausted its retries."""

    op: OpId
    reason: str


Effect = Union[Reply, SendTo, SetTimer, CancelTimer, Complete, Fail]
