"""Cluster runtime: protocol state machines over the discrete-event simulator.

A :class:`SimCluster` hosts the ring servers and any number of clients on
a simulated network (dual-network or shared, per the paper's testbed), and
wires up:

* one *out-loop* per NIC, which pulls at most one message at a time —
  ring messages via :meth:`ServerProtocol.next_ring_message` (the paper's
  ``queue handler``) and client replies from a reply queue — so the NIC's
  transmit port is the only scheduler of outgoing traffic, exactly as in
  the paper's performance model;
* the perfect failure detector: a server crash is delivered to every
  surviving server after a fixed detection delay (the simulator's stand-in
  for a broken TCP connection in a synchronous cluster);
* crash fidelity: a crashing server's queued-but-untransmitted messages
  die with it, while messages already on the wire are delivered (TCP
  semantics);
* the reliable session layer (:mod:`repro.transport.reliable`): every
  unicast between hosts rides in a sequence-numbered segment, acks
  piggyback on reverse traffic, lost frames are retransmitted on a
  backoff timer and duplicates/reorders are suppressed at the receiver.
  The paper's "reliable FIFO channels between correct processes" is
  thereby *implemented* machinery the nemesis can attack (drop ring
  frames, even alongside crashes) instead of an oracle the chaos
  generator had to schedule around.  Sessions to a crashed peer are
  abandoned when the failure detector fires — the simulator's stand-in
  for a TCP reset — so retransmission never outlives the channel.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from repro.core.client import ClientProtocol
from repro.core.config import ProtocolConfig
from repro.core.durable import MemorySnapshotStore
from repro.core.messages import (
    ClientMessage,
    Heartbeat,
    LeaseGrant,
    LeaseRevoke,
    OpId,
    payload_size,
)
from repro.core.ring import RingView
from repro.core.server import ServerProtocol
from repro.core.tags import Tag
from repro.errors import ConfigurationError, SimulationError
from repro.fd.heartbeat import HeartbeatConfig, HeartbeatTracker, ReadLease
from repro.fd.perfect import PerfectFailureDetector
from repro.runtime.interface import (
    CancelTimer,
    Complete,
    Fail,
    Reply,
    SendTo,
    SetTimer,
)
from repro.sim.counters import (
    CODING_CACHE_READS,
    CODING_FRAGMENT_STORES,
    CODING_PENDING_DROPPED,
    CODING_RECONSTRUCTIONS,
    CODING_REPAIRS,
    EPOCH_CONFIRMS,
    EPOCH_QUORUM_STALLS,
    EPOCH_REJECTED_RECONFIGS,
    EPOCH_STALE_DROPPED,
    FD_SUSPICIONS,
    FD_UNSUSPECTS,
    FD_WRONG_SUSPICIONS,
    LEASE_EXPIRED,
    LEASE_FALLBACKS,
    LEASE_GRANTED,
    LEASE_LOCAL_READS,
    LEASE_RENEWED,
    LEASE_REVOKED,
    LEASE_WAITOUTS,
    RELIABLE_ABANDONED,
    RELIABLE_ACKS,
    RELIABLE_BATCHED_FRAMES,
    RELIABLE_BATCHED_MESSAGES,
    RELIABLE_DUPS_SUPPRESSED,
    RELIABLE_RETRANSMITS,
    RELIABLE_STALE_DROPPED,
    RING_MESSAGES,
)
from repro.sim.env import SimEnv
from repro.sim.faults import FaultPlan
from repro.sim.nemesis import Nemesis
from repro.sim.network import DEFAULT_PROPAGATION_DELAY
from repro.sim.nic import FAST_ETHERNET_BPS, Nic
from repro.sim.process import SimProcess
from repro.sim.topology import build_dual_network, build_shared_network
from repro.sim.wire import WireModel
from repro.transport.reliable import (
    BATCH_ENTRY_BYTES,
    BATCH_HEADER_BYTES,
    SEGMENT_HEADER_BYTES,
    ReliableConfig,
    ReliableSession,
    Segment,
)

#: Time between a server crash and the failure detector notifying the
#: survivors.  Chosen larger than any in-flight message delivery so that
#: wire-borne messages from the dead server land before reconfiguration
#: starts (the synchrony assumption behind the paper's perfect detector).
DEFAULT_DETECTION_DELAY = 0.005

#: Batch-depth budget per full ring traversal: the effective ring-frame
#: batch is ``min(batch_max_messages, BATCH_DEPTH_RING_BUDGET // n)``.
#: 16 keeps the default depth of 4 intact up to the paper's 4-server
#: midpoint and degenerates to 2 at n=8, where deeper frames measurably
#: cost contended read throughput (see SimCluster.batch_limit).
BATCH_DEPTH_RING_BUDGET = 16

#: Rejoin announcement retry cadence: a restarted server re-announces
#: itself (to a different sponsor each attempt, round-robin) until a
#: reconfiguration commit resumes it.  The initial period comfortably
#: exceeds a healthy reconfiguration round trip, and the backoff keeps a
#: rejoiner stuck behind a long fault window from spraying announcements
#: that would each trigger a redundant reconfiguration at heal time.
REJOIN_RETRY_INITIAL = 0.25
REJOIN_RETRY_MAX = 1.0


@dataclass(frozen=True)
class OpResult:
    """Outcome handed to client completion callbacks."""

    op: OpId
    kind: str  # "read" | "write"
    ok: bool
    value: Optional[bytes] = None
    tag: Optional[Tag] = None
    error: Optional[str] = None


@dataclass
class ClusterConfig:
    """Everything needed to build a simulated cluster."""

    num_servers: int
    topology: str = "dual"  # "dual" (paper testbed) or "shared"
    seed: int = 0
    protocol: ProtocolConfig = field(default_factory=ProtocolConfig)
    bandwidth_bps: float = FAST_ETHERNET_BPS
    wire: WireModel = field(default_factory=WireModel)
    propagation_delay: float = DEFAULT_PROPAGATION_DELAY
    detection_delay: float = DEFAULT_DETECTION_DELAY
    #: Pre-populated register contents.  Throughput experiments read
    #: value-sized payloads, so the register must start full (the paper's
    #: read experiment necessarily measures value-carrying replies).
    initial_value: bytes = b""
    #: Run every unicast through the reliable session layer
    #: (:mod:`repro.transport.reliable`).  ``False`` restores the bare
    #: fabric, whose FIFO guarantee holds only while the nemesis is
    #: polite — useful for unit tests of raw network behaviour.
    reliable: bool = True
    reliable_config: ReliableConfig = field(default_factory=ReliableConfig)
    #: Failure detector: ``"perfect"`` (the paper's oracle — crash events
    #: are simulation facts relayed after ``detection_delay``) or
    #: ``"heartbeat"`` (the imperfect detector: periodic beacons through
    #: the nemesis-routed network, timeout-based suspicion that can be
    #: *wrong* and is withdrawn on a late heartbeat).  Heartbeat mode
    #: forces ``protocol.view_quorum`` on: views become epoch-guarded
    #: and only install with an ack quorum of the previous view.
    fd: str = "perfect"
    heartbeat: HeartbeatConfig = field(default_factory=HeartbeatConfig)

    def validate(self) -> "ClusterConfig":
        if self.num_servers < 1:
            raise ConfigurationError("num_servers must be >= 1")
        if self.topology not in ("dual", "shared"):
            raise ConfigurationError(f"unknown topology {self.topology!r}")
        if self.detection_delay <= 0:
            raise ConfigurationError("detection_delay must be > 0")
        if self.fd not in ("perfect", "heartbeat"):
            raise ConfigurationError(f"unknown failure detector {self.fd!r}")
        if self.fd == "heartbeat":
            self.heartbeat.validate()
            if not self.protocol.view_quorum:
                self.protocol = replace(self.protocol, view_quorum=True)
        elif self.protocol.view_quorum:
            raise ConfigurationError(
                "view_quorum requires the heartbeat failure detector"
            )
        self.protocol.validate()
        self.reliable_config.validate()
        return self


class _OutLoop:
    """Round-robin message pump for one NIC transmit port.

    Sources are callables returning ``(dst_name, message, deliver_kind)``
    or ``None``.  At most one message is in the transmit port at a time;
    the port's idle callback re-pumps, so backpressure is exact.
    """

    def __init__(self, host: "_HostBase", nic: Nic, sources: list[Callable]):
        self.host = host
        self.nic = nic
        self.sources = sources
        self._next_index = 0
        nic.tx.on_idle(self.pump)

    def pump(self) -> None:
        if not self.host.alive or self.nic.tx.busy:
            return
        for attempt in range(len(self.sources)):
            source = self.sources[(self._next_index + attempt) % len(self.sources)]
            item = source()
            if item is None:
                continue
            self._next_index = (self._next_index + attempt + 1) % len(self.sources)
            dst_name, message, kind = item
            self.host.cluster.transmit(self.host, self.nic, dst_name, message, kind)
            return


class _HostBase(SimProcess):
    """Common machinery for server and client hosts."""

    def __init__(self, cluster: "SimCluster", name: str):
        super().__init__(cluster.env, name)
        self.cluster = cluster
        self._loops: list[_OutLoop] = []
        for nic in cluster.topo.nics.get(name, {}).values():
            nic.owner = self
        self.on_crash(self._purge_on_crash)

    def kick(self) -> None:
        """Re-run every out-loop (new work may be available)."""
        for loop in self._loops:
            loop.pump()

    def _purge_on_crash(self, _process) -> None:
        for nic in self.cluster.topo.nics.get(self.name, {}).values():
            nic.tx.purge()
            nic.rx.purge()


class ServerHost(_HostBase):
    """Hosts one :class:`ServerProtocol` on the simulated network.

    Replies are queued per destination client *machine* and served
    round-robin, modelling per-TCP-connection fairness in a real kernel:
    a writer machine's (tiny) acks are not starved behind another
    machine's (bulk) read replies.
    """

    def __init__(self, cluster: "SimCluster", server_id: int, proto: ServerProtocol):
        super().__init__(cluster, f"s{server_id}")
        self.server_id = server_id
        self.proto = proto
        self._reply_queues: dict[str, deque[Reply]] = {}
        self._reply_rr: deque[str] = deque()
        #: Generation of the running rejoin-announcement pump, if any
        #: (see :meth:`SimCluster.begin_rejoin`).
        self._rejoin_pump_gen: Optional[int] = None
        #: Last-mirrored protocol stats, for trace-counter deltas.
        self._mirrored_stats: dict[str, int] = {}

        nics = cluster.topo.nics[self.name]
        if cluster.config.topology == "dual":
            self.nic_ring = nics["srv"]
            self.nic_client = nics["cli"]
            self._loops.append(_OutLoop(self, self.nic_ring, [self._ring_source]))
            self._loops.append(_OutLoop(self, self.nic_client, [self._reply_source]))
        else:
            nic = nics["lan"]
            self.nic_ring = nic
            self.nic_client = nic
            # One NIC carries both kinds of traffic; round-robin between
            # forwarding the ring and answering clients (figure 3d).
            self._loops.append(
                _OutLoop(self, nic, [self._ring_source, self._reply_source])
            )

    def all_protos(self) -> list[ServerProtocol]:
        """Uniform surface shared with the sharded host (one protocol
        instance per block there): the cluster's rejoin pump, reconcile
        timers and stat mirroring iterate this instead of ``.proto``."""
        return [self.proto]

    # -- inbound ------------------------------------------------------

    def receive_ring(self, message, sender: Optional[int] = None) -> None:
        if not self.alive:
            return
        self._post(self.proto.on_ring_message(message, sender))
        self.cluster.after_protocol_step(self)

    def receive_client(self, client_id: int, message: ClientMessage) -> None:
        if not self.alive:
            return
        self._post(self.proto.on_client_message(client_id, message))
        # A leased read completes with zero ring traffic, so the stat
        # mirror cannot wait for the next ring receipt — under heartbeat
        # mode the trace would undercount local reads forever.
        self.cluster.after_protocol_step(self)

    def notify_crash(self, crashed_id: int) -> None:
        if not self.alive:
            return
        self._post(self.proto.on_server_crash(crashed_id))

    def notify_suspect(self, peer: int) -> None:
        """Imperfect-detector suspicion (may be wrong)."""
        if not self.alive:
            return
        self._post(self.proto.on_suspect(peer))
        self.cluster.after_protocol_step(self)

    def notify_unsuspect(self, peer: int) -> None:
        """A suspected peer's heartbeat arrived: suspicion withdrawn."""
        if not self.alive:
            return
        self._post(self.proto.on_unsuspect(peer))
        self.cluster.after_protocol_step(self)

    # -- restart (crash recovery) --------------------------------------

    def restart(self) -> None:
        """Restart this server from its durable snapshot and rejoin.

        Volatile state — the protocol object, reply queues, NIC queues
        (purged at crash) — is gone; the cluster rebuilds the protocol
        from the snapshot store, re-opens the reliable channels (a
        restart is a new connection on every link) and drives the rejoin
        handshake until a reconfiguration folds the server back in.
        """
        if self._alive:
            return
        self.cluster.reopen_server(self.server_id)
        super().restart()
        self._reply_queues.clear()
        self._reply_rr.clear()
        self._rejoin_pump_gen = None
        self._mirrored_stats = {}
        self.proto = self.cluster.restore_server_protocol(self.server_id, self.restarts)
        if self.cluster.hb is not None:
            # Fresh tracker and loops for the new incarnation (the
            # generation guard retires the old ones).
            self.cluster.hb.reset_server(self.server_id)
        self.cluster.begin_rejoin(self)
        self.kick()

    # -- outbound sources ----------------------------------------------

    @property
    def ring_batch_limit(self) -> int:
        """Ring-frame batching applies on a *dedicated* ring NIC only.

        On the shared topology the ring and the client replies round-
        robin frame-by-frame over one transmit port, so a k-message ring
        frame would take a k-fold bandwidth share and starve read
        replies (figure 3d's balance).  Batching there is a fairness
        regression, not an optimisation — the limit degenerates to 1.
        """
        if self.nic_ring is self.nic_client:
            return 1
        return self.cluster.batch_limit

    def _ring_source(self):
        directed = self.proto.next_directed_message()
        if directed is not None:
            # Out-of-ring-order traffic: rejoin announcements (the
            # rejoiner is not part of anyone's ring yet), stale-epoch
            # notices, and view-proposal tokens whose first hop differs
            # from the installed successor.
            destination, message = directed
            return (f"s{destination}", message, "ring")
        limit = self.ring_batch_limit
        if limit > 1:
            batch = self.proto.next_ring_batch(limit)
            if not batch:
                return None
            payload = batch[0] if len(batch) == 1 else batch
            return (f"s{self.proto.successor}", payload, "ring")
        message = self.proto.next_ring_message()
        if message is None:
            return None
        return (f"s{self.proto.successor}", message, "ring")

    def _reply_source(self):
        while self._reply_rr:
            machine = self._reply_rr[0]
            queue = self._reply_queues.get(machine)
            if not queue:
                self._reply_rr.popleft()
                continue
            reply = queue.popleft()
            if queue:
                self._reply_rr.rotate(-1)  # next machine's turn
            else:
                self._reply_rr.popleft()
            return (machine, reply.message, "reply")
        return None

    def _post(self, replies: list[Reply]) -> None:
        for reply in replies:
            machine = self.cluster.client_name(reply.client)
            if machine is None:
                continue  # client unknown/gone; drop
            queue = self._reply_queues.setdefault(machine, deque())
            if not queue and machine not in self._reply_rr:
                self._reply_rr.append(machine)
            queue.append(reply)
        self.kick()


class ClientHost(_HostBase):
    """One client *machine*: a NIC plus any number of logical clients.

    The paper's methodology: "the client application can emulate multiple
    clients, i.e. it can send multiple read and write requests in
    parallel.  Thus, a single writing node can saturate the storage."
    Each logical client is one :class:`ClientProtocol` (one operation in
    flight); they all share the machine's NIC.
    """

    def __init__(
        self,
        cluster: "SimCluster",
        client_id: int,
        servers: list[int],
        config: ProtocolConfig,
    ):
        super().__init__(cluster, f"c{client_id}")
        self.client_id = client_id
        self.servers = list(servers)
        self.config = config
        self.protos: dict[int, ClientProtocol] = {
            client_id: ClientProtocol(client_id, servers, config)
        }
        self.out_queue: deque[tuple[str, ClientMessage]] = deque()
        self._timers: dict[tuple[int, int], object] = {}
        self._callbacks: dict[OpId, Callable[[OpResult], None]] = {}
        nic = cluster.topo.nics[self.name][
            "cli" if cluster.config.topology == "dual" else "lan"
        ]
        self.nic = nic
        self._loops.append(_OutLoop(self, nic, [self._request_source]))

    def add_virtual_client(self) -> int:
        """Create another logical client on this machine; returns its id."""
        virtual_id = self.cluster.register_virtual_client(self)
        self.protos[virtual_id] = ClientProtocol(virtual_id, self.servers, self.config)
        return virtual_id

    # -- public operation API -------------------------------------------

    def write(
        self,
        value: bytes,
        callback: Callable[[OpResult], None],
        client_id: Optional[int] = None,
    ) -> OpId:
        self.check_alive()
        proto = self._proto(client_id)
        op, effects = proto.start_write(value)
        self._callbacks[op] = callback
        block = self._bind_block(op)
        self.cluster.record_invoke(proto.client_id, op, "write", value, block)
        self._execute(proto, effects)
        return op

    def read(
        self,
        callback: Callable[[OpResult], None],
        client_id: Optional[int] = None,
    ) -> OpId:
        self.check_alive()
        proto = self._proto(client_id)
        op, effects = proto.start_read()
        self._callbacks[op] = callback
        block = self._bind_block(op)
        self.cluster.record_invoke(proto.client_id, op, "read", None, block)
        self._execute(proto, effects)
        return op

    def abort_op(self, client_id: Optional[int] = None) -> Optional[OpId]:
        """Abandon a logical client's in-flight operation (if any):
        reset the protocol's op state, disarm its timer and drop its
        completion callback.  Used by blocking wrappers that give up on
        an operation the simulation can no longer complete.  Returns the
        abandoned op id (subclasses clean their own per-op state)."""
        proto = self._proto(client_id)
        op = proto.abandon()
        if op is not None:
            self._cancel_timer(proto.client_id, op.seq)
            self._callbacks.pop(op, None)
        return op

    def _bind_block(self, op: OpId) -> Optional[int]:
        """Hook: pin the block an operation targets at start time.

        The base register has no blocks; the sharded client host
        overrides this (the pin is what keeps a timeout retransmit in
        the originating op's block) and the returned key lands in the
        recorded history for per-block checking."""
        return None

    # -- inbound ---------------------------------------------------------

    def on_reply_delivered(self, message) -> None:
        if not self.alive:
            return
        proto = self.protos.get(message.op.client)
        if proto is not None:
            self._execute(proto, proto.on_reply(message))

    # -- internals ---------------------------------------------------------

    def _proto(self, client_id: Optional[int]) -> ClientProtocol:
        if client_id is None:
            client_id = self.client_id
        return self.protos[client_id]

    def _request_source(self):
        if not self.out_queue:
            return None
        server_name, message = self.out_queue.popleft()
        return (server_name, message, "request")

    def _on_timeout(self, client_id: int, timer_id: int) -> None:
        if not self.alive:
            return
        self._timers.pop((client_id, timer_id), None)
        proto = self.protos[client_id]
        self._execute(proto, proto.on_timeout(timer_id))

    def _execute(self, proto: ClientProtocol, effects) -> None:
        client_id = proto.client_id
        for effect in effects:
            if isinstance(effect, SendTo):
                self.out_queue.append(
                    (
                        self._request_destination(effect.server, effect.message),
                        self._wrap_request(effect.message),
                    )
                )
            elif isinstance(effect, SetTimer):
                self._cancel_timer(client_id, effect.timer_id)
                self._timers[(client_id, effect.timer_id)] = self.env.scheduler.schedule(
                    effect.delay, self._on_timeout, client_id, effect.timer_id
                )
            elif isinstance(effect, CancelTimer):
                self._cancel_timer(client_id, effect.timer_id)
            elif isinstance(effect, Complete):
                result = OpResult(
                    effect.op, effect.kind, ok=True, value=effect.value, tag=effect.tag
                )
                self.cluster.record_response(client_id, effect.op, result)
                callback = self._callbacks.pop(effect.op, None)
                if callback is not None:
                    callback(result)
            elif isinstance(effect, Fail):
                result = OpResult(effect.op, "unknown", ok=False, error=effect.reason)
                callback = self._callbacks.pop(effect.op, None)
                if callback is not None:
                    callback(result)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown effect {effect!r}")
        self.kick()

    def _wrap_request(self, message: ClientMessage) -> ClientMessage:
        """Hook for subclasses that envelope requests (sharded store)."""
        return message

    def _request_destination(self, server: int, message: ClientMessage) -> str:
        """Hook: process name a request is sent to.  The protocol picks
        ``server`` from its full server list; the sharded client host
        overrides this to map the pick onto the target block's current
        placement (retries walk that ring, not the whole cluster)."""
        return f"s{server}"

    def _cancel_timer(self, client_id: int, timer_id: int) -> None:
        handle = self._timers.pop((client_id, timer_id), None)
        if handle is not None:
            handle.cancel()


class _ReliableLinkLayer:
    """Drives one :class:`~repro.transport.reliable.ReliableSession` per
    directed host pair off the cluster's event scheduler.

    The sans-I/O sessions decide *what* to (re)transmit and *what* is
    deliverable; this adapter owns the timers (retransmission backoff,
    delayed pure acks), charges segments to the NIC transmit ports like
    any other traffic, and mirrors session statistics into the trace
    (``reliable.retransmits``, ``reliable.dups_suppressed``,
    ``reliable.acks``, ``reliable.abandoned``) so chaos runs can prove
    the machinery fired.
    """

    def __init__(self, cluster: "SimCluster", config: ReliableConfig):
        self.cluster = cluster
        self.env = cluster.env
        self.config = config
        self.sessions: dict[tuple[str, str], ReliableSession] = {}
        self._retx_timers: dict[tuple[str, str], object] = {}
        self._ack_timers: dict[tuple[str, str], object] = {}
        #: Channel generation per host, bumped whenever the host's
        #: sessions are torn down (crash detection, restart).  Deliveries
        #: carry the generations captured at send time; a mismatch at
        #: arrival means the frame belongs to a connection that no longer
        #: exists — the simulator's stand-in for a TCP segment of a dead
        #: connection being discarded, which is what keeps a frame from a
        #: host's previous incarnation out of its successor's fresh
        #: session (stale high sequence numbers would otherwise poison
        #: the reorder buffer).
        self._generations: dict[str, int] = {}

    def session(self, local: str, peer: str) -> ReliableSession:
        key = (local, peer)
        session = self.sessions.get(key)
        if session is None:
            session = self.sessions[key] = ReliableSession(self.config)
        return session

    # -- outbound ------------------------------------------------------

    def wrap(self, src_name: str, dst_name: str, kind: str, message) -> tuple[Segment, int]:
        """Envelope one outgoing message; returns (segment, wire bytes)."""
        session = self.session(src_name, dst_name)
        segment = session.send((kind, message), self.env.now)
        self._cancel(self._ack_timers, (src_name, dst_name))  # ack rides along
        self._sync_retx_timer(src_name, dst_name)
        return segment, SEGMENT_HEADER_BYTES + _payload_of(message)

    # -- inbound -------------------------------------------------------

    def deliver(self, dst_name: str, src_name: str, segment: Segment) -> None:
        """Receive-port callback: run the segment through ``dst``'s
        session endpoint and dispatch whatever became deliverable."""
        session = self.session(dst_name, src_name)
        dups_before = session.stats.dups_suppressed
        payloads = session.on_segment(segment, self.env.now)
        dups = session.stats.dups_suppressed - dups_before
        if dups:
            self.env.trace.count(RELIABLE_DUPS_SUPPRESSED, dups)
        # The piggybacked ack may have advanced our own send window.
        self._sync_retx_timer(dst_name, src_name)
        for kind, message in payloads:
            self.cluster._dispatch_payload(dst_name, src_name, kind, message)
        if session.ack_owed:
            self._arm_ack(dst_name, src_name)

    # -- lifecycle -----------------------------------------------------

    def channel_stamp(self, src: str, dst: str) -> tuple[int, int]:
        """The (src, dst) channel generations; captured per delivery."""
        return (self._generations.get(src, 0), self._generations.get(dst, 0))

    def deliver_stamped(
        self, dst_name: str, src_name: str, frame, stamp: tuple[int, int]
    ) -> None:
        """Receive-port callback with connection identity: a frame whose
        channel was re-opened since it was sent is discarded.  ``frame``
        is one :class:`Segment` or a batch of them; either way the whole
        frame shares one connection stamp (and one nemesis fate)."""
        if stamp != self.channel_stamp(src_name, dst_name):
            self.env.trace.count(RELIABLE_STALE_DROPPED)
            return
        if isinstance(frame, list):
            for segment in frame:
                self.deliver(dst_name, src_name, segment)
            return
        self.deliver(dst_name, src_name, frame)

    def abandon_peer(self, name: str) -> None:
        """Tear down every session touching ``name`` (the peer crashed).

        The failure detector calls this: a dead host's channels are
        reset, not drained, exactly as broken TCP connections would be —
        otherwise retransmission to the dead would outlive the run.
        """
        self._generations[name] = self._generations.get(name, 0) + 1
        for key, session in self.sessions.items():
            if name not in key:
                continue
            if session.in_flight:
                self.env.trace.count(RELIABLE_ABANDONED, session.in_flight)
            session.reset()
            self._cancel(self._retx_timers, key)
            self._cancel(self._ack_timers, key)

    def reopen_peer(self, name: str) -> None:
        """Reset every session touching ``name`` and bump its channel
        generation (the peer restarted: every link to it is a brand-new
        connection, and frames of the old incarnation must not land in
        the fresh sessions)."""
        self.abandon_peer(name)

    # -- timers --------------------------------------------------------

    def _sync_retx_timer(self, local: str, peer: str) -> None:
        key = (local, peer)
        session = self.sessions.get(key)
        deadline = session.retransmit_deadline if session is not None else None
        handle = self._retx_timers.get(key)
        if deadline is None:
            self._cancel(self._retx_timers, key)
            return
        if handle is not None and not handle.cancelled and handle.time <= deadline:
            return  # fires no later than needed; re-syncs itself
        self._cancel(self._retx_timers, key)
        self._retx_timers[key] = self.env.scheduler.schedule_at(
            deadline, self._on_retx_timer, local, peer
        )

    def _on_retx_timer(self, local: str, peer: str) -> None:
        self._retx_timers.pop((local, peer), None)
        session = self.sessions.get((local, peer))
        if session is None or not self._alive(local):
            return
        if not self._alive(peer):
            # The peer died after abandon_peer's one-shot sweep and this
            # session was re-filled by a later send (a client retry
            # round-robining onto the dead server).  Retransmitting into
            # the void forever would keep the scheduler from ever going
            # idle; reset instead — TCP to a dead host errors out too.
            if session.in_flight:
                self.env.trace.count(RELIABLE_ABANDONED, session.in_flight)
            session.reset()
            return
        segments = session.poll(self.env.now)
        if segments:
            self.env.trace.count(RELIABLE_RETRANSMITS, len(segments))
        limit = self.cluster.batch_limit
        if limit > 1 and len(segments) > 1:
            # Chunk retransmissions into batch frames too — a recovering
            # link refills the pipe with the same framing a fresh burst
            # would use.
            for start in range(0, len(segments), limit):
                chunk = segments[start : start + limit]
                if len(chunk) == 1:
                    self._send_segment(local, peer, chunk[0])
                else:
                    self._send_batch(local, peer, chunk)
        else:
            for segment in segments:
                self._send_segment(local, peer, segment)
        self._sync_retx_timer(local, peer)

    def _arm_ack(self, local: str, peer: str) -> None:
        key = (local, peer)
        handle = self._ack_timers.get(key)
        if handle is not None and not handle.cancelled:
            return
        self._ack_timers[key] = self.env.scheduler.schedule(
            self.config.ack_delay, self._on_ack_timer, local, peer
        )

    def _on_ack_timer(self, local: str, peer: str) -> None:
        self._ack_timers.pop((local, peer), None)
        session = self.sessions.get((local, peer))
        if session is None or not session.ack_owed or not self._alive(local):
            return
        self.env.trace.count(RELIABLE_ACKS)
        self._send_segment(local, peer, session.make_ack())

    # -- plumbing ------------------------------------------------------

    def _send_segment(self, local: str, peer: str, segment: Segment) -> None:
        src_nic, dst_nic, network = self.cluster.topo.nic_for(local, peer)
        network.unicast(
            src_nic, dst_nic, self._segment_bytes(segment), segment,
            self.cluster._segment_deliver(peer, local),
        )

    def _send_batch(self, local: str, peer: str, segments: list) -> None:
        src_nic, dst_nic, network = self.cluster.topo.nic_for(local, peer)
        wire_bytes = BATCH_HEADER_BYTES + sum(
            BATCH_ENTRY_BYTES + self._segment_bytes(s) for s in segments
        )
        self.env.trace.count(RELIABLE_BATCHED_FRAMES)
        self.env.trace.count(RELIABLE_BATCHED_MESSAGES, len(segments))
        network.unicast(
            src_nic, dst_nic, wire_bytes, list(segments),
            self.cluster._segment_deliver(peer, local),
        )

    @staticmethod
    def _segment_bytes(segment: Segment) -> int:
        wire_bytes = SEGMENT_HEADER_BYTES
        if segment.is_data:
            _kind, message = segment.payload
            wire_bytes += _payload_of(message)
        return wire_bytes

    def _alive(self, name: str) -> bool:
        host = self.cluster.process_by_name(name)
        return host is not None and host.alive

    @staticmethod
    def _cancel(timers: dict, key: tuple[str, str]) -> None:
        handle = timers.pop(key, None)
        if handle is not None:
            handle.cancel()


class _HeartbeatDriver:
    """Imperfect failure detection over the simulated network.

    Every server beacons a :class:`~repro.core.messages.Heartbeat` to
    every other server each ``period``, *through the nemesis-routed
    fabric* — partitions hold or drop heartbeats, pauses freeze them and
    throttles slow them, which is exactly how wrong suspicion arises —
    and *outside* the reliable session layer, because a retransmitted
    heartbeat is not a freshness signal.  Each server owns a
    :class:`~repro.fd.heartbeat.HeartbeatTracker` in imperfect mode; a
    check loop polls it every ``check_interval`` and feeds suspicion
    transitions to the server protocol (``on_suspect``/``on_unsuspect``).

    The driver also keeps the score the chaos gate relies on: a
    suspicion raised against a host that is actually alive increments
    ``fd.wrong_suspicions`` — in-simulation proof that a run exercised
    the wrongly-suspected-but-alive scenario.
    """

    def __init__(self, cluster: "SimCluster", config: HeartbeatConfig):
        self.cluster = cluster
        self.env = cluster.env
        self.config = config
        self.trackers: dict[int, HeartbeatTracker] = {}
        #: Read-lease mode (config.protocol.read_leases): grants ride the
        #: heartbeat beacons, each server holds a :class:`ReadLease`, and
        #: validity transitions are pushed into the protocol(s).
        self.lease_mode = cluster.config.protocol.read_leases
        self.leases: dict[int, ReadLease] = {}
        #: Last (valid, epoch) pushed per server, so only transitions —
        #: not every periodic check — reach the state machines.
        self._lease_pushed: dict[int, tuple[bool, int]] = {}
        for server_id in cluster.servers:
            self._start(server_id, cluster.servers[server_id].restarts)

    def reset_server(self, server_id: int) -> None:
        """A server restarted: fresh tracker, fresh loops.

        The fresh tracker starts *suspect-first*: a snapshot carries no
        liveness information, so until a peer's heartbeat actually
        arrives the restarted server must not vouch for it — a trusting
        tracker would let it propose re-admitting a peer that died while
        it was down, and the token would die at the corpse.  Live peers
        clear within one heartbeat period.
        """
        self._start(
            server_id, self.cluster.servers[server_id].restarts, trusting=False
        )

    def _start(self, server_id: int, generation: int, trusting: bool = True) -> None:
        peers = [sid for sid in self.cluster.servers if sid != server_id]
        # Suspect-first posture is expressed through the silence clocks:
        # pre-aged past the timeout, every peer trips the first check,
        # and only an actual heartbeat rehabilitates it.  All of this
        # server's clock readings go through its (possibly nemesis-
        # skewed) local clock, heartbeat receipt and lease checks alike.
        local = self._local_now(server_id)
        base = local if trusting else local - self.config.timeout - 1e-9
        self.trackers[server_id] = HeartbeatTracker(
            peers, self.config.timeout, now=base, imperfect=True
        )
        if self.lease_mode:
            # Lease state is volatile by design (docs/leases.md): a new
            # incarnation re-earns every grant from scratch.
            self.leases[server_id] = ReadLease(self.config.lease_duration)
            self._lease_pushed.pop(server_id, None)
        self._send_loop(server_id, generation)
        self.env.scheduler.schedule(
            self.config.check_interval, self._check_loop, server_id, generation
        )

    def _live(self, server_id: int, generation: int):
        host = self.cluster.servers.get(server_id)
        if host is None or not host.alive or host.restarts != generation:
            return None
        return host

    def _send_loop(self, server_id: int, generation: int) -> None:
        host = self._live(server_id, generation)
        if host is None:
            return
        granting = self.lease_mode and self.config.grant_leases
        for peer in self.cluster.servers:
            if peer != server_id:
                self._beacon(server_id, peer)
                if granting and all(
                    proto.may_grant_lease(peer) for proto in host.all_protos()
                ):
                    self._send_lease(host, peer, LeaseGrant)
        self.env.scheduler.schedule(
            self.config.period, self._send_loop, server_id, generation
        )

    def _beacon(self, src: int, dst: int) -> None:
        message = Heartbeat(src)
        src_nic, dst_nic, network = self.cluster.topo.nic_for(f"s{src}", f"s{dst}")
        network.unicast(
            src_nic,
            dst_nic,
            payload_size(message),
            message,
            lambda m, dst=dst: self._on_heartbeat(dst, m),
        )

    def _on_heartbeat(self, dst: int, message: Heartbeat) -> None:
        host = self.cluster.servers.get(dst)
        if host is None or not host.alive:
            return
        tracker = self.trackers.get(dst)
        if tracker is None:
            return
        if tracker.heard_from(message.server_id, self._local_now(dst)):
            self.env.trace.count(FD_UNSUSPECTS)
            host.notify_unsuspect(message.server_id)

    def _check_loop(self, server_id: int, generation: int) -> None:
        host = self._live(server_id, generation)
        if host is None:
            return
        tracker = self.trackers[server_id]
        for peer in tracker.check(self._local_now(server_id)):
            self.env.trace.count(FD_SUSPICIONS)
            peer_host = self.cluster.servers.get(peer)
            if peer_host is not None and peer_host.alive:
                self.env.trace.count(FD_WRONG_SUSPICIONS)
            host.notify_suspect(peer)
            if self.lease_mode and self.config.grant_leases:
                # Best-effort prompt revocation: the holder's freshness
                # clock is the safety mechanism; this only shortens the
                # serving window when the revoke gets through.
                self._send_lease(host, peer, LeaseRevoke)
        if self.lease_mode:
            self._sync_lease(host, count_expiry=True)
        self.env.scheduler.schedule(
            self.config.check_interval, self._check_loop, server_id, generation
        )

    # -- read leases ---------------------------------------------------

    def _local_now(self, server_id: int) -> float:
        """This server's local clock: fabric time plus any nemesis skew."""
        return self.env.now + self.cluster.nemesis.clock_offset(f"s{server_id}")

    def _send_lease(self, host, peer: int, message_cls) -> None:
        """Send a grant or revoke to ``peer`` — outside the reliable
        layer (a retransmitted grant would be a forged freshness signal)
        but through the nemesis-routed fabric, so partitions, drops and
        pauses attack lease traffic like everything else."""
        epoch = min(proto.installed_epoch for proto in host.all_protos())
        if message_cls is LeaseGrant:
            message = LeaseGrant(host.server_id, epoch, self._local_now(host.server_id))
        else:
            message = LeaseRevoke(host.server_id, epoch)
        src_nic, dst_nic, network = self.cluster.topo.nic_for(host.name, f"s{peer}")
        network.unicast(
            src_nic,
            dst_nic,
            payload_size(message),
            message,
            lambda m, dst=peer: self._on_lease_message(dst, m),
        )

    def _on_lease_message(self, dst: int, message) -> None:
        host = self.cluster.servers.get(dst)
        lease = self.leases.get(dst)
        if host is None or not host.alive or lease is None:
            return
        required = self._required_grantors(host)
        lease.set_required(required)
        if isinstance(message, LeaseRevoke):
            lease.revoke(message.grantor)
            self.env.trace.count(LEASE_REVOKED)
        elif message.grantor in required:
            newly = lease.grant(message.grantor, message.epoch, message.sent_at)
            self.env.trace.count(LEASE_GRANTED if newly else LEASE_RENEWED)
        self._sync_lease(host)

    def _required_grantors(self, host) -> set[int]:
        """Grantors the holder's lease needs: every other alive member
        of its installed view(s) — the union across blocks on a sharded
        host, which can only over-require (strictly safe)."""
        required: set[int] = set()
        for proto in host.all_protos():
            required.update(proto.installed_view.alive())
        required.discard(host.server_id)
        return required

    def _sync_lease(self, host, count_expiry: bool = False) -> None:
        """Re-evaluate the holder's lease and push transitions into the
        protocol(s).  ``count_expiry`` marks the periodic path, where a
        valid-to-invalid flip means grants aged out."""
        lease = self.leases.get(host.server_id)
        if lease is None:
            return
        lease.set_required(self._required_grantors(host))
        epoch = min(proto.installed_epoch for proto in host.all_protos())
        valid = lease.valid(self._local_now(host.server_id), epoch)
        last = self._lease_pushed.get(host.server_id)
        if last == (valid, epoch):
            return
        if count_expiry and last is not None and last[0] and not valid:
            self.env.trace.count(LEASE_EXPIRED)
        self._lease_pushed[host.server_id] = (valid, epoch)
        for proto in host.all_protos():
            host._post(proto.on_lease_update(valid, epoch))
        host.kick()


class SimCluster:
    """A simulated storage cluster: ring servers plus dynamic clients.

    Example::

        cluster = SimCluster.build(num_servers=5, seed=7)
        storage = AtomicStorage.over(cluster)
        storage.write(b"hello")
        assert storage.read() == b"hello"
    """

    def __init__(self, config: ClusterConfig, host_factory=None):
        """``host_factory(cluster, server_id)`` builds each server host;
        by default the ring :class:`ServerHost`.  Baseline protocols
        (:mod:`repro.baselines`) supply their own factories and reuse the
        topology, clients, failure detector and history plumbing."""
        self.config = config.validate()
        self.env = SimEnv(seed=config.seed)
        server_names = [f"s{i}" for i in range(config.num_servers)]
        builder = build_dual_network if config.topology == "dual" else build_shared_network
        self.topo = builder(
            self.env,
            server_names,
            [],
            bandwidth_bps=config.bandwidth_bps,
            wire=config.wire,
            propagation_delay=config.propagation_delay,
        )
        #: Fault controller: every network routes deliveries through it,
        #: so fault plans can partition, drop, delay, duplicate, throttle
        #: and pause without the protocol layers knowing.
        self.nemesis = Nemesis(self.env, self.topo)
        for network in self.topo.networks.values():
            network.faults = self.nemesis
        #: Reliable session layer: None means raw fabric (tests only).
        self.reliable: Optional[_ReliableLinkLayer] = (
            _ReliableLinkLayer(self, config.reliable_config)
            if config.reliable
            else None
        )
        self.ring = RingView.initial(config.num_servers)
        #: Perfect-oracle detector (``fd="perfect"``) or None under the
        #: heartbeat detector, where suspicion comes from missed beacons.
        self.fd: Optional[PerfectFailureDetector] = None
        #: Heartbeat driver (``fd="heartbeat"``) or None.
        self.hb: Optional[_HeartbeatDriver] = None
        if config.fd == "perfect":
            self.fd = PerfectFailureDetector(self.env, config.detection_delay)
            self.fd.subscribe(self._fd_notify)
        self._reconcile_timers: dict[int, bool] = {}
        self.clients: dict[int, ClientHost] = {}
        self._host_by_client_id: dict[int, ClientHost] = {}
        self._next_client_id = 0
        #: Durable snapshot stores, one per server: the simulated "disk"
        #: that outlives a crashed process and feeds its restart.
        self.durable_stores: dict[int, MemorySnapshotStore] = {}
        #: Optional history recorder (see repro.analysis.history).
        self.history = None
        #: Elastic sharding control plane (set by the sharded builders in
        #: :mod:`repro.core.sharded`): the versioned block placement
        #: table and the rebalancer driving live block migration.  None
        #: on every non-elastic cluster — hosts and clients treat that
        #: as "one ring owns everything", today's behaviour.
        self.placement = None
        self.rebalancer = None
        #: Per-server crash order (server_id -> monotone stamp).  Stamped
        #: by :meth:`note_crash`; elastic crash recovery compares stamps
        #: to decide whether a restarting ring member holds the freshest
        #: copy of its blocks (the last member to crash does).
        self.crash_stamps: dict[int, int] = {}
        self._crash_seq = 0
        if host_factory is None:
            host_factory = self._default_host_factory
        self.servers: dict[int, _HostBase] = {}
        for server_id in range(config.num_servers):
            host = host_factory(self, server_id)
            host.on_crash(self._server_crashed)
            self.servers[server_id] = host
        if config.fd == "heartbeat":
            self.hb = _HeartbeatDriver(self, config.heartbeat)

    @property
    def batch_limit(self) -> int:
        """Ring messages per wire frame.  Batching is a session-layer
        feature; raw-fabric clusters (``reliable=False``) send one
        message per frame regardless of the knob.

        The knob is additionally capped by ring size: a frame is stored
        and forwarded whole at every hop, so the extra latency a k-deep
        batch adds to a full traversal grows with k*n.  Past
        ``BATCH_DEPTH_RING_BUDGET`` that latency reaches commit-blocked
        readers (figure 3c's contended linearity sags ~5 % at n=8 with
        k=4, measured); bounding k*n keeps the batch a framing
        optimisation at every cluster size.
        """
        if self.reliable is None:
            return 1
        knob = self.config.protocol.batch_max_messages
        return min(knob, max(1, BATCH_DEPTH_RING_BUDGET // self.config.num_servers))

    @staticmethod
    def _default_host_factory(cluster: "SimCluster", server_id: int) -> "ServerHost":
        store = cluster.durable_stores.setdefault(server_id, MemorySnapshotStore())
        proto = ServerProtocol(
            server_id,
            cluster.ring,
            cluster.config.protocol,
            initial_value=cluster.config.initial_value,
            durable=store,
        )
        return ServerHost(cluster, server_id, proto)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        num_servers: int,
        topology: str = "dual",
        seed: int = 0,
        protocol: Optional[ProtocolConfig] = None,
        host_factory=None,
        **kwargs,
    ) -> "SimCluster":
        """Build a cluster with sensible defaults (see :class:`ClusterConfig`)."""
        return cls(
            ClusterConfig(
                num_servers=num_servers,
                topology=topology,
                seed=seed,
                protocol=protocol or ProtocolConfig(),
                **kwargs,
            ),
            host_factory=host_factory,
        )

    def add_client(
        self, home_server: Optional[int] = None, host_cls: type = ClientHost
    ) -> ClientHost:
        """Attach a new client machine to the client network.

        ``home_server`` binds the client to a server (the paper dedicates
        client machines per server); retries walk the ring from there.
        ``host_cls`` lets variants substitute their client host class
        (the sharded store attaches a :class:`ShardClientHost`).
        """
        client_id = self._next_client_id
        self._next_client_id += 1
        name = f"c{client_id}"
        nets = ["cli"] if self.config.topology == "dual" else ["lan"]
        self.topo.add_process(name, nets, self.config.bandwidth_bps)
        order = sorted(self.servers)
        if home_server is not None:
            if home_server not in self.servers:
                raise ConfigurationError(f"unknown home server {home_server}")
            index = order.index(home_server)
            order = order[index:] + order[:index]
        host = host_cls(self, client_id, order, self.config.protocol)
        self.clients[client_id] = host
        self._host_by_client_id[client_id] = host
        return host

    def register_virtual_client(self, host: "ClientHost") -> int:
        """Allocate a fresh logical-client id bound to ``host``."""
        client_id = self._next_client_id
        self._next_client_id += 1
        self._host_by_client_id[client_id] = host
        return client_id

    # ------------------------------------------------------------------
    # Routing and delivery
    # ------------------------------------------------------------------

    def client_name(self, client_id: int) -> Optional[str]:
        host = self._host_by_client_id.get(client_id)
        return host.name if host is not None else None

    def process_by_name(self, name: str) -> Optional[_HostBase]:
        """Resolve a host (server or client machine) by process name."""
        if name.startswith("s"):
            return self.servers.get(int(name[1:]))
        return self.clients.get(int(name[1:]))

    def transmit(self, host, src_nic: Nic, dst_name: str, message, kind: str) -> None:
        """Send one message from ``host`` through ``src_nic``."""
        route_src, dst_nic, network = self.topo.nic_for(host.name, dst_name)
        if route_src is not src_nic:  # pragma: no cover - defensive
            raise SimulationError(
                f"route from {host.name} to {dst_name} uses {route_src.name}, "
                f"but the out-loop pumped {src_nic.name}"
            )
        if kind == "ring":
            # Ring-layer traffic volume, independent of wire framing: the
            # bench divides this by completed ops to show a leased read
            # costing zero ring messages where a fenced one costs n.
            self.env.trace.count(
                RING_MESSAGES, len(message) if isinstance(message, list) else 1
            )
        if self.reliable is None:
            deliver = self._make_deliver(dst_name, kind, host.name)
            network.unicast(src_nic, dst_nic, _payload_of(message), message, deliver)
            return
        if isinstance(message, list):
            # A ring batch: each message becomes its own session segment
            # (own seq, own retransmission entry); only the wire framing
            # is shared.  The frame is charged the exact bytes of
            # transport.reliable.encode_batch, so simulated and asyncio
            # transports agree on wire cost.
            segments = []
            wire_bytes = BATCH_HEADER_BYTES
            for item in message:
                segment, seg_bytes = self.reliable.wrap(
                    host.name, dst_name, kind, item
                )
                segments.append(segment)
                wire_bytes += BATCH_ENTRY_BYTES + seg_bytes
            self.env.trace.count(RELIABLE_BATCHED_FRAMES)
            self.env.trace.count(RELIABLE_BATCHED_MESSAGES, len(segments))
            network.unicast(
                src_nic, dst_nic, wire_bytes, segments,
                self._segment_deliver(dst_name, host.name),
            )
            return
        segment, wire_bytes = self.reliable.wrap(host.name, dst_name, kind, message)
        network.unicast(
            src_nic, dst_nic, wire_bytes, segment,
            self._segment_deliver(dst_name, host.name),
        )

    def multicast_servers(self, host, message) -> None:
        """Ethernet multicast to every other alive server (naive
        broadcast baseline).  Subject to the network's collision model."""
        src_nic = host.nic_ring
        dsts = [
            other.nic_ring
            for sid, other in self.servers.items()
            if sid != host.server_id and other.alive
        ]
        if not dsts:
            return

        def deliver(dst_nic, msg) -> None:
            server = self._server_by_name(dst_nic.name.split("@")[0])
            if server is not None:
                server.receive_server(host.server_id, msg)

        network = src_nic.network
        network.multicast(src_nic, dsts, _payload_of(message), message, deliver)

    def _segment_deliver(self, dst_name: str, src_name: str):
        """Receive callback for session-layer segments: the session
        decides delivery; :meth:`_dispatch_payload` routes the results.
        The channel generations captured here give the frame its
        connection identity — a restart in flight invalidates it."""
        reliable = self.reliable
        stamp = reliable.channel_stamp(src_name, dst_name)

        def deliver(segment: Segment) -> None:
            reliable.deliver_stamped(dst_name, src_name, segment, stamp)

        return deliver

    def _make_deliver(self, dst_name: str, kind: str, src_name: str):
        """Raw-fabric receive callback (``reliable=False`` clusters)."""
        def deliver(message) -> None:
            self._dispatch_payload(dst_name, src_name, kind, message)

        return deliver

    def _dispatch_payload(self, dst_name: str, src_name: str, kind: str, message) -> None:
        if kind == "ring":
            server = self._server_by_name(dst_name)
            if server is not None:
                sender = int(src_name[1:]) if src_name.startswith("s") else None
                server.receive_ring(message, sender)
        elif kind == "srv":
            # Generic server-to-server delivery (baseline protocols).
            server = self._server_by_name(dst_name)
            if server is not None:
                server.receive_server(int(src_name[1:]), message)
        elif kind == "request":
            server = self._server_by_name(dst_name)
            client_id = int(src_name[1:])
            if server is not None:
                server.receive_client(client_id, message)
        elif kind == "reply":
            host = self.clients.get(int(dst_name[1:]))
            if host is not None:
                host.on_reply_delivered(message)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown delivery kind {kind!r}")

    def _server_by_name(self, name: str) -> Optional[ServerHost]:
        return self.servers.get(int(name[1:]))

    # ------------------------------------------------------------------
    # Failure detector
    # ------------------------------------------------------------------

    def _server_crashed(self, process) -> None:
        crashed_id = int(process.name[1:])
        if self.ring.is_alive(crashed_id) and self.ring.num_alive > 1:
            # Track the surviving membership (RingView requires at least
            # one alive member, so the very last crash is not recorded).
            self.ring = self.ring.without(crashed_id)
        if self.fd is not None:
            self.fd.report_crash(crashed_id)
        # Under the heartbeat detector nothing is relayed: the crash is
        # observed — or wrongly conjectured — through missed beacons.

    def _fd_notify(self, crashed_id: int) -> None:
        if self.reliable is not None:
            # The detector firing is the moment every survivor's TCP
            # connection to the dead server resets: abandon the sessions
            # (and their retransmission timers) in both directions.
            # Wire-borne frames of the dead have already landed — the
            # detection delay exceeds any in-flight delivery.
            self.reliable.abandon_peer(f"s{crashed_id}")
        for server_id, host in self.servers.items():
            if server_id != crashed_id and host.alive:
                host.notify_crash(crashed_id)

    def note_crash(self, server_id: int) -> None:
        """Record crash order (called by server hosts as they go down)."""
        self._crash_seq += 1
        self.crash_stamps[server_id] = self._crash_seq

    def crash_server(self, server_id: int) -> None:
        """Crash a server now (tests and fault plans)."""
        self.servers[server_id].crash()

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------

    def restart_server(self, server_id: int) -> None:
        """Restart a crashed server now: reload its durable snapshot and
        run the rejoin handshake until the ring folds it back in."""
        self.servers[server_id].restart()

    def reopen_server(self, server_id: int) -> None:
        """Cluster-level bookkeeping for a server restart.

        Runs *before* the host comes back alive: revive the membership
        view, clear the failure detector's suspicion (so a second crash
        is detected again) and re-open the reliable channels — every
        link to the restarted server is a brand-new connection.
        """
        if server_id in self.ring.dead:
            self.ring = self.ring.revived(server_id)
        if self.fd is not None:
            self.fd.report_recovery(server_id)
        if self.reliable is not None:
            self.reliable.reopen_peer(f"s{server_id}")

    def restart_resumes_alone(self, server_id: int) -> bool:
        """Whether a restarting server may resume without a rejoin.

        With the perfect detector, "no other host is alive" is a fact
        the runtime may consult, and a sole survivor restarts straight
        into serving.  The heartbeat detector has no such oracle: a
        restarted server always comes back *rejoining* (unless it is the
        whole cluster) — silence could be a partition, and resuming
        alone without quorum evidence would fork the register.
        """
        if self.config.fd == "heartbeat":
            return self.config.num_servers == 1
        return not any(
            sid != server_id and host.alive for sid, host in self.servers.items()
        )

    def restore_server_protocol(self, server_id: int, generation: int) -> ServerProtocol:
        """Rebuild a server's protocol from its durable snapshot."""
        store = self.durable_stores.setdefault(server_id, MemorySnapshotStore())
        return ServerProtocol.restore(
            server_id,
            range(self.config.num_servers),
            store.load(),
            self.config.protocol,
            durable=store,
            initial_value=self.config.initial_value,
            alone=self.restart_resumes_alone(server_id),
            generation=generation,
        )

    def begin_rejoin(self, host) -> None:
        """Drive the rejoin announcements for a rejoining server.

        Started after a restart, and — under the imperfect detector —
        when a live server demoted by a :class:`StaleEpochNotice` must
        announce itself back in.  At most one pump runs per host
        incarnation (``host.restarts``); on a sharded host the one pump
        announces for every still-rejoining block.
        """
        if host._rejoin_pump_gen != host.restarts and any(
            proto.rejoining for proto in host.all_protos()
        ):
            host._rejoin_pump_gen = host.restarts
            self._pump_rejoin(host, host.restarts, 0)

    def _pump_rejoin(self, host, generation: int, attempt: int) -> None:
        """Announce (and re-announce, with backoff, round-robining over
        sponsors) until a reconfiguration commit resumes the rejoiner —
        per protocol instance: on a sharded host each block folds back
        independently and the pump retires when the last one clears."""
        if not host.alive or host.restarts != generation:
            return  # crashed again; a future restart drives its own pump
        pending = [proto for proto in host.all_protos() if proto.rejoining]
        if not pending:
            host._rejoin_pump_gen = None  # folded back in; pump retired
            return
        if self.hb is not None:
            # No aliveness oracle: announce to every other member in
            # turn; frames to the dead die in transit, and "nobody is
            # alive" is indistinguishable from a partition, so there is
            # deliberately no resume-alone shortcut here.
            sponsors = [
                sid for sid in sorted(self.servers) if sid != host.server_id
            ]
            sponsor = sponsors[attempt % len(sponsors)]
            for proto in pending:
                proto.queue_rejoin_announce(sponsor)
        elif self.placement is not None:
            # Per-block rings: a block's rejoin can only be sponsored by
            # a member of *its* ring — an announcement to any other
            # server dies as stale-placement traffic.  Prefer a member
            # that is actually serving; if every peer of a ring is down
            # or itself rejoining, keep the block pending and retry (the
            # crash-order rule in ShardedServerHost._resume_alone
            # already decided who may serve without a sponsor).
            block_of = {id(proto): reg for reg, proto in host.protos.items()}
            for proto in pending:
                reg = block_of[id(proto)]
                candidates = [
                    sid
                    for sid in proto.ring.members
                    if sid != host.server_id and self.servers[sid].alive
                ]
                serving = [
                    sid
                    for sid in candidates
                    if (peer := self.servers[sid].protos.get(reg)) is not None
                    and not peer.rejoining
                ]
                pool = serving or candidates
                if pool:
                    proto.queue_rejoin_announce(pool[attempt % len(pool)])
        else:
            sponsors = [
                sid
                for sid, other in self.servers.items()
                if sid != host.server_id and other.alive
            ]
            if not sponsors:
                # Nobody to rejoin: the restarted server *is* the ring,
                # and its recovered pending writes resolve locally.
                for proto in pending:
                    proto.complete_rejoin_alone()
                    host._post(proto.drain_replies())
                host._rejoin_pump_gen = None
                return
            sponsor = sponsors[attempt % len(sponsors)]
            for proto in pending:
                proto.queue_rejoin_announce(sponsor)
        host.kick()
        delay = min(REJOIN_RETRY_INITIAL * (2 ** attempt), REJOIN_RETRY_MAX)
        self.env.scheduler.schedule(delay, self._pump_rejoin, host, generation, attempt + 1)

    # ------------------------------------------------------------------
    # Imperfect failure detector plumbing (fd="heartbeat")
    # ------------------------------------------------------------------

    def after_protocol_step(self, host) -> None:
        """Post-handler hook: reconciliation timers, rejoin pumps and
        trace mirroring for the epoch-guarded mode.  No-op under the
        perfect detector.  Iterates ``host.all_protos()``: one protocol
        on a plain server, one per block on a sharded host."""
        if self.hb is None:
            return
        self._mirror_stat(host, "stats_stale_epoch_dropped", EPOCH_STALE_DROPPED)
        self._mirror_stat(host, "stats_quorum_stalls", EPOCH_QUORUM_STALLS)
        self._mirror_stat(
            host, "stats_epoch_rejected_reconfigs", EPOCH_REJECTED_RECONFIGS
        )
        self._mirror_stat(host, "stats_confirm_reconfigs", EPOCH_CONFIRMS)
        if self.config.protocol.read_leases:
            self._mirror_stat(host, "stats_lease_local_reads", LEASE_LOCAL_READS)
            self._mirror_stat(host, "stats_lease_fallbacks", LEASE_FALLBACKS)
            self._mirror_stat(host, "stats_lease_waitouts", LEASE_WAITOUTS)
        if self.config.protocol.value_coding == "coded":
            self._mirror_stat(
                host, "stats_coding_fragment_stores", CODING_FRAGMENT_STORES
            )
            self._mirror_stat(host, "stats_coding_cache_reads", CODING_CACHE_READS)
            self._mirror_stat(
                host, "stats_coding_reconstructions", CODING_RECONSTRUCTIONS
            )
            self._mirror_stat(host, "stats_coding_repairs", CODING_REPAIRS)
            self._mirror_stat(
                host, "stats_coding_pending_dropped", CODING_PENDING_DROPPED
            )
        for proto in host.all_protos():
            if proto.reconcile_due:
                proto.reconcile_due = False
                self._schedule_reconcile(host)
            if proto.lease_waitout_due:
                proto.lease_waitout_due = False
                self._schedule_lease_waitout(host, proto)
        if any(proto.rejoining for proto in host.all_protos()):
            self.begin_rejoin(host)

    def _mirror_stat(self, host, stat: str, counter: str) -> None:
        value = sum(getattr(proto, stat) for proto in host.all_protos())
        delta = value - host._mirrored_stats.get(stat, 0)
        if delta > 0:
            self.env.trace.count(counter, delta)
        host._mirrored_stats[stat] = value

    def _schedule_lease_waitout(self, host, proto: ServerProtocol) -> None:
        """Arm the old-epoch lease wait-out for ``proto``'s just-installed
        view: after ``heartbeat.waitout()`` every grant issued under the
        superseded epoch has expired on its holder's clock (drift bound
        charged), so the new epoch may start completing writes."""
        self.env.scheduler.schedule(
            self.config.heartbeat.waitout(),
            self._fire_lease_waitout,
            host,
            proto,
            proto.installed_epoch,
            host.restarts,
        )

    def _fire_lease_waitout(
        self, host, proto: ServerProtocol, epoch: int, generation: int
    ) -> None:
        if not host.alive or host.restarts != generation:
            return
        host._post(proto.lease_waitout_elapsed(epoch))
        host.kick()

    def _schedule_reconcile(self, host: "ServerHost") -> None:
        """Run the host's view-proposal evaluation after the grace delay.

        The delay is the detector's ``propose_grace``: it covers the
        suspicion skew between the two sides of a partition, so a
        wrongly suspected server has paused (its own detector fired)
        before anyone proposes the view that excludes it.  One timer per
        host coalesces bursts of detector events.
        """
        key = host.server_id
        if self._reconcile_timers.get(key):
            return
        self._reconcile_timers[key] = True
        generation = host.restarts
        self.env.scheduler.schedule(
            self.config.heartbeat.propose_grace,
            self._fire_reconcile,
            host,
            generation,
        )

    def _fire_reconcile(self, host, generation: int) -> None:
        self._reconcile_timers[host.server_id] = False
        if not host.alive or host.restarts != generation:
            return
        for proto in host.all_protos():
            host._post(proto.propose_reconfig())
        self.after_protocol_step(host)
        host.kick()
        if any(
            proto.paused and not proto.rejoining and (
                proto._suspicion_paused or proto._attempt_nonce is not None
            )
            for proto in host.all_protos()
        ):
            # Watchdog: an attempt can die silently (its token rejected
            # at a peer whose promise pointed at a coordinator that has
            # since been cleared, or lost with a crashed hop) and a
            # quorum stall only heals when the detector changes its
            # mind.  While this server stays blocked, keep re-evaluating
            # — a fresh attempt carries a higher nonce and replaces our
            # own stale promise at every peer.
            key = host.server_id
            if not self._reconcile_timers.get(key):
                self._reconcile_timers[key] = True
                self.env.scheduler.schedule(
                    4 * self.config.heartbeat.propose_grace,
                    self._fire_reconcile,
                    host,
                    generation,
                )

    def apply_faults(self, plan: FaultPlan) -> None:
        """Schedule a :class:`~repro.sim.faults.FaultPlan` against this
        cluster: crashes hit the hosts, everything else the nemesis."""
        processes: dict[str, SimProcess] = {
            host.name: host for host in self.servers.values()
        }
        processes.update({host.name: host for host in self.clients.values()})
        plan.apply(self.env, processes, self.nemesis)

    def alive_servers(self) -> list[int]:
        return [sid for sid, host in self.servers.items() if host.alive]

    # ------------------------------------------------------------------
    # History hooks (filled in by the workload/bench layers)
    # ------------------------------------------------------------------

    def record_invoke(
        self, client_id: int, op: OpId, kind: str, value, block: Optional[int] = None
    ) -> None:
        if self.history is not None:
            self.history.invoke(self.env.now, client_id, op, kind, value, block=block)

    def record_response(self, client_id: int, op: OpId, result: OpResult) -> None:
        if self.history is not None:
            self.history.respond(self.env.now, client_id, op, result.value, result.tag)

    # ------------------------------------------------------------------
    # Clock helpers
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.env.now

    def run(self, until: Optional[float] = None) -> None:
        self.env.run(until=until)

    def run_until(self, predicate: Callable[[], bool], max_events: int = 10_000_000) -> None:
        """Advance the simulation until ``predicate()`` holds."""
        fired = 0
        while not predicate():
            if not self.env.scheduler.step():
                raise SimulationError("simulation went idle before the condition held")
            fired += 1
            if fired > max_events:
                raise SimulationError("condition not reached within event budget")


def _payload_of(message) -> int:
    """Payload bytes of a message: baseline messages size themselves via
    a ``payload_bytes()`` method; core messages use
    :func:`repro.core.messages.payload_size`."""
    sizer = getattr(message, "payload_bytes", None)
    if callable(sizer):
        return sizer()
    return payload_size(message)


# Public aliases for the baseline runtimes (repro.baselines), which build
# their own server hosts on the same machinery.
HostBase = _HostBase
OutLoop = _OutLoop
