"""Runtimes that drive the sans-I/O protocol state machines.

Three interchangeable runtimes exist:

* :mod:`repro.runtime.sim_net` — the discrete-event cluster simulator
  (bandwidth-faithful; used for every Figure 3/4 benchmark);
* :mod:`repro.rounds.adapter` — the paper's synchronous round model
  (used for Figure 1 and the Section 4 analytical claims);
* :mod:`repro.runtime.asyncio_net` — real asyncio TCP sockets on
  localhost (a deployable implementation; used by integration tests and
  the asyncio example).

They all consume the same :mod:`repro.runtime.interface` effect
vocabulary, which is what makes the protocol code in :mod:`repro.core`
identical across the three.
"""

from repro.runtime.interface import CancelTimer, Complete, Fail, Reply, SendTo, SetTimer

__all__ = ["CancelTimer", "Complete", "Fail", "Reply", "SendTo", "SetTimer"]
