"""Central registry of trace counter names.

Every counter the simulator emits through :meth:`TraceRecorder.count`
has one constant here, and every consumer (the chaos gate's coverage
tables, the bench runner's wire accounting) refers to the same constant.
The ``counters`` staticheck rule enforces both directions: a counter
name may not appear as a string literal outside this module, and every
constant a gate consumes must be referenced by at least one emitting
module — so renaming an emit site can never again make a coverage gate
vacuously pass (the PR 5 bug this registry exists to prevent).

The constants' *values* are the wire format: they appear verbatim in
trace logs and in the committed BENCH_*.json snapshots.  Renaming a
counter therefore needs a deprecation alias (see :data:`_ALIASES` and
:func:`canonical`) so external scripts reading old snapshots keep
working; the string values below must never change silently.
"""

from __future__ import annotations

# -- process lifecycle (sim/process.py) --------------------------------
PROCESS_CRASHES = "process.crashes"
PROCESS_RESTARTS = "process.restarts"

# -- nemesis fault injection (sim/nemesis.py) --------------------------
NEMESIS_CUTS = "nemesis.cuts"
NEMESIS_CUT_DROPS = "nemesis.cut_drops"
NEMESIS_DELAYED = "nemesis.delayed"
NEMESIS_DROPS = "nemesis.drops"
NEMESIS_DUP_DELIVERIES = "nemesis.dup_deliveries"
NEMESIS_HEALS = "nemesis.heals"
NEMESIS_HELD = "nemesis.held"
NEMESIS_HELD_DELIVERED = "nemesis.held_delivered"
NEMESIS_PARTITIONS = "nemesis.partitions"
NEMESIS_PAUSES = "nemesis.pauses"
NEMESIS_POSTHUMOUS_DROPS = "nemesis.posthumous_drops"
NEMESIS_RULES = "nemesis.rules"
NEMESIS_THROTTLES = "nemesis.throttles"
NEMESIS_CLOCK_SKEWS = "nemesis.clock_skews"

# -- reliable session layer (runtime/sim_net.py) -----------------------
RELIABLE_ABANDONED = "reliable.abandoned"
RELIABLE_ACKS = "reliable.acks"
RELIABLE_BATCHED_FRAMES = "reliable.batched_frames"
RELIABLE_BATCHED_MESSAGES = "reliable.batched_messages"
RELIABLE_DUPS_SUPPRESSED = "reliable.dups_suppressed"
RELIABLE_RETRANSMITS = "reliable.retransmits"
RELIABLE_STALE_DROPPED = "reliable.stale_dropped"

# -- failure detectors (fd/perfect.py, runtime/sim_net.py) -------------
FD_DETECTIONS = "fd.detections"
FD_RECOVERIES = "fd.recoveries"
FD_SUSPICIONS = "fd.suspicions"
FD_UNSUSPECTS = "fd.unsuspects"
FD_WRONG_SUSPICIONS = "fd.wrong_suspicions"

# -- epoch-guarded reconfiguration (runtime/sim_net.py stat mirrors) ---
EPOCH_CONFIRMS = "epoch.confirms"
EPOCH_QUORUM_STALLS = "epoch.quorum_stalls"
EPOCH_REJECTED_RECONFIGS = "epoch.rejected_reconfigs"
EPOCH_STALE_DROPPED = "epoch.stale_dropped"

# -- epoch-scoped read leases (runtime/sim_net.py, runtime/asyncio_net.py)
LEASE_GRANTED = "lease.granted"
LEASE_RENEWED = "lease.renewed"
LEASE_REVOKED = "lease.revoked"
LEASE_EXPIRED = "lease.expired"
LEASE_LOCAL_READS = "lease.local_reads"
LEASE_FALLBACKS = "lease.fallbacks"
LEASE_WAITOUTS = "lease.waitouts"

# -- erasure-coded value backend (runtime/sim_net.py stat mirrors) -----
CODING_FRAGMENT_STORES = "coding.fragment_stores"
CODING_CACHE_READS = "coding.cache_reads"
CODING_RECONSTRUCTIONS = "coding.reconstructions"
CODING_REPAIRS = "coding.repairs"
CODING_PENDING_DROPPED = "coding.pending_dropped"

# -- ring traffic (runtime/sim_net.py) ---------------------------------
#: Ring-layer messages transmitted (PreWrite/Commit/fence/reconfig).
#: The bench runner divides by completed ops to record the ring
#: messages/op collapse the leased read path buys.
RING_MESSAGES = "ring.messages"

# -- elastic sharding: per-block load accounting (core/sharded.py) -----
#: Client operations dispatched into block protocols (all blocks).
SHARD_BLOCK_OPS = "shard.block_ops"
#: Client payload bytes dispatched into block protocols.
SHARD_BLOCK_BYTES = "shard.block_bytes"
#: Integrated queue depth: sum over rebalancer samples of the pending +
#: write-queue entries across all blocks (a gauge surfaced as a counter
#: so traces and snapshots keep a single additive format).
SHARD_QUEUE_DEPTH = "shard.queue_depth"
#: PlacementRedirect replies sent to clients holding stale bindings.
SHARD_REDIRECTS = "shard.redirects"
#: Client envelopes parked at a source host while its block was frozen
#: for migration (replayed at cutover or abort).
SHARD_PARKED = "shard.parked"
#: Frames dropped for blocks not hosted here: ring traffic from a
#: superseded placement, or block transfers failing the nonce check.
SHARD_STALE_DROPPED = "shard.stale_dropped"

# -- elastic sharding: live block migration (core/sharded.py) ----------
MIGRATION_STARTED = "migration.started"
MIGRATION_COMPLETED = "migration.completed"
MIGRATION_ABORTED = "migration.aborted"
#: Migrations decided by the split policy (evicting a hot block's
#: co-residents toward a dedicated placement).
MIGRATION_SPLITS = "migration.splits"
#: Snapshot bytes shipped by block transfers (wire-charged).
MIGRATION_BYTES = "migration.bytes"

#: Every fixed-name counter above.  The staticheck ``counters`` rule
#: treats any of these values appearing as a literal outside this
#: module as a violation.
REGISTERED_COUNTERS = frozenset(
    {
        PROCESS_CRASHES,
        PROCESS_RESTARTS,
        NEMESIS_CUTS,
        NEMESIS_CUT_DROPS,
        NEMESIS_DELAYED,
        NEMESIS_DROPS,
        NEMESIS_DUP_DELIVERIES,
        NEMESIS_HEALS,
        NEMESIS_HELD,
        NEMESIS_HELD_DELIVERED,
        NEMESIS_PARTITIONS,
        NEMESIS_PAUSES,
        NEMESIS_POSTHUMOUS_DROPS,
        NEMESIS_RULES,
        NEMESIS_THROTTLES,
        NEMESIS_CLOCK_SKEWS,
        RELIABLE_ABANDONED,
        RELIABLE_ACKS,
        RELIABLE_BATCHED_FRAMES,
        RELIABLE_BATCHED_MESSAGES,
        RELIABLE_DUPS_SUPPRESSED,
        RELIABLE_RETRANSMITS,
        RELIABLE_STALE_DROPPED,
        FD_DETECTIONS,
        FD_RECOVERIES,
        FD_SUSPICIONS,
        FD_UNSUSPECTS,
        FD_WRONG_SUSPICIONS,
        EPOCH_CONFIRMS,
        EPOCH_QUORUM_STALLS,
        EPOCH_REJECTED_RECONFIGS,
        EPOCH_STALE_DROPPED,
        LEASE_GRANTED,
        LEASE_RENEWED,
        LEASE_REVOKED,
        LEASE_EXPIRED,
        LEASE_LOCAL_READS,
        LEASE_FALLBACKS,
        LEASE_WAITOUTS,
        CODING_FRAGMENT_STORES,
        CODING_CACHE_READS,
        CODING_RECONSTRUCTIONS,
        CODING_REPAIRS,
        CODING_PENDING_DROPPED,
        RING_MESSAGES,
        SHARD_BLOCK_OPS,
        SHARD_BLOCK_BYTES,
        SHARD_QUEUE_DEPTH,
        SHARD_REDIRECTS,
        SHARD_PARKED,
        SHARD_STALE_DROPPED,
        MIGRATION_STARTED,
        MIGRATION_COMPLETED,
        MIGRATION_ABORTED,
        MIGRATION_SPLITS,
        MIGRATION_BYTES,
    }
)

# -- per-network scoped counters (sim/network.py) ----------------------
# Networks emit under a dynamic "<net_name>." prefix; consumers match by
# suffix (the bench runner sums ".wire_bytes" across all networks).

NET_COLLISIONS = "collisions"
NET_MULTICASTS = "multicasts"
NET_MULTICAST_DROPS = "multicast_drops"
NET_UNICASTS = "unicasts"
NET_WIRE_BYTES = "wire_bytes"

NET_KINDS = frozenset(
    {NET_COLLISIONS, NET_MULTICASTS, NET_MULTICAST_DROPS, NET_UNICASTS, NET_WIRE_BYTES}
)


def scoped(prefix: str, kind: str) -> str:
    """Counter name for a per-network statistic, e.g. ``lan0.wire_bytes``."""
    if kind not in NET_KINDS:
        raise ValueError(f"unknown scoped counter kind: {kind!r}")
    return f"{prefix}.{kind}"


def net_suffix(kind: str) -> str:
    """Suffix that matches every network's ``kind`` counter (consumers
    sum ``name.endswith(net_suffix(NET_WIRE_BYTES))`` across nets)."""
    if kind not in NET_KINDS:
        raise ValueError(f"unknown scoped counter kind: {kind!r}")
    return f".{kind}"


# -- deprecation shim --------------------------------------------------
#: Old counter name -> current name.  Empty today: the registry was
#: introduced without renaming anything, so committed BENCH_*.json
#: snapshots and external scripts keep reading the same keys.  A future
#: rename must keep the old spelling here for one release.
_ALIASES: dict[str, str] = {}


def canonical(name: str) -> str:
    """Resolve a possibly-deprecated counter name to its current form."""
    return _ALIASES.get(name, name)
