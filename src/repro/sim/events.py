"""Deterministic event-heap scheduler.

The scheduler is the heart of the simulator: every NIC transmission,
message delivery, timer and fault is an event on a single binary heap.
Determinism matters because the test-suite and the benchmark harness rely
on bit-identical reruns from the same seed; ties in firing time are broken
by a monotonically increasing sequence number, never by object identity.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.errors import SimulationError


class EventHandle:
    """A cancelable reference to a scheduled event.

    Handles are returned by :meth:`EventScheduler.schedule` and
    :meth:`EventScheduler.schedule_at`.  Cancelling an already-fired or
    already-cancelled event is a harmless no-op, which keeps timer
    bookkeeping in protocol code simple.
    """

    __slots__ = ("time", "seq", "_action", "_args", "_cancelled")

    def __init__(self, time: float, seq: int, action: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self._action = action
        self._args = args
        self._cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._cancelled = True
        self._action = None
        self._args = ()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "pending"
        return f"<EventHandle t={self.time:.6f} seq={self.seq} {state}>"


class EventScheduler:
    """A deterministic discrete-event scheduler.

    Example::

        sched = EventScheduler()
        sched.schedule(1.0, print, "hello")
        sched.run()
        assert sched.now == 1.0
    """

    def __init__(self) -> None:
        self._heap: list[EventHandle] = []
        self._seq = 0
        self._now = 0.0
        self._events_fired = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (for diagnostics)."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of events still on the heap (including cancelled ones)."""
        return len(self._heap)

    def schedule(self, delay: float, action: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``action(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        return self.schedule_at(self._now + delay, action, *args)

    def schedule_at(self, time: float, action: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``action(*args)`` to run at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event in the past (time={time}, now={self._now})"
            )
        handle = EventHandle(time, self._seq, action, args)
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    def step(self) -> bool:
        """Run the next pending event.  Returns ``False`` when idle."""
        while self._heap:
            handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._now = handle.time
            action, args = handle._action, handle._args
            handle.cancel()  # mark as consumed; drops references
            self._events_fired += 1
            action(*args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run events until the heap is empty, ``until`` is reached, or
        ``max_events`` have fired.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fired earlier, mirroring how a wall clock
        keeps ticking after a quiet period.
        """
        fired = 0
        while self._heap:
            nxt = self._heap[0]
            if nxt.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and nxt.time > until:
                break
            if max_events is not None and fired >= max_events:
                return
            self.step()
            fired += 1
        if until is not None and self._now < until:
            self._now = until

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Run until no events remain.  Guards against runaway loops."""
        fired = 0
        while self.step():
            fired += 1
            if fired > max_events:
                raise SimulationError(
                    f"simulation did not quiesce within {max_events} events"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EventScheduler now={self._now:.6f} pending={len(self._heap)}>"
