"""Wire-level cost model for messages.

The paper's throughput numbers are NIC-bandwidth-bound, so faithfully
reproducing their *shape* requires charging each message its true cost on
a fast-ethernet wire: the application payload plus framing, segmented into
MSS-sized TCP segments, each carrying TCP/IP headers and Ethernet
preamble/framing/inter-frame gap.

With the defaults below a 4096-byte application payload costs
``3 segments -> 4096 + 32 + 3*78 = 4362`` wire bytes, i.e. an efficiency
of ~94 %, which matches the ~90 Mbit/s per-server read goodput the paper
measures on 100 Mbit/s links.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Default TCP maximum segment size on a 1500-byte-MTU ethernet
#: (1500 - 20 IP - 20 TCP - 12 TCP options).
DEFAULT_MSS = 1448

#: Per-segment overhead: 52 bytes of TCP/IP headers (with timestamps) plus
#: 26 bytes of Ethernet framing, preamble and inter-frame gap.
DEFAULT_SEGMENT_OVERHEAD = 78

#: Bytes our message codec prepends to every application message.
DEFAULT_APP_HEADER = 32

#: Minimum cost of any frame on the wire (ethernet minimum frame + gap).
DEFAULT_MIN_FRAME = 84


@dataclass(frozen=True)
class WireModel:
    """Computes wire bytes and transmission times for messages.

    Attributes
    ----------
    mss:
        TCP maximum segment size (application bytes per segment).
    segment_overhead:
        Header + framing bytes charged per segment.
    app_header:
        Codec framing bytes charged once per message.
    min_frame:
        Lower bound on the wire size of any message.
    """

    mss: int = DEFAULT_MSS
    segment_overhead: int = DEFAULT_SEGMENT_OVERHEAD
    app_header: int = DEFAULT_APP_HEADER
    min_frame: int = DEFAULT_MIN_FRAME

    def wire_bytes(self, payload_bytes: int) -> int:
        """Total bytes a ``payload_bytes`` message occupies on the wire."""
        if payload_bytes < 0:
            raise ValueError(f"payload_bytes must be >= 0, got {payload_bytes}")
        total_app = payload_bytes + self.app_header
        segments = max(1, math.ceil(total_app / self.mss))
        return max(self.min_frame, total_app + segments * self.segment_overhead)

    def tx_time(self, payload_bytes: int, bandwidth_bps: float) -> float:
        """Seconds the wire is occupied transmitting the message."""
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth_bps must be > 0, got {bandwidth_bps}")
        return self.wire_bytes(payload_bytes) * 8.0 / bandwidth_bps

    def efficiency(self, payload_bytes: int) -> float:
        """Goodput fraction: payload bytes / wire bytes."""
        return payload_bytes / self.wire_bytes(payload_bytes)


@dataclass(frozen=True)
class LinkProfile:
    """Wire-level impairment of one directed link.

    The nemesis layer (:mod:`repro.sim.nemesis`) attaches profiles to
    links to model lossy, slow or duplicating paths.  A profile describes
    *per-message* behaviour; windowing (when the impairment is active) is
    the fault plan's job.

    Attributes
    ----------
    drop_p:
        Probability a message is silently lost on this link.
    dup_p:
        Probability a message is delivered twice.  The duplicate trails
        the original by one fabric propagation delay and is FIFO-clamped
        behind it.
    extra_delay:
        Fixed additional latency in seconds added to every delivery.
    jitter:
        Upper bound of a uniform random additional latency.  Deliveries
        on a link are never reordered by jitter — the nemesis clamps
        arrival times to keep each link FIFO, matching TCP.
    """

    drop_p: float = 0.0
    dup_p: float = 0.0
    extra_delay: float = 0.0
    jitter: float = 0.0

    def validate(self) -> "LinkProfile":
        if not 0.0 <= self.drop_p <= 1.0:
            raise ValueError(f"drop_p must be in [0, 1], got {self.drop_p}")
        if not 0.0 <= self.dup_p <= 1.0:
            raise ValueError(f"dup_p must be in [0, 1], got {self.dup_p}")
        if self.extra_delay < 0 or self.extra_delay != self.extra_delay:
            raise ValueError(f"extra_delay must be >= 0, got {self.extra_delay}")
        if self.jitter < 0 or self.jitter != self.jitter:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")
        return self

    @property
    def is_noop(self) -> bool:
        return (
            self.drop_p == 0.0
            and self.dup_p == 0.0
            and self.extra_delay == 0.0
            and self.jitter == 0.0
        )
