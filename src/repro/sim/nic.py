"""Full-duplex network interface model.

A :class:`Nic` owns two independent :class:`Port` rate servers — transmit
and receive — matching the paper's observation that "modern full-duplex
network interfaces can receive and send messages at the same time".  Each
port serialises messages: a port transmits (or receives) exactly one
message at a time at its configured bandwidth, which is precisely the
"receive at most one message per round" constraint of the paper's
performance model, translated to continuous time.

The ring communication pattern keeps each server's ports collision-free;
quorum/multicast patterns overload the receive ports, which is how the
simulator reproduces the paper's Figure 1 argument.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from repro.sim.env import SimEnv

#: 100 Mbit/s fast ethernet, the paper's testbed NIC speed.
FAST_ETHERNET_BPS = 100_000_000.0


class Port:
    """A FIFO rate server: one message at a time at ``bandwidth_bps``.

    ``submit(wire_bytes, on_done)`` enqueues a message; when the port gets
    to it, the port stays busy for ``wire_bytes * 8 / bandwidth`` seconds
    and then invokes ``on_done``.  Callers may also register an idle
    callback, which fires whenever the port drains — the simulator uses
    this to implement the protocol's *send slot* (the pseudocode's
    ``queue handler`` task runs when the outgoing link is free).
    """

    __slots__ = (
        "_env",
        "name",
        "bandwidth_bps",
        "_queue",
        "_busy",
        "_paused",
        "bytes_total",
        "messages_total",
        "busy_time",
        "_last_start",
        "idle_callbacks",
    )

    def __init__(self, env: SimEnv, name: str, bandwidth_bps: float):
        self._env = env
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self._queue: deque[tuple] = deque()
        self._busy = False
        self._paused = False
        self.bytes_total = 0
        self.messages_total = 0
        self.busy_time = 0.0
        self._last_start = 0.0
        self.idle_callbacks: list[Callable[[], None]] = []

    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def paused(self) -> bool:
        return self._paused

    @property
    def queue_len(self) -> int:
        return len(self._queue)

    def submit(
        self,
        wire_bytes: int,
        on_done: Callable[[], None],
        on_start: Optional[Callable[[], None]] = None,
    ) -> None:
        """Enqueue a message of ``wire_bytes`` for service.

        ``on_start`` (if given) fires when serialisation begins — the
        multicast collision model uses it to detect overlapping frames.
        """
        self._queue.append((wire_bytes, on_done, on_start))
        if not self._busy and not self._paused:
            self._start_next()

    def on_idle(self, callback: Callable[[], None]) -> None:
        """Register ``callback`` to fire each time the port drains."""
        self.idle_callbacks.append(callback)

    def pause(self) -> None:
        """Stop serving the queue (a stop-the-world pause of the host).

        The message currently being serialised finishes — NIC hardware
        completes the frame in flight — but nothing further starts until
        :meth:`resume`.  Submissions while paused simply queue up.
        """
        self._paused = True

    def resume(self) -> None:
        """Resume serving; queued messages flow again in FIFO order."""
        if not self._paused:
            return
        self._paused = False
        if self._busy:
            return
        if self._queue:
            self._start_next()
        else:
            # Wake out-loops that went idle against a paused port.
            for callback in list(self.idle_callbacks):
                callback()
            if not self._busy and self._queue:
                self._start_next()

    def set_bandwidth(self, bandwidth_bps: float) -> None:
        """Change the service rate (slow-NIC throttle).

        Takes effect from the next message; the one currently being
        serialised keeps its original duration.
        """
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth_bps must be > 0, got {bandwidth_bps}")
        self.bandwidth_bps = bandwidth_bps

    def purge(self) -> None:
        """Drop every queued (not yet started) message.

        Used when the owning process crashes: data sitting in socket
        buffers dies with the host, while the message currently being
        serialised finishes (and is dropped downstream by the owner-alive
        check in :class:`~repro.sim.network.Network`).
        """
        self._queue.clear()

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds this port spent transmitting."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def _start_next(self) -> None:
        wire_bytes, on_done, on_start = self._queue.popleft()
        self._busy = True
        self._last_start = self._env.now
        if on_start is not None:
            on_start()
        duration = wire_bytes * 8.0 / self.bandwidth_bps
        self._env.scheduler.schedule(duration, self._finish, wire_bytes, on_done)

    def _finish(self, wire_bytes: int, on_done: Callable[[], None]) -> None:
        self.bytes_total += wire_bytes
        self.messages_total += 1
        self.busy_time += self._env.now - self._last_start
        on_done()
        if self._paused:
            self._busy = False
            return
        if self._queue:
            self._start_next()
        else:
            self._busy = False
            for callback in list(self.idle_callbacks):
                callback()
            # A callback may have submitted new work synchronously.
            if not self._busy and self._queue:
                self._start_next()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "busy" if self._busy else "idle"
        return f"<Port {self.name} {state} q={len(self._queue)}>"


class Nic:
    """A full-duplex NIC: independent transmit and receive ports."""

    def __init__(
        self,
        env: SimEnv,
        name: str,
        bandwidth_bps: float = FAST_ETHERNET_BPS,
    ):
        self.env = env
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        #: Nameplate rate; :meth:`throttle` scales from this, so repeated
        #: throttles do not compound.
        self.rated_bps = bandwidth_bps
        #: Owning process name (NICs are named ``{process}@{network}``);
        #: precomputed because the nemesis keys links by it per delivery.
        self.process_name = name.split("@", 1)[0]
        self.tx = Port(env, f"{name}.tx", bandwidth_bps)
        self.rx = Port(env, f"{name}.rx", bandwidth_bps)
        #: Set by Network.attach; a NIC belongs to exactly one network.
        self.network: Optional[Any] = None
        #: Optional owning process; when it is dead, the network drops
        #: traffic to and from this NIC (crash fidelity).
        self.owner: Optional[Any] = None

    def throttle(self, factor: float) -> None:
        """Run both ports at ``rated_bps / factor`` (slow-NIC fault)."""
        if factor <= 0:
            raise ValueError(f"throttle factor must be > 0, got {factor}")
        self.set_bandwidth(self.rated_bps / factor)

    def unthrottle(self) -> None:
        """Restore the nameplate bandwidth."""
        self.set_bandwidth(self.rated_bps)

    def set_bandwidth(self, bandwidth_bps: float) -> None:
        """Set the current rate of both ports (next message onwards)."""
        self.bandwidth_bps = bandwidth_bps
        self.tx.set_bandwidth(bandwidth_bps)
        self.rx.set_bandwidth(bandwidth_bps)

    def pause(self) -> None:
        """Pause both ports (the host stops doing I/O)."""
        self.tx.pause()
        self.rx.pause()

    def resume(self) -> None:
        """Resume both ports."""
        self.rx.resume()
        self.tx.resume()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Nic {self.name} @{self.bandwidth_bps/1e6:.0f}Mbps>"
