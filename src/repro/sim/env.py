"""Simulation environment: scheduler + tracing + RNG in one handle.

Every simulated component receives a :class:`SimEnv` so that the whole run
shares a single clock, a single trace recorder and a single seeded RNG
registry.  This is the only object that must be threaded through the
simulator's constructors.
"""

from __future__ import annotations

from repro.sim.events import EventScheduler
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder


class SimEnv:
    """Bundles the scheduler, trace recorder and RNG registry for one run."""

    def __init__(self, seed: int = 0, record_events: bool = False):
        self.scheduler = EventScheduler()
        self.trace = TraceRecorder(record_events=record_events)
        self.rng = RngRegistry(seed)
        self.seed = seed

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.scheduler.now

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Convenience pass-through to :meth:`EventScheduler.run`."""
        self.scheduler.run(until=until, max_events=max_events)

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Convenience pass-through to :meth:`EventScheduler.run_until_idle`."""
        self.scheduler.run_until_idle(max_events=max_events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimEnv now={self.now:.6f} seed={self.seed}>"
