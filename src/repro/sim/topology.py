"""Cluster topology builders.

The paper's testbed wires each server with *two* 100 Mbit/s NICs: servers
talk to each other on one switched network and to clients on another
("servers and clients are interconnected by two separate networks").  The
final experiment of Figure 3 instead shares a single network.  Both
physical layouts are provided here.

A :class:`ClusterTopology` knows, for every process name, which NIC to use
to reach every other process — the routing is trivial (one or two
segments) but centralising it keeps the transport layer topology-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.sim.env import SimEnv
from repro.sim.network import DEFAULT_PROPAGATION_DELAY, Network
from repro.sim.nic import FAST_ETHERNET_BPS, Nic
from repro.sim.wire import WireModel


@dataclass
class ClusterTopology:
    """Maps process names to NICs and NIC pairs to networks."""

    env: SimEnv
    networks: dict[str, Network] = field(default_factory=dict)
    #: process name -> {network name -> NIC}
    nics: dict[str, dict[str, Nic]] = field(default_factory=dict)

    def add_process(self, name: str, network_names: list[str],
                    bandwidth_bps: float = FAST_ETHERNET_BPS) -> None:
        """Give process ``name`` one NIC on each listed network."""
        if name in self.nics:
            raise ConfigurationError(f"process {name!r} already has NICs")
        self.nics[name] = {}
        for net_name in network_names:
            network = self.networks[net_name]
            nic = Nic(self.env, f"{name}@{net_name}", bandwidth_bps)
            network.attach(nic)
            self.nics[name][net_name] = nic

    def nic_for(self, process: str, peer: str) -> tuple[Nic, Nic, Network]:
        """Return ``(src_nic, dst_nic, network)`` for process -> peer.

        Picks the first network both processes are attached to, preferring
        the dedicated server network when both are servers.
        """
        mine = self.nics.get(process)
        theirs = self.nics.get(peer)
        if mine is None or theirs is None:
            raise ConfigurationError(f"unknown process in route {process!r}->{peer!r}")
        for net_name, nic in mine.items():
            if net_name in theirs:
                return nic, theirs[net_name], self.networks[net_name]
        raise ConfigurationError(f"no common network between {process!r} and {peer!r}")

    def shared_network(self, *processes: str) -> Network:
        """Return the unique network common to all listed processes."""
        common: set[str] | None = None
        for process in processes:
            nets = set(self.nics[process])
            common = nets if common is None else (common & nets)
        if not common:
            raise ConfigurationError(f"no common network among {processes!r}")
        return self.networks[sorted(common)[0]]


def build_dual_network(
    env: SimEnv,
    server_names: list[str],
    client_names: list[str],
    bandwidth_bps: float = FAST_ETHERNET_BPS,
    wire: WireModel | None = None,
    propagation_delay: float = DEFAULT_PROPAGATION_DELAY,
) -> ClusterTopology:
    """The paper's testbed: separate server-side and client-side networks.

    Servers get two NICs (one per network); clients get one NIC on the
    client network.  Inter-server traffic (the ring) therefore never
    competes with client traffic for bandwidth.
    """
    wire = wire or WireModel()
    topo = ClusterTopology(env)
    topo.networks["srv"] = Network(env, "srv", wire, propagation_delay)
    topo.networks["cli"] = Network(env, "cli", wire, propagation_delay)
    for name in server_names:
        topo.add_process(name, ["srv", "cli"], bandwidth_bps)
    for name in client_names:
        topo.add_process(name, ["cli"], bandwidth_bps)
    return topo


def build_shared_network(
    env: SimEnv,
    server_names: list[str],
    client_names: list[str],
    bandwidth_bps: float = FAST_ETHERNET_BPS,
    wire: WireModel | None = None,
    propagation_delay: float = DEFAULT_PROPAGATION_DELAY,
) -> ClusterTopology:
    """Figure 3's last experiment: everyone shares one network segment."""
    wire = wire or WireModel()
    topo = ClusterTopology(env)
    topo.networks["lan"] = Network(env, "lan", wire, propagation_delay)
    for name in server_names + client_names:
        topo.add_process(name, ["lan"], bandwidth_bps)
    return topo
