"""Switched network fabric connecting NICs.

Unicast transfer of a message from NIC *a* to NIC *b* goes through three
stages, each charged at the wire cost of the message:

1. *a*'s transmit port serialises the message (``wire_bytes / bandwidth``);
2. the fabric propagates it (``propagation_delay`` seconds, switch-like);
3. *b*'s receive port serialises it, then the delivery callback fires.

Because both ports are FIFO and the propagation delay is constant,
messages between a fixed NIC pair are delivered in order — the simulator's
stand-in for a TCP connection's FIFO guarantee.

The fabric also offers an *ethernet multicast* primitive used by the
naive write-all baseline: one transmit occupies the sender's port once,
but overlapping multicasts on the same segment collide and are
retransmitted after exponential backoff, reproducing the collision
behaviour the paper blames for the poor throughput of multicast-based
write-all schemes under load.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.counters import (
    NET_COLLISIONS,
    NET_MULTICASTS,
    NET_MULTICAST_DROPS,
    NET_UNICASTS,
    NET_WIRE_BYTES,
    scoped,
)
from repro.sim.env import SimEnv
from repro.sim.nic import Nic
from repro.sim.wire import WireModel

#: Propagation + switching delay of a LAN hop (~60 us: store-and-forward
#: switch plus cabling, the right order of magnitude for fast ethernet).
DEFAULT_PROPAGATION_DELAY = 60e-6

#: Ethernet slot time in *bit times*: backoff waits are multiples of
#: ``ETHERNET_SLOT_BITS / bandwidth`` seconds (5.12 us at 100 Mbit/s).
ETHERNET_SLOT_BITS = 512.0

#: Give up after this many retransmissions of one multicast frame.
MAX_MULTICAST_ATTEMPTS = 16

DeliveryCallback = Callable[[Any], None]


class _McastFrame:
    """Bookkeeping for one multicast frame in the collision domain."""

    __slots__ = ("start", "end", "dead")

    def __init__(self) -> None:
        self.start = 0.0
        self.end = 0.0
        self.dead = False


class Network:
    """A single switched LAN segment.

    Parameters
    ----------
    env:
        The simulation environment.
    name:
        Used in trace counters (``{name}.unicasts`` etc.).
    wire:
        The wire cost model shared by every NIC on this segment.
    propagation_delay:
        Fabric latency between transmit completion and receive start.
    """

    def __init__(
        self,
        env: SimEnv,
        name: str = "net",
        wire: WireModel | None = None,
        propagation_delay: float = DEFAULT_PROPAGATION_DELAY,
    ):
        self.env = env
        self.name = name
        self.wire = wire or WireModel()
        self.propagation_delay = propagation_delay
        #: Optional fault controller (see :mod:`repro.sim.nemesis`).  When
        #: set, every delivery is routed through it so partitions, drops,
        #: delays and duplicates can be injected per directed link.
        self.faults = None
        self._nics: dict[str, Nic] = {}
        # Multicast collision domain: currently-in-the-air frames.  Any
        # time overlap between two frames destroys both (no carrier
        # sense between independent senders on a loaded segment).
        self._mcast_in_air: list["_McastFrame"] = []
        self._backoff_rng = env.rng.stream(f"{name}.backoff")

    def attach(self, nic: Nic) -> None:
        """Attach ``nic`` to this segment."""
        if nic.name in self._nics:
            raise SimulationError(f"NIC {nic.name!r} already attached to {self.name!r}")
        if nic.network is not None:
            raise SimulationError(f"NIC {nic.name!r} already attached to another network")
        self._nics[nic.name] = nic
        nic.network = self

    def nics(self) -> list[Nic]:
        """All NICs attached to this segment."""
        return list(self._nics.values())

    # ------------------------------------------------------------------
    # Unicast
    # ------------------------------------------------------------------

    def unicast(
        self,
        src: Nic,
        dst: Nic,
        payload_bytes: int,
        message: Any,
        deliver: DeliveryCallback,
        on_sent: Callable[[], None] | None = None,
    ) -> None:
        """Send ``message`` from ``src`` to ``dst``.

        ``deliver(message)`` fires after the receive port finishes;
        ``on_sent`` (if given) fires when the transmit port frees up.
        """
        self._check_attached(src)
        self._check_attached(dst)
        wire_bytes = self.wire.wire_bytes(payload_bytes)
        self.env.trace.count(scoped(self.name, NET_UNICASTS))
        self.env.trace.count(scoped(self.name, NET_WIRE_BYTES), wire_bytes)

        def tx_done() -> None:
            if src.owner is not None and not src.owner.alive:
                return  # the sender died mid-transmission; the frame is lost
            if on_sent is not None:
                on_sent()
            self.env.trace.emit(self.env.now, "net.tx", self.name, src.name, dst.name, wire_bytes)
            self._dispatch(src, dst, wire_bytes, message, deliver)

        src.tx.submit(wire_bytes, tx_done)

    def _dispatch(
        self, src: Nic, dst: Nic, wire_bytes: int, message: Any, deliver: DeliveryCallback
    ) -> None:
        """Hand a transmitted frame to the fabric.

        Without a fault controller this is a plain propagation-delayed
        arrival; with one, the controller decides whether/when/how often
        the frame arrives (partition, drop, delay, duplicate).
        """
        if self.faults is None:
            self.schedule_arrival(self.propagation_delay, dst, wire_bytes, message, deliver)
        else:
            self.faults.route(self, src, dst, wire_bytes, message, deliver)

    def schedule_arrival(
        self, delay: float, dst: Nic, wire_bytes: int, message: Any,
        deliver: DeliveryCallback,
    ) -> None:
        """Schedule the receive-port stage ``delay`` seconds from now."""
        self.env.scheduler.schedule(
            delay, self._arrive, dst, wire_bytes, message, deliver
        )

    def deliver_now(
        self, dst: Nic, wire_bytes: int, message: Any, deliver: DeliveryCallback
    ) -> None:
        """Fault-controller entry point: start the receive-port stage now."""
        self._arrive(dst, wire_bytes, message, deliver)

    def _arrive(
        self, dst: Nic, wire_bytes: int, message: Any, deliver: DeliveryCallback
    ) -> None:
        if dst.owner is not None and not dst.owner.alive:
            return  # receiver is down; the switch drops the frame
        self.env.trace.emit(self.env.now, "net.rx", self.name, dst.name, wire_bytes)
        dst.rx.submit(wire_bytes, lambda: deliver(message))

    # ------------------------------------------------------------------
    # Ethernet multicast with collisions
    # ------------------------------------------------------------------

    def multicast(
        self,
        src: Nic,
        dsts: list[Nic],
        payload_bytes: int,
        message: Any,
        deliver: Callable[[Nic, Any], None],
        on_sent: Callable[[], None] | None = None,
    ) -> None:
        """Ethernet-style multicast: one transmit, every receiver listens.

        If the frame's airtime overlaps another multicast on this segment,
        *both* are lost and retransmitted after an exponentially growing
        random backoff — the collision behaviour of a shared ethernet
        segment that the paper identifies as the throughput killer for
        broadcast-based write-all algorithms.
        """
        self._check_attached(src)
        for dst in dsts:
            self._check_attached(dst)
        self._mcast_attempt(src, list(dsts), payload_bytes, message, deliver, on_sent, 1)

    def _mcast_attempt(
        self,
        src: Nic,
        dsts: list[Nic],
        payload_bytes: int,
        message: Any,
        deliver: Callable[[Nic, Any], None],
        on_sent: Callable[[], None] | None,
        attempt: int,
    ) -> None:
        if attempt > MAX_MULTICAST_ATTEMPTS:
            # Ethernet gives up after 16 attempts and drops the frame.
            # Under heavy concurrent-multicast load this is the norm —
            # the collision collapse the paper's introduction describes.
            self.env.trace.count(scoped(self.name, NET_MULTICAST_DROPS))
            return
        wire_bytes = self.wire.wire_bytes(payload_bytes)
        frame = _McastFrame()

        def tx_start() -> None:
            now = self.env.now
            frame.start = now
            frame.end = now + wire_bytes * 8.0 / src.bandwidth_bps
            # Any frame still in the air overlaps us: all involved die.
            self._mcast_in_air = [f for f in self._mcast_in_air if f.end > now]
            if self._mcast_in_air:
                for other in self._mcast_in_air:
                    other.dead = True
                frame.dead = True
                self.env.trace.count(scoped(self.name, NET_COLLISIONS))
            self._mcast_in_air.append(frame)

        def tx_done() -> None:
            self._mcast_in_air = [
                f for f in self._mcast_in_air if f is not frame and f.end > self.env.now
            ]
            if frame.dead:
                slots = self._backoff_rng.randrange(1, 2 ** min(attempt, 10))
                slot_time = ETHERNET_SLOT_BITS / src.bandwidth_bps
                self.env.scheduler.schedule(
                    slots * slot_time,
                    self._mcast_attempt,
                    src,
                    dsts,
                    payload_bytes,
                    message,
                    deliver,
                    on_sent,
                    attempt + 1,
                )
                return
            self.env.trace.count(scoped(self.name, NET_MULTICASTS))
            self.env.trace.count(scoped(self.name, NET_WIRE_BYTES), wire_bytes)
            if on_sent is not None:
                on_sent()
            for dst in dsts:
                self._dispatch(
                    src, dst, wire_bytes, message, lambda m, d=dst: deliver(d, m)
                )

        src.tx.submit(wire_bytes, tx_done, on_start=tx_start)

    def _check_attached(self, nic: Nic) -> None:
        if self._nics.get(nic.name) is not nic:
            raise SimulationError(f"NIC {nic.name!r} is not attached to {self.name!r}")
