"""Structured tracing and counters for simulation runs.

A :class:`TraceRecorder` collects two kinds of data:

* *counters* — monotonically increasing named integers (messages sent,
  bytes on the wire, collisions, retransmissions, ...);
* *events* — optional timestamped records used by tests that assert on
  fine-grained ordering (disabled by default because benchmark runs emit
  millions of them).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded simulation event."""

    time: float
    kind: str
    details: tuple = ()


@dataclass
class TraceRecorder:
    """Collects counters and (optionally) a full event log."""

    record_events: bool = False
    counters: Counter = field(default_factory=Counter)
    events: list[TraceEvent] = field(default_factory=list)

    def count(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.counters[name] += amount

    def emit(self, time: float, kind: str, *details: Any) -> None:
        """Record an event if event recording is enabled."""
        if self.record_events:
            self.events.append(TraceEvent(time, kind, tuple(details)))

    def of_kind(self, kind: str) -> Iterable[TraceEvent]:
        """Iterate over recorded events of one kind."""
        return (e for e in self.events if e.kind == kind)

    def last(self, kind: str) -> Optional[TraceEvent]:
        """Return the most recent event of ``kind``, if any."""
        for event in reversed(self.events):
            if event.kind == kind:
                return event
        return None

    def reset_counters(self) -> None:
        """Zero all counters (used between warm-up and measurement)."""
        self.counters.clear()
