"""Deterministic discrete-event cluster simulator.

The simulator stands in for the paper's hardware testbed (24 homogeneous
nodes with dual 100 Mbit/s fast-ethernet NICs).  It models exactly the
resources the paper's evaluation saturates:

* full-duplex NICs whose transmit and receive ports serialise messages at
  a finite bandwidth (:mod:`repro.sim.nic`);
* per-message wire cost including MSS segmentation and per-segment
  TCP/IP/Ethernet overhead (:mod:`repro.sim.wire`);
* a switched fabric with propagation delay, plus an optional
  ethernet-style multicast with collisions and exponential backoff
  (:mod:`repro.sim.network`);
* the paper's two physical topologies — separate client/server networks
  and a single shared network (:mod:`repro.sim.topology`).

Everything is driven by a single :class:`~repro.sim.events.EventScheduler`
and is reproducible from a seed.
"""

from repro.sim.events import EventHandle, EventScheduler
from repro.sim.env import SimEnv
from repro.sim.faults import FaultPlan
from repro.sim.nemesis import Nemesis
from repro.sim.nic import Nic, Port
from repro.sim.network import Network
from repro.sim.topology import ClusterTopology, build_dual_network, build_shared_network
from repro.sim.trace import TraceRecorder
from repro.sim.wire import LinkProfile, WireModel

__all__ = [
    "ClusterTopology",
    "EventHandle",
    "EventScheduler",
    "FaultPlan",
    "LinkProfile",
    "Nemesis",
    "Network",
    "Nic",
    "Port",
    "SimEnv",
    "TraceRecorder",
    "WireModel",
    "build_dual_network",
    "build_shared_network",
]
