"""Simulated process (actor) base class.

A :class:`SimProcess` is anything with a name that can crash: servers,
clients, fault injectors.  The class deliberately contains *no* protocol
logic — protocol state machines live in :mod:`repro.core` and are wired to
processes by the runtime (:mod:`repro.runtime.sim_net`).

Crash semantics follow the paper's model: a crashed process stops
performing any computation step.  Components that hold references to a
process (channels, failure detectors) register crash listeners so the
event propagates to the transport layer, where it surfaces as a broken
TCP connection — the raw signal behind the paper's perfect failure
detector.

Restart semantics extend that model with crash *recovery*: a crashed
process may be restarted, which re-arms it and fires restart listeners so
the same components can re-attach (channels reopen, failure detectors
clear their suspicion).  Volatile state is gone — whatever a process
wants to survive a crash must live in durable storage
(:mod:`repro.core.durable`), exactly as on a real machine.  Crash and
restart listeners stay registered across cycles, so a restarted process
can crash (and recover) again.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import CrashedProcessError
from repro.sim.counters import PROCESS_CRASHES, PROCESS_RESTARTS
from repro.sim.env import SimEnv


class SimProcess:
    """A named, crashable — and restartable — simulated process."""

    def __init__(self, env: SimEnv, name: str):
        self.env = env
        self.name = name
        self._alive = True
        #: Completed crash→restart cycles (the ``process.restarts`` trace
        #: counter aggregates this across the cluster).
        self.restarts = 0
        self._crash_listeners: list[Callable[[SimProcess], None]] = []
        self._restart_listeners: list[Callable[[SimProcess], None]] = []

    @property
    def alive(self) -> bool:
        return self._alive

    def on_crash(self, listener: Callable[["SimProcess"], None]) -> None:
        """Register ``listener(process)`` to run when this process crashes."""
        self._crash_listeners.append(listener)

    def on_restart(self, listener: Callable[["SimProcess"], None]) -> None:
        """Register ``listener(process)`` to run when this process restarts."""
        self._restart_listeners.append(listener)

    def crash(self) -> None:
        """Crash the process.  Idempotent; listeners fire once per crash."""
        if not self._alive:
            return
        self._alive = False
        self.env.trace.count(PROCESS_CRASHES)
        self.env.trace.emit(self.env.now, "crash", self.name)
        for listener in list(self._crash_listeners):
            listener(self)

    def restart(self) -> None:
        """Restart a crashed process.  Idempotent on a live process;
        listeners fire once per restart.  Subclasses that own recoverable
        state (e.g. a server host) override this to reload it from
        durable storage before firing listeners."""
        if self._alive:
            return
        self._alive = True
        self.restarts += 1
        self.env.trace.count(PROCESS_RESTARTS)
        self.env.trace.emit(self.env.now, "restart", self.name)
        for listener in list(self._restart_listeners):
            listener(self)

    def check_alive(self) -> None:
        """Raise :class:`CrashedProcessError` if this process has crashed."""
        if not self._alive:
            raise CrashedProcessError(f"process {self.name!r} has crashed")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self._alive else "crashed"
        return f"<SimProcess {self.name} {state}>"
