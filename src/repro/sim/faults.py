"""Fault injection for simulation runs.

A :class:`FaultPlan` is a declarative crash schedule: *crash process X at
time t*.  Plans are applied to a running cluster by scheduling crash
events; they are how the resilience tests drive the paper's "tolerates
n-1 server crashes" claim without hand-written event plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.sim.env import SimEnv

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.process import SimProcess


@dataclass(frozen=True)
class CrashAt:
    """Crash ``process_name`` at simulated ``time``."""

    time: float
    process_name: str


@dataclass
class FaultPlan:
    """An ordered collection of fault events."""

    crashes: list[CrashAt] = field(default_factory=list)

    def crash(self, process_name: str, at: float) -> "FaultPlan":
        """Append a crash event (chainable)."""
        self.crashes.append(CrashAt(at, process_name))
        return self

    @staticmethod
    def sequential(
        process_names: list[str], first_at: float, spacing: float
    ) -> "FaultPlan":
        """Crash each listed process in order, ``spacing`` seconds apart.

        This is the canonical "kill all but one server" resilience drill:
        crashes are spaced so each ring reconfiguration completes before
        the next crash, matching the paper's synchronous-cluster
        assumption that failure handling is fast relative to failure
        inter-arrival times.
        """
        plan = FaultPlan()
        for index, name in enumerate(process_names):
            plan.crash(name, first_at + index * spacing)
        return plan

    def apply(self, env: SimEnv, processes: dict[str, "SimProcess"]) -> None:
        """Schedule every fault event against ``processes``."""
        for crash in self.crashes:
            if crash.process_name not in processes:
                raise ConfigurationError(
                    f"fault plan references unknown process {crash.process_name!r}"
                )
            process = processes[crash.process_name]
            env.scheduler.schedule_at(crash.time, process.crash)
