"""Declarative fault schedules for simulation runs.

A :class:`FaultPlan` is a composable algebra of timed fault events —
*crash process X at t*, *restart it at t'*, *partition {s0,s1} from {s2}
during [t, t')*, *drop 20 % of c0→s3 frames during [t, t')*, *throttle
s1's NICs 4× during [t, t')*, *pause s2 during [t, t')* — built with
chainable methods and applied to a running cluster in one call.  Crash
and restart events act on :class:`~repro.sim.process.SimProcess` objects
directly; every other event is executed by the cluster's
:class:`~repro.sim.nemesis.Nemesis`.

Plans validate eagerly: negative, NaN or boolean times, empty windows,
out-of-range probabilities and inconsistent crash/restart timelines are
rejected at construction, so a bad schedule fails loudly instead of
silently double-scheduling.  Per process, crashes and restarts must
strictly alternate in time starting with a crash — no crashing a process
that is already down, no restarting one that is up — which is the
interval-validation generalisation of the historic crashes-once rule
(a crash with no matching restart is simply a permanent crash).

The original crash-only surface (``FaultPlan().crash(name, at)``,
:meth:`FaultPlan.sequential`) is unchanged; the chaos harness
(:mod:`repro.chaos`) composes the full algebra from a seeded RNG.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigurationError
from repro.sim.env import SimEnv
from repro.sim.wire import LinkProfile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.nemesis import Nemesis
    from repro.sim.process import SimProcess


def _check_time(value: float, what: str) -> float:
    # bool is an int subclass: plan.crash("s0", True) would otherwise
    # silently schedule at t=1.0 instead of failing the schedule.
    if (
        isinstance(value, bool)
        or not isinstance(value, (int, float))
        or not math.isfinite(value)
        or value < 0
    ):
        raise ConfigurationError(
            f"{what} must be a finite non-negative number, got {value!r}"
        )
    return float(value)


def _check_window(start: float, end: float, what: str) -> tuple[float, float]:
    start = _check_time(start, f"{what} start")
    end = _check_time(end, f"{what} end")
    if end <= start:
        raise ConfigurationError(f"{what} window must end after it starts ({start} >= {end})")
    return start, end


def _windows_overlap(a_start: float, a_end: float, b_start: float, b_end: float) -> bool:
    return a_start < b_end and b_start < a_end


@dataclass(frozen=True)
class CrashAt:
    """Crash ``process_name`` at simulated ``time``."""

    time: float
    process_name: str


@dataclass(frozen=True)
class RestartAt:
    """Restart ``process_name`` at simulated ``time``.

    The process must be down at that time (a strictly earlier crash with
    no intervening restart).  What restarting *means* is the process's
    business: a bare :class:`~repro.sim.process.SimProcess` merely
    re-arms, while a server host reloads its durable snapshot and runs
    the rejoin handshake.
    """

    time: float
    process_name: str


@dataclass(frozen=True)
class PartitionAt:
    """Cut all links between processes in different ``groups`` during
    ``[time, heal_time)``; ``mode`` is ``"hold"`` (TCP: frames buffered
    until heal) or ``"drop"`` (frames lost)."""

    time: float
    heal_time: float
    groups: tuple[tuple[str, ...], ...]
    mode: str = "hold"


@dataclass(frozen=True)
class LinkFaultAt:
    """Apply a :class:`~repro.sim.wire.LinkProfile` to the ``src``→``dst``
    link during ``[time, until)`` (both directions when symmetric)."""

    time: float
    until: float
    src: str
    dst: str
    profile: LinkProfile
    symmetric: bool = False


@dataclass(frozen=True)
class ThrottleAt:
    """Run ``process_name``'s NICs at ``1/factor`` speed during
    ``[time, until)`` (slow-NIC fault)."""

    time: float
    until: float
    process_name: str
    factor: float


@dataclass(frozen=True)
class ClockSkewAt:
    """Set ``process_name``'s local-clock offset to ``offset`` seconds at
    ``time`` (absolute, not cumulative; ``0.0`` restores honesty).  The
    fabric is untouched — only clock-reading runtimes (the heartbeat
    trackers, lease freshness and expiry) see the skewed time."""

    time: float
    process_name: str
    offset: float


@dataclass(frozen=True)
class PauseAt:
    """Freeze ``process_name``'s NIC I/O during ``[time, resume_time)``
    (models a stop-the-world pause; nothing is lost, everything queues)."""

    time: float
    resume_time: float
    process_name: str


@dataclass
class FaultPlan:
    """An ordered, composable collection of fault events."""

    crashes: list[CrashAt] = field(default_factory=list)
    partitions: list[PartitionAt] = field(default_factory=list)
    link_faults: list[LinkFaultAt] = field(default_factory=list)
    throttles: list[ThrottleAt] = field(default_factory=list)
    pauses: list[PauseAt] = field(default_factory=list)
    restarts: list[RestartAt] = field(default_factory=list)
    clock_skews: list[ClockSkewAt] = field(default_factory=list)

    # -- builders ------------------------------------------------------

    def crash(self, process_name: str, at: float) -> "FaultPlan":
        """Append a crash event (chainable).

        The process must be up at ``at``: crashes and restarts of one
        process must strictly alternate in time, starting with a crash.
        """
        at = _check_time(at, "crash time")
        self._check_lifecycle(process_name, at, "crash")
        self.crashes.append(CrashAt(at, process_name))
        return self

    def restart(self, process_name: str, at: float) -> "FaultPlan":
        """Append a restart event (chainable).

        The process must be down at ``at`` (a strictly earlier crash
        with no intervening restart); restarting a live process is
        rejected at construction, like every other impossible schedule.
        """
        at = _check_time(at, "restart time")
        self._check_lifecycle(process_name, at, "restart")
        self.restarts.append(RestartAt(at, process_name))
        return self

    def _check_lifecycle(self, process_name: str, at: float, kind: str) -> None:
        """Validate the crash/restart timeline of one process.

        Builders may append events in any call order; validity is a
        property of the *times*: sorted chronologically, the events must
        strictly alternate crash, restart, crash, ... (ties are
        rejected — simultaneous crash and restart is not a schedule,
        it is a contradiction).
        """
        events = [
            (crash.time, "crash")
            for crash in self.crashes
            if crash.process_name == process_name
        ]
        events += [
            (restart.time, "restart")
            for restart in self.restarts
            if restart.process_name == process_name
        ]
        events.append((at, kind))
        events.sort()
        times = [time for time, _ in events]
        if len(set(times)) != len(times):
            raise ConfigurationError(
                f"{process_name!r} has two lifecycle events at the same time"
            )
        expected = "crash"
        for time, event_kind in events:
            if event_kind != expected:
                state = "already down" if event_kind == "crash" else "not down"
                raise ConfigurationError(
                    f"cannot {event_kind} {process_name!r} at {time}: "
                    f"the process is {state} at that point in the schedule"
                )
            expected = "restart" if expected == "crash" else "crash"

    def partition(
        self, groups, at: float, heal_at: float, mode: str = "hold"
    ) -> "FaultPlan":
        """Partition the listed groups of processes during [at, heal_at)."""
        at, heal_at = _check_window(at, heal_at, "partition")
        if mode not in ("hold", "drop"):
            raise ConfigurationError(f"unknown partition mode {mode!r}")
        frozen = tuple(tuple(group) for group in groups)
        if len(frozen) < 2 or any(not group for group in frozen):
            raise ConfigurationError("a partition needs >= 2 non-empty groups")
        seen: set[str] = set()
        for group in frozen:
            for name in group:
                if name in seen:
                    raise ConfigurationError(f"process {name!r} in two partition groups")
                seen.add(name)
        # Cuts are on/off toggles, not refcounted: a second partition's
        # heal would silently reopen links the first still wants cut.
        # The link enumeration is the executor's own, so the validator
        # can never drift from what Nemesis.partition actually cuts.
        from repro.sim.nemesis import Nemesis

        links = set(Nemesis._cross_links(frozen))
        for other in self.partitions:
            if _windows_overlap(at, heal_at, other.time, other.heal_time) and (
                links & set(Nemesis._cross_links(other.groups))
            ):
                raise ConfigurationError(
                    "partitions with overlapping windows cut the same link; "
                    "merge them into one partition event"
                )
        self.partitions.append(PartitionAt(at, heal_at, frozen, mode))
        return self

    def link(
        self,
        src: str,
        dst: str,
        at: float,
        until: float,
        profile: LinkProfile,
        symmetric: bool = False,
    ) -> "FaultPlan":
        """Impair one link with an arbitrary profile during [at, until)."""
        at, until = _check_window(at, until, "link fault")
        try:
            profile.validate()
        except ValueError as exc:
            raise ConfigurationError(str(exc)) from exc
        self.link_faults.append(LinkFaultAt(at, until, src, dst, profile, symmetric))
        return self

    def drop(
        self, src: str, dst: str, p: float, at: float, until: float,
        symmetric: bool = False,
    ) -> "FaultPlan":
        """Drop each src→dst frame with probability ``p`` during [at, until)."""
        return self.link(src, dst, at, until, LinkProfile(drop_p=p), symmetric)

    def delay(
        self, src: str, dst: str, at: float, until: float,
        extra: float = 0.0, jitter: float = 0.0, symmetric: bool = False,
    ) -> "FaultPlan":
        """Add ``extra`` (+ uniform ``jitter``) latency to src→dst frames.
        Deliveries stay FIFO per link, so this never reorders a TCP-like
        connection — it stretches it."""
        return self.link(
            src, dst, at, until,
            LinkProfile(extra_delay=extra, jitter=jitter), symmetric,
        )

    def duplicate(
        self, src: str, dst: str, p: float, at: float, until: float,
        symmetric: bool = False,
    ) -> "FaultPlan":
        """Deliver each src→dst frame twice with probability ``p``."""
        return self.link(src, dst, at, until, LinkProfile(dup_p=p), symmetric)

    def throttle(
        self, process_name: str, factor: float, at: float, until: float
    ) -> "FaultPlan":
        """Slow ``process_name``'s NICs by ``factor`` during [at, until)."""
        at, until = _check_window(at, until, "throttle")
        if not (isinstance(factor, (int, float)) and math.isfinite(factor) and factor > 0):
            raise ConfigurationError(f"throttle factor must be finite and > 0, got {factor!r}")
        for other in self.throttles:
            if other.process_name == process_name and _windows_overlap(
                at, until, other.time, other.until
            ):
                raise ConfigurationError(
                    f"overlapping throttle windows for {process_name!r}: "
                    "the earlier unthrottle would cancel the later window"
                )
        self.throttles.append(ThrottleAt(at, until, process_name, factor))
        return self

    def pause(self, process_name: str, at: float, resume_at: float) -> "FaultPlan":
        """Pause ``process_name`` during [at, resume_at)."""
        at, resume_at = _check_window(at, resume_at, "pause")
        for other in self.pauses:
            if other.process_name == process_name and _windows_overlap(
                at, resume_at, other.time, other.resume_time
            ):
                raise ConfigurationError(
                    f"overlapping pause windows for {process_name!r}: "
                    "the earlier resume would cancel the later window"
                )
        self.pauses.append(PauseAt(at, resume_at, process_name))
        return self

    def clock_skew(self, process_name: str, offset: float, at: float) -> "FaultPlan":
        """Skew ``process_name``'s local clock by ``offset`` seconds from
        ``at`` onward (negative offsets run the clock slow).  Unlike the
        windowed faults a skew is a state change, not an interval: it
        persists until another ``clock_skew`` replaces it, and two skews
        of one process must therefore sit at distinct times."""
        at = _check_time(at, "clock skew time")
        if (
            isinstance(offset, bool)
            or not isinstance(offset, (int, float))
            or not math.isfinite(offset)
        ):
            raise ConfigurationError(
                f"clock skew offset must be a finite number, got {offset!r}"
            )
        for other in self.clock_skews:
            if other.process_name == process_name and other.time == at:
                raise ConfigurationError(
                    f"{process_name!r} has two clock skews at the same time; "
                    "which offset wins would depend on scheduling order"
                )
        self.clock_skews.append(ClockSkewAt(at, process_name, float(offset)))
        return self

    @staticmethod
    def sequential(
        process_names: list[str], first_at: float, spacing: float
    ) -> "FaultPlan":
        """Crash each listed process in order, ``spacing`` seconds apart.

        This is the canonical "kill all but one server" resilience drill:
        crashes are spaced so each ring reconfiguration completes before
        the next crash, matching the paper's synchronous-cluster
        assumption that failure handling is fast relative to failure
        inter-arrival times.
        """
        plan = FaultPlan()
        for index, name in enumerate(process_names):
            plan.crash(name, first_at + index * spacing)
        return plan

    # -- introspection -------------------------------------------------

    @property
    def events(self) -> int:
        """Total number of scheduled fault events."""
        return (
            len(self.crashes) + len(self.partitions) + len(self.link_faults)
            + len(self.throttles) + len(self.pauses) + len(self.restarts)
            + len(self.clock_skews)
        )

    def fault_kinds(self) -> set[str]:
        """The fault types this plan schedules (chaos coverage report)."""
        kinds: set[str] = set()
        if self.crashes:
            kinds.add("crash")
        if self.restarts:
            kinds.add("restart")
        if self.partitions:
            kinds.add("partition")
        for fault in self.link_faults:
            if fault.profile.drop_p:
                kinds.add("drop")
            if fault.profile.dup_p:
                kinds.add("duplicate")
            if fault.profile.extra_delay or fault.profile.jitter:
                kinds.add("delay")
        if self.throttles:
            kinds.add("throttle")
        if self.pauses:
            kinds.add("pause")
        if self.clock_skews:
            kinds.add("clock_skew")
        return kinds

    def stall_horizon(self) -> float:
        """Latest time at which any fault window is still active.

        The chaos runner sizes a schedule's workload span and deadline
        from this: operations are paced across the horizon so they
        demonstrably overlap every window, and the deadline adds settle
        time beyond it.  (Historically the client timeout was pinned
        past this horizon so a retry could never race a stalled
        pre-write; since the reliable session layer landed, the chaos
        client timeout is deliberately *below* it — duplicate
        initiations are the server's OpId-dedup problem now, and the
        harness attacks exactly that.)
        """
        horizon = 0.0
        for partition in self.partitions:
            horizon = max(horizon, partition.heal_time)
        for fault in self.link_faults:
            horizon = max(horizon, fault.until)
        for throttle in self.throttles:
            horizon = max(horizon, throttle.until)
        for pause in self.pauses:
            horizon = max(horizon, pause.resume_time)
        # A crash..restart pair is a fault window too: the process is
        # down (and its share of the ring stalled) until the restart —
        # and the rejoin churn follows it.  Permanent crashes stay
        # outside the horizon, as before.
        for restart in self.restarts:
            horizon = max(horizon, restart.time)
        return horizon

    # -- application ---------------------------------------------------

    def apply(
        self,
        env: SimEnv,
        processes: dict[str, "SimProcess"],
        nemesis: Optional["Nemesis"] = None,
    ) -> None:
        """Schedule every fault event against the given cluster.

        Every process the plan names must exist in ``processes`` — a
        typo'd name would otherwise cut a link no traffic ever crosses
        (silently weakening the schedule) or explode mid-run inside the
        scheduler.  Apply plans *after* creating the clients they name.

        ``nemesis`` is required when the plan contains anything beyond
        crashes; :meth:`repro.runtime.sim_net.SimCluster.apply_faults`
        passes the cluster's own controller.
        """
        named: set[str] = {crash.process_name for crash in self.crashes}
        named.update(restart.process_name for restart in self.restarts)
        for partition in self.partitions:
            named.update(name for group in partition.groups for name in group)
        for fault in self.link_faults:
            named.update((fault.src, fault.dst))
        named.update(throttle.process_name for throttle in self.throttles)
        named.update(pause.process_name for pause in self.pauses)
        named.update(skew.process_name for skew in self.clock_skews)
        unknown = named - set(processes)
        if unknown:
            raise ConfigurationError(
                f"fault plan references unknown processes {sorted(unknown)!r}; "
                "apply the plan after creating every process it names"
            )

        for crash in self.crashes:
            process = processes[crash.process_name]
            env.scheduler.schedule_at(crash.time, process.crash)
        for restart in self.restarts:
            process = processes[restart.process_name]
            env.scheduler.schedule_at(restart.time, process.restart)

        if self.events == len(self.crashes) + len(self.restarts):
            return
        if nemesis is None:
            raise ConfigurationError(
                "this plan contains link/NIC faults; apply it with a nemesis "
                "(e.g. cluster.apply_faults(plan))"
            )
        for partition in self.partitions:
            env.scheduler.schedule_at(
                partition.time, nemesis.partition, partition.groups, partition.mode
            )
            env.scheduler.schedule_at(
                partition.heal_time, nemesis.heal_partition, partition.groups
            )
        for fault in self.link_faults:
            env.scheduler.schedule_at(
                fault.time, self._start_link_rule, nemesis, fault
            )
        for throttle in self.throttles:
            env.scheduler.schedule_at(
                throttle.time, nemesis.throttle, throttle.process_name, throttle.factor
            )
            env.scheduler.schedule_at(
                throttle.until, nemesis.unthrottle, throttle.process_name
            )
        for pause in self.pauses:
            env.scheduler.schedule_at(pause.time, nemesis.pause, pause.process_name)
            env.scheduler.schedule_at(
                pause.resume_time, nemesis.resume, pause.process_name
            )
        for skew in self.clock_skews:
            env.scheduler.schedule_at(
                skew.time, nemesis.clock_skew, skew.process_name, skew.offset
            )

    @staticmethod
    def _start_link_rule(nemesis: "Nemesis", fault: LinkFaultAt) -> None:
        rule_id = nemesis.add_link_rule(
            fault.src, fault.dst, fault.profile, fault.symmetric
        )
        nemesis.env.scheduler.schedule_at(
            fault.until, nemesis.remove_link_rule, fault.src, fault.dst, rule_id
        )
