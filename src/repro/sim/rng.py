"""Seeded random-number streams.

Each simulator component that needs randomness (fault injectors, workload
generators, multicast backoff) draws from its own named stream so that
adding randomness to one component never perturbs another.  Streams are
derived deterministically from the experiment seed and the stream name.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream name.

    Uses SHA-256 so that the mapping is stable across Python versions and
    platforms (``hash()`` is salted per-process and therefore unusable).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """A factory of independent, reproducible :class:`random.Random` streams."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = root_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.root_seed, name))
        return self._streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """Create a child registry whose root seed depends on ``name``."""
        return RngRegistry(derive_seed(self.root_seed, name))
