"""Runtime fault controller: the cluster's nemesis.

A :class:`Nemesis` sits between the switched fabric and the receive
ports (:meth:`~repro.sim.network.Network.unicast` hands it every
transmitted frame) and decides whether, when and how often each frame
arrives.  It implements the link-level half of the fault algebra declared
by :class:`~repro.sim.faults.FaultPlan`:

* **partition / cut link** — a directed link can be *cut*.  In ``hold``
  mode (the default, TCP semantics) frames are buffered and flushed in
  FIFO order when the link heals; in ``drop`` mode (UDP semantics) they
  are silently lost.
* **drop / delay / duplicate** — per-link
  :class:`~repro.sim.wire.LinkProfile` rules roll a seeded RNG per frame.
* **slow-NIC throttle** and **pause/resume** act on the process's NICs
  directly (:meth:`~repro.sim.nic.Nic.throttle`,
  :meth:`~repro.sim.nic.Nic.pause`).

Two invariants keep injected faults inside the protocol's network model
(TCP-like connections between correct processes):

1. **Per-link FIFO.**  Once a link has ever been impaired, every arrival
   on it is clamped to be no earlier than the previously scheduled
   arrival, so delays and heals never reorder a link.
2. **The nemesis never delivers on behalf of the dead.**  A held or
   delayed frame whose *sender* has crashed by delivery time is dropped
   (a dead host cannot retransmit into a healed partition), preserving
   the failure detector's synchrony assumption that no frame from a
   crashed server lands after reconfiguration.

Everything the nemesis does is counted in the trace
(``nemesis.drops``, ``nemesis.dup_deliveries``, ``nemesis.delayed``,
``nemesis.held``, ...), which is how the chaos harness proves a fault
type was actually exercised.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.errors import ConfigurationError
from repro.sim.counters import (
    NEMESIS_CLOCK_SKEWS,
    NEMESIS_CUTS,
    NEMESIS_CUT_DROPS,
    NEMESIS_DELAYED,
    NEMESIS_DROPS,
    NEMESIS_DUP_DELIVERIES,
    NEMESIS_HEALS,
    NEMESIS_HELD,
    NEMESIS_HELD_DELIVERED,
    NEMESIS_PARTITIONS,
    NEMESIS_PAUSES,
    NEMESIS_POSTHUMOUS_DROPS,
    NEMESIS_RULES,
    NEMESIS_THROTTLES,
)
from repro.sim.env import SimEnv
from repro.sim.nic import Nic
from repro.sim.wire import LinkProfile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.network import Network
    from repro.sim.topology import ClusterTopology

#: Directed link key: (source process name, destination process name).
Link = tuple[str, str]


class _LinkState:
    """Mutable fault state of one directed link."""

    __slots__ = ("cut", "hold_mode", "held", "rules")

    def __init__(self) -> None:
        self.cut = False
        self.hold_mode = True
        self.held: list[tuple] = []
        self.rules: dict[int, LinkProfile] = {}

    @property
    def idle(self) -> bool:
        return not self.cut and not self.held and not self.rules


class Nemesis:
    """Composable link/NIC fault injector for one simulated cluster.

    Links are identified by *process* names (``"s0"``, ``"c3"``); a cut
    of ``("s0", "s1")`` affects s0→s1 traffic on whichever network routes
    it.  All mutators take effect immediately; scheduling them at future
    times is :meth:`~repro.sim.faults.FaultPlan.apply`'s job.
    """

    def __init__(self, env: SimEnv, topo: "ClusterTopology | None" = None):
        self.env = env
        self.topo = topo
        self._links: dict[Link, _LinkState] = {}
        #: Latest scheduled arrival per link, for the FIFO clamp.  A link
        #: enters this map on first impairment and stays, so a delayed
        #: frame can never be overtaken after the fault window closes.
        self._fifo: dict[Link, float] = {}
        self._rng = env.rng.stream("nemesis")
        self._rule_seq = 0
        #: Per-process local-clock offsets (seconds added to the fabric
        #: clock).  Consumed by clock-reading runtimes — the heartbeat
        #: driver's trackers and lease freshness checks — never by the
        #: fabric itself: frames still travel on simulated time; only
        #: what a process *believes* the time to be is skewed.
        self._clock_offsets: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Frame routing (called by Network for every transmitted frame)
    # ------------------------------------------------------------------

    def route(
        self,
        network: "Network",
        src: Nic,
        dst: Nic,
        wire_bytes: int,
        message: Any,
        deliver: Callable[[Any], None],
    ) -> None:
        """Decide the fate of one transmitted frame."""
        link = (src.process_name, dst.process_name)
        state = self._links.get(link)
        if state is None:
            if link not in self._fifo:
                # Fast path: identical to an un-faulted network (and no
                # RNG draw, so healthy links never perturb determinism).
                network.schedule_arrival(
                    network.propagation_delay, dst, wire_bytes, message, deliver
                )
                return
            extra, copies = 0.0, 1
        elif state.cut:
            if state.hold_mode:
                state.held.append((network, src, dst, wire_bytes, message, deliver))
                self.env.trace.count(NEMESIS_HELD)
            else:
                # Counted separately from probabilistic drops so coverage
                # reports can attribute the loss to the cut.
                self.env.trace.count(NEMESIS_CUT_DROPS)
            return
        else:
            extra, copies = 0.0, 1
            for profile in state.rules.values():
                if profile.drop_p and self._rng.random() < profile.drop_p:
                    self.env.trace.count(NEMESIS_DROPS)
                    return
                extra += profile.extra_delay
                if profile.jitter:
                    extra += self._rng.random() * profile.jitter
                if profile.dup_p and self._rng.random() < profile.dup_p:
                    copies += 1
        if extra > 0.0:
            self.env.trace.count(NEMESIS_DELAYED)
        arrival = self.env.now + network.propagation_delay + extra
        self._deliver_at(link, network, src, dst, wire_bytes, message, deliver, arrival)
        for _ in range(copies - 1):
            # The duplicate trails the original by at least one more
            # fabric hop; the FIFO clamp keeps it behind the original.
            self.env.trace.count(NEMESIS_DUP_DELIVERIES)
            self._deliver_at(
                link, network, src, dst, wire_bytes, message, deliver,
                arrival + network.propagation_delay,
            )

    def _deliver_at(
        self,
        link: Link,
        network: "Network",
        src: Nic,
        dst: Nic,
        wire_bytes: int,
        message: Any,
        deliver: Callable[[Any], None],
        arrival: float,
    ) -> None:
        arrival = max(arrival, self._fifo.get(link, 0.0))
        self._fifo[link] = arrival

        def fire() -> None:
            if src.owner is not None and not src.owner.alive:
                self.env.trace.count(NEMESIS_POSTHUMOUS_DROPS)
                return
            network.deliver_now(dst, wire_bytes, message, deliver)

        self.env.scheduler.schedule_at(arrival, fire)

    # ------------------------------------------------------------------
    # Partitions and link cuts
    # ------------------------------------------------------------------

    def cut(self, src: str, dst: str, mode: str = "hold") -> None:
        """Cut the directed link src→dst (asymmetric by design)."""
        if mode not in ("hold", "drop"):
            raise ConfigurationError(f"unknown cut mode {mode!r}")
        state = self._state((src, dst))
        state.cut = True
        state.hold_mode = mode == "hold"
        self.env.trace.count(NEMESIS_CUTS)
        self.env.trace.emit(self.env.now, "nemesis.cut", src, dst, mode)

    def heal(self, src: str, dst: str) -> None:
        """Heal the directed link src→dst, flushing held frames in order."""
        link = (src, dst)
        state = self._links.get(link)
        if state is None or not state.cut:
            return
        state.cut = False
        held, state.held = state.held, []
        for network, src_nic, dst_nic, wire_bytes, message, deliver in held:
            self.env.trace.count(NEMESIS_HELD_DELIVERED)
            self._deliver_at(
                link, network, src_nic, dst_nic, wire_bytes, message, deliver,
                self.env.now + network.propagation_delay,
            )
        self.env.trace.emit(self.env.now, "nemesis.heal", src, dst)
        self._gc(link)

    def partition(self, groups: Iterable[Iterable[str]], mode: str = "hold") -> None:
        """Cut every link between processes in different groups (both
        directions).  Processes not listed in any group are unaffected."""
        self.env.trace.count(NEMESIS_PARTITIONS)
        for a, b in self._cross_links(groups):
            self.cut(a, b, mode)

    def heal_partition(self, groups: Iterable[Iterable[str]]) -> None:
        """Undo :meth:`partition` for the same groups."""
        self.env.trace.count(NEMESIS_HEALS)
        for a, b in self._cross_links(groups):
            self.heal(a, b)

    @staticmethod
    def _cross_links(groups: Iterable[Iterable[str]]) -> list[Link]:
        sets = [list(group) for group in groups]
        links: list[Link] = []
        for i, group_a in enumerate(sets):
            for group_b in sets[i + 1:]:
                for a in group_a:
                    for b in group_b:
                        links.append((a, b))
                        links.append((b, a))
        return links

    # ------------------------------------------------------------------
    # Per-link loss/delay/duplication rules
    # ------------------------------------------------------------------

    def add_link_rule(
        self, src: str, dst: str, profile: LinkProfile, symmetric: bool = False
    ) -> int:
        """Attach ``profile`` to src→dst (and dst→src when symmetric).
        Returns a rule id for :meth:`remove_link_rule`."""
        profile.validate()
        self._rule_seq += 1
        rule_id = self._rule_seq
        self._state((src, dst)).rules[rule_id] = profile
        if symmetric:
            self._state((dst, src)).rules[rule_id] = profile
        self.env.trace.count(NEMESIS_RULES)
        return rule_id

    def remove_link_rule(self, src: str, dst: str, rule_id: int) -> None:
        """Detach a rule installed by :meth:`add_link_rule`."""
        for link in ((src, dst), (dst, src)):
            state = self._links.get(link)
            if state is not None:
                state.rules.pop(rule_id, None)
                self._gc(link)

    # ------------------------------------------------------------------
    # NIC-level faults
    # ------------------------------------------------------------------

    def throttle(self, process: str, factor: float) -> None:
        """Run every NIC of ``process`` at ``1/factor`` of its rate."""
        self.env.trace.count(NEMESIS_THROTTLES)
        for nic in self._nics_of(process):
            nic.throttle(factor)

    def unthrottle(self, process: str) -> None:
        """Restore nameplate bandwidth on every NIC of ``process``."""
        for nic in self._nics_of(process):
            nic.unthrottle()

    def pause(self, process: str) -> None:
        """Stop all NIC I/O of ``process`` (a stop-the-world pause)."""
        self.env.trace.count(NEMESIS_PAUSES)
        self.env.trace.emit(self.env.now, "nemesis.pause", process)
        for nic in self._nics_of(process):
            nic.pause()

    def resume(self, process: str) -> None:
        """Resume NIC I/O of ``process``; queued frames flow again."""
        self.env.trace.emit(self.env.now, "nemesis.resume", process)
        for nic in self._nics_of(process):
            nic.resume()

    # ------------------------------------------------------------------
    # Clock faults
    # ------------------------------------------------------------------

    def clock_skew(self, process: str, offset: float) -> None:
        """Offset ``process``'s local clock by ``offset`` seconds.

        Positive offsets run the clock fast (timeouts and lease expiries
        fire early — the wrong-suspicion attack), negative offsets run
        it slow (leases appear fresh longer — the attack on the
        ``2*clock_drift_bound`` charge in the wait-out arithmetic).
        The offset is absolute, not cumulative: a second call replaces
        the first, and ``0.0`` restores an honest clock.
        """
        self.env.trace.count(NEMESIS_CLOCK_SKEWS)
        self.env.trace.emit(self.env.now, "nemesis.clock_skew", process, offset)
        self._clock_offsets[process] = offset

    def clock_offset(self, process: str) -> float:
        """Current local-clock offset of ``process`` (0.0 if honest)."""
        return self._clock_offsets.get(process, 0.0)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _state(self, link: Link) -> _LinkState:
        state = self._links.get(link)
        if state is None:
            state = self._links[link] = _LinkState()
            self._fifo.setdefault(link, 0.0)
        return state

    def _gc(self, link: Link) -> None:
        state = self._links.get(link)
        if state is not None and state.idle:
            del self._links[link]  # the FIFO clamp entry stays on purpose

    def _nics_of(self, process: str) -> list[Nic]:
        if self.topo is None:
            raise ConfigurationError(
                "this nemesis has no topology; NIC-level faults unavailable"
            )
        nics = self.topo.nics.get(process)
        if not nics:
            raise ConfigurationError(f"unknown process {process!r}")
        return list(nics.values())
