"""writeahead.* — mutations of snapshot-covered state persist before any
reply or ring message leaves the handler.

PR 3's crash-recovery contract: a server may only expose an effect (ack
a client, forward a ring message) after the state that produced it is in
the write-ahead snapshot.  In code, every handler marks mutations with
``_mark_dirty()`` and calls ``_maybe_persist()`` before returning —
outputs only leave the protocol object via the handler's *return value*
(``drain_replies()`` / ``next_*``), so the checkable form of the
invariant is: **no public method of a durable protocol class may return
while covered state is dirty**.

The rule runs an intra-class abstract interpretation: each method gets a
summary mapping entry persistence-state (clean/dirty) to its possible
exit states, iterated to a fixpoint over the intra-class call graph
(handles the ``_next_ring_message`` recursion).  Mutation events:

* assign/augassign/delete of a covered attribute (any receiver — the
  ``restore`` classmethod builds ``proto`` instead of ``self``);
* subscript stores into covered attributes;
* mutating method calls (``pop``/``clear``/``update``/``append``/...)
  on covered attributes;
* passing a covered attribute to an intra-class helper that mutates the
  corresponding parameter (``_advance_completed``);
* ``_mark_dirty()`` / ``self._dirty = True``.

Persist events: ``_maybe_persist()``, ``<durable>.save(...)``,
``self._dirty = False``.

``writeahead.host-bypass`` additionally forbids host/runtime code from
reaching into a protocol's covered attributes directly — hosts must go
through handler methods, which persist for themselves.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.staticheck.base import (
    Project,
    SourceFile,
    Violation,
    attr_chain,
    file_rule,
)

#: Attributes covered by the write-ahead snapshot (``ServerSnapshot``
#: in repro/core/durable.py): register state, completion bookkeeping,
#: the pending set, reconfiguration epoch/counter, and ring membership.
COVERED_ATTRS = frozenset(
    {
        "value",
        "tag",
        "ts_seen",
        "watermark",
        "completed_ops",
        "completed_tags",
        "pending",
        "installed_epoch",
        "_reconfig_counter",
        "ring",
    }
)

_MUTATING_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "update",
    }
)

# Abstract persistence states.
_CLEAN = "clean"
_DIRTY = "dirty"

_IDENTITY = {_CLEAN: frozenset({_CLEAN}), _DIRTY: frozenset({_DIRTY})}


def _is_durable_class(node: ast.ClassDef) -> bool:
    """A class participates in the write-ahead discipline iff it defines
    ``_maybe_persist`` (ServerProtocol today; coded backends later)."""
    return any(
        isinstance(item, ast.FunctionDef) and item.name == "_maybe_persist"
        for item in node.body
    )


def _receiver_attr(node: ast.expr) -> Optional[str]:
    """``<receiver>.attr`` -> attr, for a one-level attribute access on a
    plain name (``self.pending``, ``proto.ring``)."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        return node.attr
    return None


class _MethodInfo:
    def __init__(self, node: ast.FunctionDef):
        self.node = node
        # Declaration order matters: callers match positional arguments
        # against this list to find mutated parameters.
        self.params = [arg.arg for arg in node.args.args]
        #: Parameter names this method mutates in place (dict/set/list
        #: operations on a bare parameter name).
        self.mutated_params: set[str] = set()
        for sub in ast.walk(node):
            target: Optional[ast.expr] = None
            if isinstance(sub, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = sub.targets if isinstance(sub, ast.Assign) else (
                    sub.targets if isinstance(sub, ast.Delete) else [sub.target]
                )
                for tgt in targets:
                    if isinstance(tgt, ast.Subscript) and isinstance(
                        tgt.value, ast.Name
                    ):
                        self.mutated_params.add(tgt.value.id)
            elif isinstance(sub, ast.Call):
                func = sub.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.attr in _MUTATING_METHODS
                ):
                    self.mutated_params.add(func.value.id)
        self.mutated_params.intersection_update(self.params)


class _ClassAnalysis:
    """Fixpoint analysis of one durable class."""

    def __init__(self, node: ast.ClassDef):
        self.node = node
        self.methods: dict[str, _MethodInfo] = {
            item.name: _MethodInfo(item)
            for item in node.body
            if isinstance(item, ast.FunctionDef)
        }
        self.summaries: dict[str, dict[str, frozenset[str]]] = {
            name: dict(_IDENTITY) for name in self.methods
        }

    def run(self) -> None:
        changed = True
        iterations = 0
        while changed and iterations < 50:
            changed = False
            iterations += 1
            for name, info in self.methods.items():
                for entry in (_CLEAN, _DIRTY):
                    exits = self._analyze_method(info, entry)
                    if exits != self.summaries[name][entry]:
                        self.summaries[name][entry] = exits
                        changed = True

    # -- statement-level transfer --------------------------------------

    def _analyze_method(self, info: _MethodInfo, entry: str) -> frozenset[str]:
        exits: set[str] = set()
        fallthrough = self._run_body(info, info.node.body, frozenset({entry}), exits)
        exits |= fallthrough
        return frozenset(exits) or frozenset({entry})

    def _run_body(
        self,
        info: _MethodInfo,
        body: list[ast.stmt],
        states: frozenset[str],
        exits: set[str],
    ) -> frozenset[str]:
        for stmt in body:
            if not states:
                break
            states = self._run_stmt(info, stmt, states, exits)
        return states

    def _run_stmt(
        self,
        info: _MethodInfo,
        stmt: ast.stmt,
        states: frozenset[str],
        exits: set[str],
    ) -> frozenset[str]:
        if isinstance(stmt, ast.Return):
            states = self._eval_expr(info, stmt.value, states)
            exits |= states
            return frozenset()
        if isinstance(stmt, ast.Raise):
            # Exceptional exits abort the handler before outputs are
            # consumed; the runtime treats them as crashes.
            return frozenset()
        if isinstance(stmt, ast.If):
            cond = self._eval_expr(info, stmt.test, states)
            then = self._run_body(info, stmt.body, cond, exits)
            other = self._run_body(info, stmt.orelse, cond, exits)
            return then | other
        if isinstance(stmt, (ast.For, ast.While)):
            if isinstance(stmt, ast.For):
                states = self._eval_expr(info, stmt.iter, states)
            else:
                states = self._eval_expr(info, stmt.test, states)
            seen = states
            # Loop bodies run zero or more times: iterate the transfer
            # to a fixpoint (the state lattice has four elements).
            for _ in range(4):
                after = self._run_body(info, stmt.body, seen, exits)
                merged = seen | after
                if merged == seen:
                    break
                seen = merged
            return self._run_body(info, stmt.orelse, seen, exits)
        if isinstance(stmt, ast.Try):
            after_body = self._run_body(info, stmt.body, states, exits)
            # A handler may run from any point of the body: approximate
            # its entry as anything the body could have produced.
            handler_entry = states | after_body
            result = after_body
            for handler in stmt.handlers:
                result |= self._run_body(info, handler.body, handler_entry, exits)
            result = self._run_body(info, stmt.orelse, result, exits)
            return self._run_body(info, stmt.finalbody, result, exits)
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                states = self._eval_expr(info, item.context_expr, states)
            return self._run_body(info, stmt.body, states, exits)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return states
        # Generic statement: walk its expressions for events, then apply
        # store effects.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                states = self._eval_expr(info, child, states)
        states = self._apply_stores(stmt, states)
        return states

    def _apply_stores(self, stmt: ast.stmt, states: frozenset[str]) -> frozenset[str]:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = stmt.targets
        dirty = False
        for target in targets:
            attr = _receiver_attr(target)
            if attr == "_dirty" and isinstance(stmt, ast.Assign):
                value = stmt.value
                if isinstance(value, ast.Constant):
                    states = (
                        frozenset({_DIRTY})
                        if value.value is True
                        else frozenset({_CLEAN})
                    )
                    continue
            if attr in COVERED_ATTRS:
                dirty = True
            if isinstance(target, ast.Subscript):
                sub_attr = _receiver_attr(target.value)
                if sub_attr in COVERED_ATTRS:
                    dirty = True
            if isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    if _receiver_attr(element) in COVERED_ATTRS:
                        dirty = True
        if dirty:
            return frozenset({_DIRTY})
        return states

    def _eval_expr(
        self, info: _MethodInfo, node: Optional[ast.expr], states: frozenset[str]
    ) -> frozenset[str]:
        if node is None:
            return states
        for call in [n for n in ast.walk(node) if isinstance(n, ast.Call)]:
            states = self._apply_call(info, call, states)
        return states

    def _apply_call(
        self, info: _MethodInfo, call: ast.Call, states: frozenset[str]
    ) -> frozenset[str]:
        func = call.func
        attr = _receiver_attr(func) if isinstance(func, ast.Attribute) else None
        if attr == "_mark_dirty":
            return frozenset({_DIRTY})
        if attr == "_maybe_persist":
            return frozenset({_CLEAN})
        if attr == "save" and isinstance(func, ast.Attribute):
            chain = attr_chain(func)
            if chain is not None and "durable" in chain.split("."):
                return frozenset({_CLEAN})
        # Mutating container method on a covered attribute:
        # self.pending.pop(...), proto.completed_ops.update(...).  The
        # receiver is a two-level chain, so check the method name on the
        # Attribute node itself (``attr`` above is None for these).
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATING_METHODS
            and isinstance(func.value, ast.Attribute)
            and _receiver_attr(func.value) in COVERED_ATTRS
        ):
            return frozenset({_DIRTY})
        # Intra-class call: apply the callee's summary.
        if attr in self.summaries and isinstance(func, ast.Attribute):
            summary = self.summaries[attr]
            result: set[str] = set()
            for state in states:
                result |= summary[state]
            states = frozenset(result)
            # Covered attribute passed to a helper that mutates the
            # corresponding parameter.
            callee = self.methods[attr]  # type: ignore[index]
            params = [
                arg for arg in callee.params if arg not in ("self", "cls")
            ]
            for index, argument in enumerate(call.args):
                if index < len(params) and params[index] in callee.mutated_params:
                    if _receiver_attr(argument) in COVERED_ATTRS:
                        states = frozenset({_DIRTY})
        return states


@file_rule("writeahead")
def check(sf: SourceFile, project: Project) -> list[Violation]:
    if sf.tree is None or not sf.rel.startswith("repro/"):
        return []
    out: list[Violation] = []
    out.extend(_check_durable_classes(sf))
    out.extend(_check_host_bypass(sf))
    return out


def _check_durable_classes(sf: SourceFile) -> list[Violation]:
    out: list[Violation] = []
    for node in ast.walk(sf.tree):  # type: ignore[arg-type]
        if not isinstance(node, ast.ClassDef) or not _is_durable_class(node):
            continue
        analysis = _ClassAnalysis(node)
        analysis.run()
        for name, info in analysis.methods.items():
            if name.startswith("_"):
                continue
            exits = analysis.summaries[name][_CLEAN]
            if _DIRTY in exits:
                out.append(
                    Violation(
                        sf.rel,
                        info.node.lineno,
                        info.node.col_offset,
                        "writeahead.persist-before-output",
                        f"{node.name}.{name}() can return with unpersisted "
                        "covered state: add _maybe_persist() before every "
                        "exit that follows a mutation",
                    )
                )
    return out


_HOST_SCOPES = ("repro/core/sharded.py", "repro/runtime/")


def _check_host_bypass(sf: SourceFile) -> list[Violation]:
    """Hosts and runtimes must mutate protocol state only through
    handler methods (which persist for themselves), never by assigning
    ``<x>.proto.<covered attr>`` directly."""
    if not any(sf.rel.startswith(scope) for scope in _HOST_SCOPES):
        return []
    out: list[Violation] = []
    for node in ast.walk(sf.tree):  # type: ignore[arg-type]
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = node.targets
        for target in targets:
            base = target.value if isinstance(target, ast.Subscript) else target
            if not isinstance(base, ast.Attribute):
                continue
            if base.attr not in COVERED_ATTRS:
                continue
            owner = base.value
            chain = attr_chain(owner)
            if chain is not None and (
                chain == "proto" or chain.endswith(".proto") or "proto" in
                chain.split(".")
            ):
                out.append(
                    Violation(
                        sf.rel,
                        node.lineno,
                        node.col_offset,
                        "writeahead.host-bypass",
                        f"direct store to protocol covered state "
                        f"'{chain}.{base.attr}' bypasses the write-ahead "
                        "persist discipline; call a handler method instead",
                    )
                )
    return out
