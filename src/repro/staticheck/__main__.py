"""CLI: ``python -m repro.staticheck [--json|--github] [paths...]``.

Exit status 0 means the analyzed tree satisfies every protocol
invariant the rules encode (and carries no unjustified or unused
pragmas); 1 means violations; 2 means usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.staticheck.base import all_rules, run_paths


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticheck",
        description="AST-based protocol-invariant checks "
                    "(see docs/static-analysis.md)",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze (default: src)")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable output (one JSON document)")
    parser.add_argument("--github", action="store_true",
                        help="GitHub Actions ::error annotations")
    parser.add_argument("--list-rules", action="store_true",
                        help="print registered rule families and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for name in all_rules():
            print(name)
        return 0

    violations = run_paths(args.paths or ["src"])

    if args.json:
        print(
            json.dumps(
                {
                    "violations": [v.to_json() for v in violations],
                    "count": len(violations),
                },
                indent=2,
            )
        )
    elif args.github:
        for v in violations:
            # GitHub matches annotation paths against the checkout root.
            path = f"src/{v.path}" if v.path.startswith("repro/") else v.path
            print(
                f"::error file={path},line={v.line},"
                f"title=staticheck({v.rule})::{v.message}"
            )
        print(f"{len(violations)} violation(s)")
    else:
        for v in violations:
            print(f"{v.path}:{v.line}:{v.col}: [{v.rule}] {v.message}")
        print(f"{len(violations)} violation(s)")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
