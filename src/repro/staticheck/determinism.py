"""determinism.* — seed => byte-identical traces is a source invariant.

The chaos gate, the BENCH regression gate, and failing-schedule replay
all assume that a (seed, schedule) pair reproduces bit-identically.
Anything that samples the environment — wall clock, process-global RNG,
hash-randomised set order — breaks that silently.  Three checks, scoped
to the deterministic core (``repro/core``, ``repro/sim``,
``repro/transport``, ``repro/chaos``, ``repro/fd``, and
``repro/bench/experiments.py``):

* ``determinism.wall-clock`` — calls that read host time;
* ``determinism.global-rng`` — draws from the process-global ``random``
  module (seeded ``random.Random`` instances are the approved idiom),
  ``os.urandom``/``secrets``/``uuid`` entropy;
* ``determinism.unordered-iter`` — iterating a set/frozenset (or a dict
  comprehension keyed off one) where the order can escape: ``for``
  statements, list/generator comprehensions not wrapped in an
  order-insensitive reducer.  Iterate ``sorted(...)`` instead.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.staticheck.base import (
    ImportMap,
    Project,
    SourceFile,
    Violation,
    build_parents,
    file_rule,
)

_SCOPES = (
    "repro/core/",
    "repro/sim/",
    "repro/transport/",
    "repro/chaos/",
    "repro/fd/",
    "repro/bench/experiments.py",
)

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Module-level functions of :mod:`random` that draw from the global
#: stream.  ``random.Random(seed)`` instantiation is the approved idiom
#: and is deliberately absent.
_GLOBAL_RNG_FNS = frozenset(
    {
        "betavariate",
        "binomialvariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "setstate",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

_ENTROPY = frozenset({"os.urandom", "uuid.uuid1", "uuid.uuid4", "random.SystemRandom"})

#: Calls whose result is order-insensitive, so feeding them a set
#: iteration cannot leak set order into the trace.
_ORDER_INSENSITIVE = frozenset(
    {"sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset"}
)


def _applies(rel: str) -> bool:
    return any(rel.startswith(scope) for scope in _SCOPES)


@file_rule("determinism")
def check(sf: SourceFile, project: Project) -> list[Violation]:
    if sf.tree is None or not _applies(sf.rel):
        return []
    imports = ImportMap(sf.tree)
    parents = build_parents(sf.tree)
    out: list[Violation] = []
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.Call):
            out.extend(_check_call(sf, imports, node))
    out.extend(_check_unordered(sf, parents))
    return out


def _check_call(
    sf: SourceFile, imports: ImportMap, node: ast.Call
) -> list[Violation]:
    qualified = imports.resolve(node.func)
    if qualified is None:
        return []
    if qualified in _WALL_CLOCK:
        return [
            Violation(
                sf.rel,
                node.lineno,
                node.col_offset,
                "determinism.wall-clock",
                f"{qualified}() reads host time inside the deterministic "
                "core; take time from the simulation clock (env.now)",
            )
        ]
    if qualified in _ENTROPY or qualified.startswith("secrets."):
        return [
            Violation(
                sf.rel,
                node.lineno,
                node.col_offset,
                "determinism.global-rng",
                f"{qualified}() is nondeterministic entropy; derive values "
                "from a seeded random.Random instance",
            )
        ]
    if (
        qualified.startswith("random.")
        and qualified.split(".", 1)[1] in _GLOBAL_RNG_FNS
    ):
        return [
            Violation(
                sf.rel,
                node.lineno,
                node.col_offset,
                "determinism.global-rng",
                f"{qualified}() draws from the process-global RNG; use a "
                "seeded random.Random instance (see repro/sim/rng.py)",
            )
        ]
    return []


# ----------------------------------------------------------------------
# Unordered iteration
# ----------------------------------------------------------------------


class _SetTypes(ast.NodeVisitor):
    """Best-effort inference of set-typed names in one module.

    Records local/attribute names that are annotated or assigned a
    set/frozenset (literal, constructor, or set-typed binop).  This is
    deliberately shallow — cross-module types are out of scope; the rule
    trades recall for a near-zero false-positive rate.
    """

    def __init__(self, imports: ImportMap):
        self.imports = imports
        self.names: set[str] = set()  # "x" locals / "self.x" attributes

    def _target_key(self, target: ast.expr) -> Optional[str]:
        if isinstance(target, ast.Name):
            return target.id
        if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
            return f"{target.value.id}.{target.attr}"
        return None

    def _is_set_annotation(self, annotation: ast.expr) -> bool:
        node = annotation
        if isinstance(node, ast.Subscript):
            node = node.value
        return isinstance(node, ast.Name) and node.id in ("set", "frozenset") or (
            isinstance(node, ast.Attribute) and node.attr in ("Set", "FrozenSet")
        )

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        key = self._target_key(node.target)
        if key is not None and self._is_set_annotation(node.annotation):
            self.names.add(key)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if is_set_expr(node.value, self.names):
            for target in node.targets:
                key = self._target_key(target)
                if key is not None:
                    self.names.add(key)
        self.generic_visit(node)


def is_set_expr(node: ast.expr, set_names: set[str]) -> bool:
    """Is ``node`` statically known to evaluate to a set/frozenset?"""
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return is_set_expr(node.left, set_names) or is_set_expr(node.right, set_names)
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        return f"{node.value.id}.{node.attr}" in set_names
    return False


def _check_unordered(
    sf: SourceFile, parents: dict[ast.AST, ast.AST]
) -> list[Violation]:
    inference = _SetTypes(ImportMap(sf.tree))  # type: ignore[arg-type]
    inference.visit(sf.tree)  # type: ignore[arg-type]
    set_names = inference.names
    out: list[Violation] = []

    def flag(node: ast.AST, what: str) -> None:
        out.append(
            Violation(
                sf.rel,
                node.lineno,  # type: ignore[attr-defined]
                node.col_offset,  # type: ignore[attr-defined]
                "determinism.unordered-iter",
                f"{what} iterates a set: the order is hash-randomised and "
                "can leak into wire/trace/scheduling order; iterate "
                "sorted(...) instead",
            )
        )

    for node in ast.walk(sf.tree):  # type: ignore[arg-type]
        if isinstance(node, ast.For) and is_set_expr(node.iter, set_names):
            flag(node.iter, "for statement")
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            first = node.generators[0]
            if not is_set_expr(first.iter, set_names):
                continue
            if isinstance(node, ast.DictComp):
                # A dict built over a set keeps the set's order.
                flag(first.iter, "dict comprehension")
                continue
            parent = parents.get(node)
            if (
                isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id in _ORDER_INSENSITIVE
                and node in parent.args
            ):
                continue  # sorted(x for x in s) and friends are safe
            kind = "list comprehension" if isinstance(node, ast.ListComp) else (
                "generator expression"
            )
            flag(first.iter, kind)
    return out
