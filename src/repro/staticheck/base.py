"""Analyzer infrastructure: source model, pragma handling, rule registry.

Paths are normalised to a ``repro/...``-relative form so rules can scope
themselves to subsystems (``repro/core/``, ``repro/sim/``, ...) without
caring where the tree is checked out — which also lets the fixture tests
run rules against snippets in a tmp directory.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Optional

#: Pragma grammar: ``# staticheck: allow(<rule>) -- <justification>``.
#: The justification is mandatory (enforced as its own violation) — a
#: suppression nobody can defend in review is a rotting invariant.
_PRAGMA_RE = re.compile(
    r"#\s*staticheck:\s*allow\(([A-Za-z0-9_.-]+)\)\s*(?:--\s*(\S.*?))?\s*$"
)

#: Minimum justification length; "ok" is not a justification.
_MIN_JUSTIFICATION = 10


@dataclass(frozen=True)
class Violation:
    """One finding, addressable by file position and rule id."""

    path: str  # repro-relative, e.g. "repro/core/server.py"
    line: int
    col: int
    rule: str  # dotted id, e.g. "determinism.wall-clock"
    message: str

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass
class Pragma:
    line: int
    rule: str
    justification: str
    used: bool = False

    def allows(self, rule_id: str) -> bool:
        """A pragma allows a rule id exactly or by family prefix
        (``allow(determinism)`` covers ``determinism.wall-clock``)."""
        return rule_id == self.rule or rule_id.startswith(self.rule + ".")


@dataclass
class SourceFile:
    """One parsed source file plus its suppression pragmas."""

    path: Path
    rel: str
    text: str
    tree: Optional[ast.Module]
    pragmas: dict[int, Pragma] = field(default_factory=dict)
    parse_error: Optional[SyntaxError] = None

    @classmethod
    def load(cls, path: Path, rel: str) -> "SourceFile":
        text = path.read_text(encoding="utf-8")
        tree: Optional[ast.Module] = None
        parse_error: Optional[SyntaxError] = None
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:  # pragma: no cover - defensive
            parse_error = exc
        sf = cls(path=path, rel=rel, text=text, tree=tree, parse_error=parse_error)
        # Pragmas are recognised only in real comment tokens, so a
        # docstring *describing* the pragma syntax is not itself one.
        try:
            tokens = tokenize.generate_tokens(io.StringIO(text).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                match = _PRAGMA_RE.search(token.string)
                if match:
                    lineno = token.start[0]
                    sf.pragmas[lineno] = Pragma(
                        line=lineno,
                        rule=match.group(1),
                        justification=match.group(2) or "",
                    )
        except tokenize.TokenError:  # pragma: no cover - defensive
            pass
        return sf

    def pragma_for(self, line: int, rule_id: str) -> Optional[Pragma]:
        """The pragma covering ``line`` for ``rule_id``, if any.

        A pragma covers its own line, or — when written as a standalone
        comment — the first following line (so long lines can carry the
        pragma just above them).
        """
        pragma = self.pragmas.get(line)
        if pragma is not None and pragma.allows(rule_id):
            return pragma
        above = self.pragmas.get(line - 1)
        if above is not None and above.allows(rule_id):
            source_line = self.text.splitlines()[above.line - 1]
            if source_line.lstrip().startswith("#"):
                return above
        return None


class Project:
    """The set of files under analysis, addressable by repro-relative path."""

    def __init__(self, files: list[SourceFile]):
        self.files = files
        self._by_rel = {sf.rel: sf for sf in files}

    def find(self, rel: str) -> Optional[SourceFile]:
        return self._by_rel.get(rel)

    @classmethod
    def from_paths(cls, paths: Iterable[Path]) -> "Project":
        files: list[SourceFile] = []
        seen: set[Path] = set()
        for path in paths:
            for py in sorted(_iter_py_files(path)):
                resolved = py.resolve()
                if resolved in seen:
                    continue
                seen.add(resolved)
                files.append(SourceFile.load(py, _relativize(py)))
        return cls(files)


def _iter_py_files(path: Path):
    if path.is_file() and path.suffix == ".py":
        yield path
    elif path.is_dir():
        yield from path.rglob("*.py")


def _relativize(path: Path) -> str:
    """Path relative to the ``repro`` package root, e.g.
    ``repro/core/server.py``.  Files outside a ``repro`` tree keep
    their name — no rule will scope to them, but pragma hygiene and
    project-wide rules still see them."""
    parts = path.parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return path.name


# ----------------------------------------------------------------------
# Rule registry
# ----------------------------------------------------------------------

#: A per-file rule: (source_file, project) -> violations.
FileRule = Callable[[SourceFile, "Project"], list[Violation]]
#: A whole-project rule: (project) -> violations.
ProjectRule = Callable[["Project"], list[Violation]]

_FILE_RULES: dict[str, FileRule] = {}
_PROJECT_RULES: dict[str, ProjectRule] = {}


def file_rule(name: str):
    """Register a per-file rule family under ``name``."""

    def register(fn: FileRule) -> FileRule:
        _FILE_RULES[name] = fn
        return fn

    return register


def project_rule(name: str):
    """Register a whole-project rule family under ``name``."""

    def register(fn: ProjectRule) -> ProjectRule:
        _PROJECT_RULES[name] = fn
        return fn

    return register


def all_rules() -> tuple[str, ...]:
    return tuple(sorted((*_FILE_RULES, *_PROJECT_RULES)))


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------


def run_project(project: Project) -> list[Violation]:
    """Run every registered rule, then apply pragma suppression.

    Pragma semantics: a matching pragma suppresses the finding but must
    carry a justification (else ``pragma.unjustified`` fires at the
    pragma); a pragma that suppresses nothing is ``pragma.unused``.
    """
    raw: list[Violation] = []
    for sf in project.files:
        if sf.parse_error is not None:
            raw.append(
                Violation(
                    sf.rel,
                    sf.parse_error.lineno or 1,
                    (sf.parse_error.offset or 1) - 1,
                    "parse.error",
                    f"syntax error: {sf.parse_error.msg}",
                )
            )
            continue
        for fn in _FILE_RULES.values():
            raw.extend(fn(sf, project))
    for fn in _PROJECT_RULES.values():
        raw.extend(fn(project))

    kept: list[Violation] = []
    for violation in raw:
        sf = project.find(violation.path)
        pragma = (
            sf.pragma_for(violation.line, violation.rule) if sf is not None else None
        )
        if pragma is None:
            kept.append(violation)
        else:
            pragma.used = True

    for sf in project.files:
        for pragma in sf.pragmas.values():
            if pragma.used and len(pragma.justification) < _MIN_JUSTIFICATION:
                kept.append(
                    Violation(
                        sf.rel,
                        pragma.line,
                        0,
                        "pragma.unjustified",
                        f"pragma allow({pragma.rule}) needs a justification: "
                        '"# staticheck: allow(rule) -- why this is safe"',
                    )
                )
            elif not pragma.used:
                kept.append(
                    Violation(
                        sf.rel,
                        pragma.line,
                        0,
                        "pragma.unused",
                        f"pragma allow({pragma.rule}) suppresses nothing; remove it",
                    )
                )
    kept.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return kept


def run_paths(paths: Iterable[str]) -> list[Violation]:
    """Analyze ``paths`` (files or directories) and return violations."""
    return run_project(Project.from_paths(Path(p) for p in paths))


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------


class ImportMap:
    """Resolves names in one module to dotted qualified names.

    Tracks ``import x [as y]`` and ``from x import y [as z]`` so a rule
    can ask what ``t.monotonic`` or a bare ``randint`` refers to.
    """

    def __init__(self, tree: ast.Module):
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve(self, node: ast.expr) -> Optional[str]:
        """Dotted qualified name of ``node`` (a Name or Attribute chain
        rooted at an imported name), or None."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))


def build_parents(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    """Child -> parent map (rules use it for consumption context)."""
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def attr_chain(node: ast.expr) -> Optional[str]:
    """Dotted source form of a Name/Attribute chain (``self.proto.tag``),
    or None when the chain is rooted in a call or subscript."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))
