"""counters.* — trace counter names flow through the central registry.

PR 5 found the chaos gate passing vacuously because a counter consumed
by ``_KIND_COUNTERS`` no longer matched what the emit site spelled.
The fix is structural: every counter name lives once, in
``repro/sim/counters.py``, and this rule enforces:

* ``counters.literal`` — a registered counter name appearing as a
  string literal anywhere else (emit site, gate table, bench reader)
  must be replaced by the registry constant, so both sides rename
  together or not at all;
* ``counters.unregistered`` — ``trace.count("some.literal")`` with a
  dotted name the registry does not know: either register it or it is
  a typo;
* ``counters.consumed-not-emitted`` — a registry constant referenced by
  a consumer module (chaos gate, bench accounting) but by no emitting
  module: the gate would read an eternally-zero counter and pass
  vacuously — exactly the PR 5 failure, now caught at diff time.
"""

from __future__ import annotations

import ast
import re
from typing import Optional

from repro.staticheck.base import (
    ImportMap,
    Project,
    SourceFile,
    Violation,
    build_parents,
    project_rule,
)

_REGISTRY = "repro/sim/counters.py"

#: Modules that legitimately *emit* counters (call trace.count).  The
#: sharded host module is the one core/ member: the elastic rebalancer
#: lives with the block hosts it samples, and its shard.*/migration.*
#: counters are emitted there.
_EMITTER_SCOPES = (
    "repro/sim/",
    "repro/runtime/",
    "repro/fd/",
    "repro/transport/",
    "repro/core/sharded.py",
)
#: Modules that *consume* counters (gates, accounting, reports).
_CONSUMER_SCOPES = ("repro/chaos/", "repro/bench/", "repro/analysis/")

_DOTTED_NAME = re.compile(r"^[a-z][a-z0-9_]*\.[a-z][a-z0-9_]*$")


def _registry_constants(sf: SourceFile) -> dict[str, str]:
    """NAME -> value for the registry's fixed counter constants."""
    out: dict[str, str] = {}
    if sf.tree is None:
        return out
    for node in sf.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if (
                isinstance(target, ast.Name)
                and target.id.isupper()
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
                and "." in node.value.value
            ):
                out[target.id] = node.value.value
    return out


def _is_docstring(node: ast.AST, parents: dict[ast.AST, ast.AST]) -> bool:
    parent = parents.get(node)
    if not isinstance(parent, ast.Expr):
        return False
    grand = parents.get(parent)
    if not isinstance(
        grand, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        return False
    return grand.body and grand.body[0] is parent


def _count_arg(node: ast.Call) -> Optional[ast.expr]:
    """The name argument of a ``<x>.count(name, ...)`` call."""
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == "count" and node.args:
        return node.args[0]
    return None


@project_rule("counters")
def check(project: Project) -> list[Violation]:
    registry = project.find(_REGISTRY)
    if registry is None:
        # Nothing to enforce against (e.g. a fixture tree without the
        # registry); the tree meta-test guarantees the real tree has it.
        return []
    constants = _registry_constants(registry)
    registered = set(constants.values())
    out: list[Violation] = []

    #: registry constant name -> set of referencing modules, split by role.
    emitted: set[str] = set()
    consumed: dict[str, tuple[str, int]] = {}

    for sf in project.files:
        if sf.tree is None or sf.rel == _REGISTRY:
            continue
        if not sf.rel.startswith("repro/") or sf.rel.startswith("repro/staticheck/"):
            continue
        imports = ImportMap(sf.tree)
        aliases_to_const = {
            alias: qualified.rsplit(".", 1)[1]
            for alias, qualified in imports.aliases.items()
            if qualified.startswith("repro.sim.counters.")
            and qualified.rsplit(".", 1)[1] in constants
        }
        parents = build_parents(sf.tree)
        is_emitter = any(sf.rel.startswith(s) for s in _EMITTER_SCOPES)
        is_consumer = any(sf.rel.startswith(s) for s in _CONSUMER_SCOPES)

        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                if node.value in registered and not _is_docstring(node, parents):
                    out.append(
                        Violation(
                            sf.rel, node.lineno, node.col_offset,
                            "counters.literal",
                            f'counter name "{node.value}" spelled as a '
                            "literal; use the repro.sim.counters constant "
                            "so emit sites and gates rename together",
                        )
                    )
            elif isinstance(node, ast.Name) and node.id in aliases_to_const:
                const = aliases_to_const[node.id]
                if is_emitter:
                    emitted.add(const)
                if is_consumer and const not in consumed:
                    consumed[const] = (sf.rel, node.lineno)
            elif isinstance(node, ast.Attribute):
                # ``counters.PROCESS_CRASHES`` module-attribute style.
                qualified = imports.resolve(node)
                if qualified is not None and qualified.startswith(
                    "repro.sim.counters."
                ):
                    const = qualified.rsplit(".", 1)[1]
                    if const in constants:
                        if is_emitter:
                            emitted.add(const)
                        if is_consumer and const not in consumed:
                            consumed[const] = (sf.rel, node.lineno)
            elif isinstance(node, ast.Call):
                arg = _count_arg(node)
                if (
                    arg is not None
                    and isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)
                    and _DOTTED_NAME.match(arg.value)
                    and arg.value not in registered
                ):
                    out.append(
                        Violation(
                            sf.rel, node.lineno, node.col_offset,
                            "counters.unregistered",
                            f'trace counter "{arg.value}" is not in '
                            "repro/sim/counters.py; register it (or fix "
                            "the typo) so gates can rely on it",
                        )
                    )

    for const, (rel, line) in sorted(consumed.items()):
        if const not in emitted:
            out.append(
                Violation(
                    rel, line, 0, "counters.consumed-not-emitted",
                    f"registry constant {const} is consumed here but no "
                    "emitting module (repro/sim, repro/runtime, repro/fd, "
                    "repro/transport) references it — the gate reads an "
                    "eternally-zero counter",
                )
            )
    return out
