"""protolint: AST-based checks for this repo's protocol invariants.

The repo's load-bearing guarantees — seed => byte-identical traces,
write-ahead persistence before any reply leaves a handler, codec
dispatch-table completeness, asyncio hygiene, and honest chaos-gate
coverage — are invariants of the *source*, not of any one test input.
This package checks them statically, at diff time, with repo-specific
AST rules (see docs/static-analysis.md for the catalogue).

Run it as ``python -m repro.staticheck [--json|--github] [paths]``.
Suppress a finding with a justified pragma on the flagged line::

    t0 = time.perf_counter()  # staticheck: allow(determinism.wall-clock) -- wall diagnostics only

Unjustified or unused pragmas are themselves violations.
"""

from repro.staticheck.base import (  # noqa: F401
    Project,
    Violation,
    all_rules,
    run_paths,
)

# Importing the rule modules registers their rules.
from repro.staticheck import asynchygiene  # noqa: F401
from repro.staticheck import codec_check  # noqa: F401
from repro.staticheck import counters_rule  # noqa: F401
from repro.staticheck import determinism  # noqa: F401
from repro.staticheck import writeahead  # noqa: F401
