"""codec.* — the wire codec and the message catalogue stay in lockstep.

PR 6 rewrote the codec hot path around dict dispatch; the cost of that
shape is that *nothing* fails at import time when a new message class
misses a table entry — it fails at runtime, on the first message of that
type, possibly only under chaos.  This rule cross-checks, purely from
the ASTs of ``core/messages.py``, ``transport/codec.py`` and
``transport/reliable.py``:

* every message class (the ``RingMessage``/``ClientMessage``/
  ``ServerReply`` unions plus ``Heartbeat``) has a ``_TYPE_CODES`` code,
  an ``_ENCODERS`` entry, a ``_DECODERS`` entry under that code, and an
  ``isinstance`` arm in ``payload_size``;
* type codes are unique;
* declared byte-accounting constants match the struct formats that
  actually produce the bytes (``TAG_WIRE_BYTES`` == sizeof ``">qi"``,
  ``BASE_WIRE_BYTES`` == sizeof ``">B3xI"``, segment/batch header
  constants == their struct sizes);
* every ring message carries an ``epoch`` field (the epoch guard drops
  unstamped cross-view traffic — a ring type without the stamp would be
  rejected by every receiver after the first reconfiguration);
* the batch sentinel is the u32 maximum and data seqs start far below
  it (``_next_seq`` initialisers), so a batch container can never be
  mistaken for a data segment.
"""

from __future__ import annotations

import ast
import struct
from typing import Optional

from repro.staticheck.base import Project, SourceFile, Violation, project_rule

_MESSAGES = "repro/core/messages.py"
_CODEC = "repro/transport/codec.py"
_RELIABLE = "repro/transport/reliable.py"

#: messages.py constant -> struct format that must produce its width.
_WIDTH_CONSTANTS = {
    "TAG_WIRE_BYTES": ">qi",
    "OP_ID_WIRE_BYTES": ">qi",
    "BASE_WIRE_BYTES": ">B3xI",
}


def _module_constants(tree: ast.Module) -> dict[str, ast.expr]:
    out: dict[str, ast.expr] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                out[target.id] = node.value
    return out


def _int_value(node: Optional[ast.expr]) -> Optional[int]:
    if node is None:
        return None
    try:
        value = ast.literal_eval(node)
    except (ValueError, SyntaxError):
        return None
    return value if isinstance(value, int) else None


def _union_members(node: ast.expr) -> list[str]:
    """Class names in a ``Union[...]`` subscript or ``A | B`` chain."""
    if isinstance(node, ast.Subscript):
        inner = node.slice
        elements = inner.elts if isinstance(inner, ast.Tuple) else [inner]
        names = []
        for element in elements:
            names.extend(_union_members(element))
        return names
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _union_members(node.left) + _union_members(node.right)
    if isinstance(node, ast.Name):
        return [node.id]
    return []


def _dataclass_fields(node: ast.ClassDef) -> set[str]:
    return {
        item.target.id
        for item in node.body
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name)
    }


@project_rule("codec")
def check(project: Project) -> list[Violation]:
    messages = project.find(_MESSAGES)
    codec = project.find(_CODEC)
    if messages is None or messages.tree is None:
        return []
    out: list[Violation] = []

    classes: dict[str, ast.ClassDef] = {
        node.name: node
        for node in messages.tree.body
        if isinstance(node, ast.ClassDef)
    }
    constants = _module_constants(messages.tree)

    ring_members = _union_members(constants.get("RingMessage", ast.Tuple(elts=[])))
    encodable = list(
        dict.fromkeys(
            ring_members
            + _union_members(constants.get("ClientMessage", ast.Tuple(elts=[])))
            + _union_members(constants.get("ServerReply", ast.Tuple(elts=[])))
            + (["Heartbeat"] if "Heartbeat" in classes else [])
        )
    )
    if not encodable:
        out.append(
            Violation(
                _MESSAGES, 1, 0, "codec.catalogue",
                "could not find the RingMessage/ClientMessage/ServerReply "
                "unions; the codec rule has nothing to check against",
            )
        )
        return out

    # -- fragment messages must ride the ring --------------------------
    # The coded backend's Fragment* messages travel server-to-server and
    # are epoch-fenced; one that is not in the RingMessage union escapes
    # the epoch-stamp, payload_size and dispatch checks below *and* the
    # server's on_ring_message dispatch — a silent hole, not an error.
    for name, node in classes.items():
        if name.startswith("Fragment") and name not in ring_members:
            out.append(
                Violation(
                    _MESSAGES, node.lineno, node.col_offset,
                    "codec.fragment-union",
                    f"fragment message {name} is not in the RingMessage "
                    "union; it would bypass the epoch guard and the codec "
                    "coverage checks",
                )
            )

    # -- epoch stamps on ring messages ---------------------------------
    for name in ring_members:
        node = classes.get(name)
        if node is None:
            continue
        if "epoch" not in _dataclass_fields(node):
            out.append(
                Violation(
                    _MESSAGES, node.lineno, node.col_offset, "codec.epoch-stamp",
                    f"ring message {name} has no 'epoch' field; the epoch "
                    "guard will reject it after any reconfiguration",
                )
            )

    # -- payload_size coverage -----------------------------------------
    size_fn = next(
        (
            node
            for node in messages.tree.body
            if isinstance(node, ast.FunctionDef) and node.name == "payload_size"
        ),
        None,
    )
    if size_fn is None:
        out.append(
            Violation(
                _MESSAGES, 1, 0, "codec.payload-size",
                "payload_size() not found in core/messages.py",
            )
        )
    else:
        sized: set[str] = set()
        for node in ast.walk(size_fn):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "isinstance"
                and len(node.args) == 2
            ):
                kind = node.args[1]
                elements = kind.elts if isinstance(kind, ast.Tuple) else [kind]
                sized |= {e.id for e in elements if isinstance(e, ast.Name)}
        for name in encodable:
            if name not in sized:
                out.append(
                    Violation(
                        _MESSAGES, size_fn.lineno, size_fn.col_offset,
                        "codec.payload-size",
                        f"payload_size() has no isinstance arm for {name}; "
                        "the simulator cannot charge its wire cost",
                    )
                )

    # -- dispatch tables -----------------------------------------------
    if codec is None or codec.tree is None:
        out.append(
            Violation(
                _MESSAGES, 1, 0, "codec.dispatch",
                f"{_CODEC} not in the analyzed paths; cannot check the "
                "dispatch tables",
            )
        )
        return out
    codec_constants = _module_constants(codec.tree)

    type_codes: dict[str, Optional[int]] = {}
    codes_node = codec_constants.get("_TYPE_CODES")
    if isinstance(codes_node, ast.Dict):
        for key, value in zip(codes_node.keys, codes_node.values):
            if isinstance(key, ast.Name):
                type_codes[key.id] = _int_value(value)
    encoder_keys: set[str] = set()
    encoders_node = codec_constants.get("_ENCODERS")
    if isinstance(encoders_node, ast.Dict):
        encoder_keys = {k.id for k in encoders_node.keys if isinstance(k, ast.Name)}
    decoder_keys: set[str] = set()
    decoders_node = codec_constants.get("_DECODERS")
    if isinstance(decoders_node, ast.Dict):
        for key in decoders_node.keys:
            # Keys are written _TYPE_CODES[ClassName] so the code lives
            # in exactly one place.
            if (
                isinstance(key, ast.Subscript)
                and isinstance(key.value, ast.Name)
                and key.value.id == "_TYPE_CODES"
                and isinstance(key.slice, ast.Name)
            ):
                decoder_keys.add(key.slice.id)

    line = codes_node.lineno if codes_node is not None else 1
    for name in encodable:
        if name not in type_codes:
            out.append(
                Violation(
                    _CODEC, line, 0, "codec.dispatch",
                    f"message class {name} has no _TYPE_CODES entry",
                )
            )
        if name not in encoder_keys:
            out.append(
                Violation(
                    _CODEC,
                    encoders_node.lineno if encoders_node is not None else 1,
                    0,
                    "codec.dispatch",
                    f"message class {name} has no _ENCODERS entry",
                )
            )
        if name not in decoder_keys:
            out.append(
                Violation(
                    _CODEC,
                    decoders_node.lineno if decoders_node is not None else 1,
                    0,
                    "codec.dispatch",
                    f"message class {name} has no _DECODERS entry",
                )
            )

    seen_codes: dict[int, str] = {}
    for name, code in type_codes.items():
        if code is None:
            continue
        if code in seen_codes:
            out.append(
                Violation(
                    _CODEC, line, 0, "codec.dispatch",
                    f"type code {code} assigned to both {seen_codes[code]} "
                    f"and {name}",
                )
            )
        seen_codes[code] = name

    # -- byte-accounting constants -------------------------------------
    for const, fmt in _WIDTH_CONSTANTS.items():
        declared = _int_value(constants.get(const))
        if declared is None:
            out.append(
                Violation(
                    _MESSAGES, 1, 0, "codec.byte-accounting",
                    f"constant {const} not found or not a literal int",
                )
            )
        elif declared != struct.calcsize(fmt):
            out.append(
                Violation(
                    _MESSAGES, 1, 0, "codec.byte-accounting",
                    f"{const} = {declared} but its wire format {fmt!r} "
                    f"packs {struct.calcsize(fmt)} bytes",
                )
            )

    out.extend(_check_reliable(project))
    return out


def _struct_format(node: Optional[ast.expr]) -> Optional[str]:
    """The format string of a ``struct.Struct("...")`` initialiser."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "Struct"
        and node.args
        and isinstance(node.args[0], ast.Constant)
        and isinstance(node.args[0].value, str)
    ):
        return node.args[0].value
    return None


def _check_reliable(project: Project) -> list[Violation]:
    reliable = project.find(_RELIABLE)
    if reliable is None or reliable.tree is None:
        return []
    out: list[Violation] = []
    constants = _module_constants(reliable.tree)

    header_fmt = _struct_format(constants.get("_SEGMENT_HEADER"))
    declared_header = _int_value(constants.get("SEGMENT_HEADER_BYTES"))
    if header_fmt is not None and declared_header is not None:
        if struct.calcsize(header_fmt) != declared_header:
            out.append(
                Violation(
                    _RELIABLE, 1, 0, "codec.byte-accounting",
                    f"SEGMENT_HEADER_BYTES = {declared_header} but "
                    f"_SEGMENT_HEADER {header_fmt!r} packs "
                    f"{struct.calcsize(header_fmt)} bytes",
                )
            )
    entry_fmt = _struct_format(constants.get("_BATCH_ENTRY"))
    declared_entry = _int_value(constants.get("BATCH_ENTRY_BYTES"))
    if entry_fmt is not None and declared_entry is not None:
        if struct.calcsize(entry_fmt) != declared_entry:
            out.append(
                Violation(
                    _RELIABLE, 1, 0, "codec.byte-accounting",
                    f"BATCH_ENTRY_BYTES = {declared_entry} but _BATCH_ENTRY "
                    f"{entry_fmt!r} packs {struct.calcsize(entry_fmt)} bytes",
                )
            )

    sentinel = _int_value(constants.get("BATCH_SENTINEL"))
    if sentinel is None:
        out.append(
            Violation(
                _RELIABLE, 1, 0, "codec.batch-sentinel",
                "BATCH_SENTINEL not found in transport/reliable.py",
            )
        )
        return out
    # The sentinel occupies a data segment's seq slot; it is safe only
    # as the u32 maximum (seqs count up from 1 and overflow the header
    # long before), and only if every _next_seq initialiser starts far
    # below it.
    if sentinel != 0xFFFFFFFF:
        out.append(
            Violation(
                _RELIABLE, 1, 0, "codec.batch-sentinel",
                f"BATCH_SENTINEL = {sentinel:#x}; it must be the u32 "
                "maximum 0xFFFFFFFF so no assignable seq collides",
            )
        )
    for node in ast.walk(reliable.tree):  # type: ignore[arg-type]
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr == "_next_seq"
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, int)
                    and node.value.value >= sentinel
                ):
                    out.append(
                        Violation(
                            _RELIABLE, node.lineno, node.col_offset,
                            "codec.batch-sentinel",
                            f"_next_seq initialised to {node.value.value}, "
                            "at or above BATCH_SENTINEL — a data segment "
                            "would decode as a batch container",
                        )
                    )
    return out
