"""asynchygiene.* — the asyncio runtime stays non-blocking and race-free.

The asyncio transport (``runtime/asyncio_net.py``) multiplexes every
ring/client connection on one loop.  Three repo-specific hazards:

* ``asynchygiene.blocking-call`` — a synchronous sleep or file/socket
  call inside a coroutine stalls *every* connection (heartbeats included,
  so it manufactures false suspicions);
* ``asynchygiene.orphaned-task`` — a ``create_task``/``ensure_future``
  result that nobody keeps is garbage-collectable mid-flight (CPython
  only holds a weak reference), and its exceptions vanish;
* ``asynchygiene.await-yield`` — reading a protocol-state attribute
  (``self.proto.*``), awaiting, then writing it back is a lost-update
  race: any other coroutine may run at the await point.  Re-read after
  the await or mutate through a handler call.

The rule applies to any ``repro/`` module that defines coroutines.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.staticheck.base import (
    ImportMap,
    Project,
    SourceFile,
    Violation,
    attr_chain,
    file_rule,
)

_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.fsync",
        "os.replace",
        "socket.socket",
        "socket.create_connection",
        "subprocess.run",
        "subprocess.check_call",
        "subprocess.check_output",
        "urllib.request.urlopen",
    }
)

_TASK_FACTORIES = frozenset({"asyncio.create_task", "asyncio.ensure_future"})


@file_rule("asynchygiene")
def check(sf: SourceFile, project: Project) -> list[Violation]:
    if sf.tree is None or not sf.rel.startswith("repro/"):
        return []
    imports = ImportMap(sf.tree)
    out: list[Violation] = []
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.AsyncFunctionDef):
            out.extend(_check_coroutine(sf, imports, node))
    out.extend(_check_orphaned_tasks(sf, imports))
    return out


def _own_nodes(fn: ast.AsyncFunctionDef):
    """Walk ``fn`` without descending into nested function definitions
    (a sync helper defined inside a coroutine runs elsewhere)."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _check_coroutine(
    sf: SourceFile, imports: ImportMap, fn: ast.AsyncFunctionDef
) -> list[Violation]:
    out: list[Violation] = []
    events: list[tuple[str, str, ast.AST]] = []  # (kind, attr, node)
    for node in _own_nodes(fn):
        if isinstance(node, ast.Call):
            qualified = imports.resolve(node.func)
            if qualified in _BLOCKING_CALLS:
                out.append(
                    Violation(
                        sf.rel, node.lineno, node.col_offset,
                        "asynchygiene.blocking-call",
                        f"{qualified}() blocks the event loop inside "
                        f"coroutine {fn.name}(); use the asyncio "
                        "equivalent (e.g. await asyncio.sleep)",
                    )
                )
            elif (
                isinstance(node.func, ast.Name)
                and node.func.id == "open"
                and node.func.id not in imports.aliases
            ):
                out.append(
                    Violation(
                        sf.rel, node.lineno, node.col_offset,
                        "asynchygiene.blocking-call",
                        f"open() performs blocking file I/O inside "
                        f"coroutine {fn.name}(); do it before the loop "
                        "starts or in a thread executor",
                    )
                )
        if isinstance(node, ast.Await):
            events.append(("await", "", node))
        elif isinstance(node, ast.Attribute):
            chain = attr_chain(node)
            if chain is None:
                continue
            parts = chain.split(".")
            # Protocol state: self.proto.<attr> (or <anything>.proto.<attr>).
            if len(parts) >= 3 and parts[-2] == "proto":
                kind = "store" if isinstance(node.ctx, ast.Store) else (
                    "load" if isinstance(node.ctx, ast.Load) else "other"
                )
                if kind != "other":
                    events.append((kind, chain, node))
    out.extend(_check_await_yield(sf, fn, events))
    return out


def _check_await_yield(
    sf: SourceFile,
    fn: ast.AsyncFunctionDef,
    events: list[tuple[str, str, ast.AST]],
) -> list[Violation]:
    """Flag load -> await -> store sequences on one protocol attribute.

    Source order approximates execution order; this errs toward flagging
    (the pragma escape exists for deliberate, re-validated writes).
    """
    events.sort(key=lambda e: (e[2].lineno, e[2].col_offset))  # type: ignore[attr-defined]
    out: list[Violation] = []
    loads: dict[str, int] = {}  # attr -> index of first load
    awaited_after_load: set[str] = set()
    flagged: set[str] = set()
    for kind, attr, node in events:
        if kind == "await":
            awaited_after_load |= set(loads)
        elif kind == "load":
            loads.setdefault(attr, node.lineno)  # type: ignore[attr-defined]
        elif kind == "store" and attr in awaited_after_load and attr not in flagged:
            flagged.add(attr)
            out.append(
                Violation(
                    sf.rel,
                    node.lineno,  # type: ignore[attr-defined]
                    node.col_offset,  # type: ignore[attr-defined]
                    "asynchygiene.await-yield",
                    f"{fn.name}() reads {attr} (line {loads[attr]}), awaits, "
                    "then writes it back: another coroutine may have "
                    "changed it at the await point; re-read after the "
                    "await or mutate via a handler call",
                )
            )
    return out


def _check_orphaned_tasks(sf: SourceFile, imports: ImportMap) -> list[Violation]:
    out: list[Violation] = []
    for node in ast.walk(sf.tree):  # type: ignore[arg-type]
        if not isinstance(node, ast.Expr) or not isinstance(node.value, ast.Call):
            continue
        call = node.value
        qualified = imports.resolve(call.func)
        is_factory = qualified in _TASK_FACTORIES or (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in ("create_task", "ensure_future")
        )
        if is_factory:
            out.append(
                Violation(
                    sf.rel, node.lineno, node.col_offset,
                    "asynchygiene.orphaned-task",
                    "task result discarded: the event loop holds only a "
                    "weak reference, so the task can be garbage-collected "
                    "mid-flight and its exceptions are silently lost; "
                    "keep a reference (track it and discard on done)",
                )
            )
    return out
