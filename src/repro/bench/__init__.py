"""Benchmark harness: regenerates every figure of the paper's evaluation.

* :mod:`repro.bench.harness` — builds a cluster, applies a workload,
  measures throughput/latency over a warm-started window;
* :mod:`repro.bench.experiments` — one entry per paper artifact
  (fig1, sec4, fig3a-fig3d, fig4) plus the ablations, each returning the
  same rows/series the paper plots;
* :mod:`repro.bench.report` — renders paper-style tables and ASCII
  charts.
"""

from repro.bench.harness import ThroughputPoint, run_latency_point, run_throughput_point

__all__ = ["ThroughputPoint", "run_latency_point", "run_throughput_point"]
