"""Paper-style rendering of experiment results.

Renders the series behind each figure as aligned text tables plus a
crude ASCII chart, so ``python -m repro.bench`` output can be compared
to the paper's plots at a glance.
"""

from __future__ import annotations

from typing import Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Align ``rows`` under ``headers`` (numbers formatted to 1 decimal)."""
    formatted = [
        [f"{cell:.1f}" if isinstance(cell, float) else str(cell) for cell in row]
        for row in rows
    ]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in formatted)) if formatted else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in formatted:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_chart(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 50,
    height: int = 12,
    y_label: str = "",
) -> str:
    """A minimal ASCII scatter of one or more series against ``xs``."""
    all_values = [v for values in series.values() for v in values]
    if not all_values:
        return "(no data)"
    y_max = max(all_values) * 1.05 or 1.0
    x_min, x_max = min(xs), max(xs)
    span = (x_max - x_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "o*x+#@"
    for index, (name, values) in enumerate(sorted(series.items())):
        marker = markers[index % len(markers)]
        for x, y in zip(xs, values):
            col = int((x - x_min) / span * (width - 1))
            row = height - 1 - int(y / y_max * (height - 1))
            grid[max(0, min(height - 1, row))][col] = marker
    lines = [f"{y_max:8.1f} |" + "".join(grid[0])]
    for row in grid[1:]:
        lines.append(" " * 8 + " |" + "".join(row))
    lines.append(" " * 8 + " +" + "-" * width)
    lines.append(
        " " * 10 + f"{x_min:<10g}{'servers':^{max(0, width - 20)}}{x_max:>10g}"
    )
    legend = "   ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(sorted(series))
    )
    if y_label:
        lines.insert(0, f"  {y_label}")
    lines.append("  " + legend)
    return "\n".join(lines)
