"""Regenerate every paper figure from the command line.

Usage::

    python -m repro.bench            # all experiments
    python -m repro.bench fig3a fig4 # a subset
"""

from __future__ import annotations

import sys

from repro.bench.experiments import EXPERIMENTS
from repro.bench.report import render_table


def main(argv: list[str]) -> int:
    names = argv or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {list(EXPERIMENTS)}")
        return 2
    for name in names:
        headers, rows = EXPERIMENTS[name]()
        print(f"\n=== {name} ===")
        print(render_table(headers, rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
