"""Repeatable perf harness: seeded snapshots, committed as BENCH_<tag>.json.

``python -m repro.bench.experiments`` regenerates the paper's figures;
this module answers a different question: *did this commit make the
implementation faster or slower?*  It runs a small, fixed, fully-seeded
scenario set and records everything a regression hunt needs:

* **simulated** throughput (ops/s and payload Mbit/s over the measured
  window) — bit-deterministic for a given seed, so two snapshots of the
  same code are byte-comparable and CI can gate on them;
* **wall-clock** throughput (simulated ops completed per real second of
  runner CPU) — the number that moves when the hot path gets cheaper,
  even when the simulated result is unchanged (e.g. ring-frame batching
  coalesces wire frames without changing what the virtual network
  delivers per virtual second);
* latency percentiles, wire bytes/op and messages/op from the trace
  counters, and the batching counters.

Usage::

    python -m repro.bench.runner --tag baseline --no-batch   # batch=1
    python -m repro.bench.runner --tag batched               # default knob
    python -m repro.bench.runner --tag pr --check-regression BENCH_batched.json

``--check-regression`` exits non-zero if any scenario's *simulated*
ops/s fell more than 20 % below the baseline snapshot (wall-clock
numbers are machine-dependent and are reported, not gated).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Optional

from repro.analysis.stats import LatencyStats, mbit_per_s
from repro.core.config import ProtocolConfig
from repro.core.sharded import build_elastic_cluster
from repro.fd.heartbeat import HeartbeatConfig
from repro.runtime.sim_net import SimCluster
from repro.sim.counters import (
    CODING_CACHE_READS,
    CODING_FRAGMENT_STORES,
    CODING_RECONSTRUCTIONS,
    LEASE_FALLBACKS,
    LEASE_LOCAL_READS,
    NET_UNICASTS,
    NET_WIRE_BYTES,
    RELIABLE_BATCHED_FRAMES,
    RELIABLE_BATCHED_MESSAGES,
    RELIABLE_RETRANSMITS,
    RING_MESSAGES,
    SHARD_REDIRECTS,
    net_suffix,
    scoped,
)
from repro.workload.generator import LoadDriver
from repro.workload.scenarios import (
    contention_scenario,
    read_only_scenario,
    skewed_block_scenario,
    write_only_scenario,
)

#: Bump when the JSON layout changes incompatibly.
SCHEMA_VERSION = 1

#: Default regression tolerance for --check-regression (fraction lost).
REGRESSION_THRESHOLD = 0.20

#: Value size of the coded-vs-replicated pair: large enough that the
#: value dominates the frame (headers are noise at 64 KiB), so the ring
#: bytes/op ratio between the two backends approaches the analytical
#: (n-1)/(n*k) stripe bound.
LARGE_VALUE_SIZE = 64 * 1024


def large_write_scenario():
    """64 KiB write-only workload for the coded-vs-replicated pair."""
    return write_only_scenario(value_size=LARGE_VALUE_SIZE,
                               writer_concurrency=8)


def _calm_heartbeat(grant_leases: bool = True) -> HeartbeatConfig:
    """A calmer beacon cadence than the chaos default: the bench cluster
    is failure-free, so the detector only needs to renew leases, and n^2
    beacon traffic would otherwise dominate the event count the
    wall-clock numbers measure."""
    return HeartbeatConfig(
        period=0.05,
        timeout=0.3,
        check_interval=0.025,
        propose_grace=0.08,
        lease_duration=0.2,
        clock_drift_bound=0.02,
        grant_leases=grant_leases,
    )


@dataclass(frozen=True)
class Scenario:
    """One fixed measurement point of the snapshot suite."""

    name: str
    spec_factory: Callable
    servers: int
    topology: str = "dual"
    #: Per-scenario seed offset so scenarios never share RNG streams.
    seed_offset: int = 0
    #: Failure detector the cluster runs ("perfect" or "heartbeat").
    fd: str = "perfect"
    #: Epoch-scoped read leases (implies heartbeat + view_quorum): reads
    #: are served locally under a valid lease, zero ring messages.
    read_leases: bool = False
    #: With ``read_leases`` but no grants, every read takes the fence
    #: fallback around the ring — the measured circulating baseline the
    #: leased scenario's win is quoted against.
    grant_leases: bool = True
    #: Value backend ("replicated" or "coded"); "coded" implies
    #: view_quorum and sets coding_n to the ring size.
    value_coding: str = "replicated"
    #: Data fragments per stripe when ``value_coding == "coded"``.
    coding_k: int = 2
    #: Force quorum-installed views even without leases/coding — used so
    #: a replicated comparison scenario differs from its coded twin in
    #: the value backend only.
    view_quorum: bool = False
    #: Stretch warmup and window by this factor.  The 64 KiB pair needs
    #: it: at quick windows a replicated write pipeline completes only
    #: ~64 ops per window while holding 64 in flight, so ramp-up
    #: boundary effects distort bytes/op by ~25%; a 3x window makes the
    #: wire accounting steady-state.
    window_scale: float = 1.0
    #: Per-scenario batch-depth override (None = suite default).  The
    #: 64 KiB pair pins it to 1: batching four value-bearing pre-writes
    #: into a ~256 KiB frame adds store-and-forward latency at every
    #: hop, which is a property of message-count batching at huge value
    #: sizes, not of the value backend this pair measures.  Real stacks
    #: cap batch *bytes*; until the transport does, large-value frames
    #: travel alone.
    batch_max_messages: Optional[int] = None
    #: >0 runs the sharded block store over an explicit placement: the
    #: cluster is built by ``build_elastic_cluster`` and the workload
    #: spec must be a block-mode spec (``spec.num_blocks`` matching).
    num_blocks: int = 0
    #: Disjoint per-ring member tuples of the placement (block mode only).
    rings: tuple = ()
    #: Start every block packed on ring 0 ("capacity added, nothing
    #: moved yet") instead of spread contiguously.
    pack: bool = False
    #: Attach the rebalancer (live migration).  The static twin keeps
    #: the same placement table but never moves a block.
    elastic: bool = False


#: The snapshot suite.  ``fig3b_write_4`` is the headline workload of
#: the batching work (the paper's write-throughput regime: 2 writer
#: machines per server, 4 KiB values, concurrency 16).
SCENARIOS = (
    Scenario("fig3b_write_4", write_only_scenario, servers=4, seed_offset=0),
    Scenario("fig3b_write_8", write_only_scenario, servers=8, seed_offset=1),
    Scenario("fig3a_read_4", read_only_scenario, servers=4, seed_offset=2),
    Scenario("fig3c_mixed_4", contention_scenario, servers=4, seed_offset=3),
    Scenario(
        "fig3d_shared_4", contention_scenario, servers=4,
        topology="shared", seed_offset=4,
    ),
    # The leased-read pair: identical read-heavy workload and detector,
    # differing only in whether leases are granted.  Leased steady state
    # serves every read locally (0 ring messages/op); the no-grant
    # baseline fences every read around the ring — the messages/op
    # collapse and the wall-clock read-throughput multiple between the
    # two is the headline number of the leased read path.
    Scenario(
        "read_leased_16", read_only_scenario, servers=16, seed_offset=5,
        fd="heartbeat", read_leases=True,
    ),
    Scenario(
        "read_circulating_16", read_only_scenario, servers=16, seed_offset=6,
        fd="heartbeat", read_leases=True, grant_leases=False,
    ),
    # The coded-value pair: identical 64 KiB write-only workload,
    # detector and view machinery, differing only in the value backend.
    # Replicated circulates the full value n hops (n * |v| ring bytes
    # per write); coded scatters n-1 fragments of |v|/k and circulates
    # an empty control pre-write (~(n-1)/k * |v|).  At k=2, n=4 the
    # ring bytes/op ratio is ~0.38 — the headline number of the coded
    # backend, gated by test_bench_snapshots.
    Scenario(
        "replicated_large_value", large_write_scenario, servers=4,
        seed_offset=7, fd="heartbeat", view_quorum=True, window_scale=3.0,
        batch_max_messages=1,
    ),
    Scenario(
        "coded_large_value", large_write_scenario, servers=4,
        seed_offset=8, fd="heartbeat", value_coding="coded", coding_k=2,
        window_scale=3.0, batch_max_messages=1,
    ),
    # The elastic-placement pair: identical Zipf(1.1) hot/cold workload
    # over 8 blocks, all packed on ring 0 of an 8-server / 4-ring
    # cluster ("capacity added, nothing moved yet").  The static twin
    # leaves them there — two servers serve ~everything while six idle;
    # the elastic twin attaches the rebalancer, which migrates and
    # splits the hot blocks across the idle rings during warmup.  The
    # simulated ops/s multiple between the two is the headline number
    # of elastic sharding (ROADMAP item 3), pinned by
    # test_bench_snapshots.
    Scenario(
        "skewed_static", skewed_block_scenario, servers=8, seed_offset=9,
        num_blocks=8, rings=((0, 1), (2, 3), (4, 5), (6, 7)), pack=True,
    ),
    Scenario(
        "skewed_elastic", skewed_block_scenario, servers=8, seed_offset=10,
        num_blocks=8, rings=((0, 1), (2, 3), (4, 5), (6, 7)), pack=True,
        elastic=True,
    ),
)


def _windows(quick: bool) -> tuple[float, float]:
    # Mirrors repro.bench.experiments._windows so snapshot numbers are
    # directly comparable to the figure tables.
    return (0.15, 0.3) if quick else (0.3, 1.0)


def _kind_record(stats, window: float) -> dict:
    latency = LatencyStats.from_samples(stats.latencies)
    return {
        "ops": stats.operations,
        "sim_ops_per_s": stats.operations / window,
        "mbps": mbit_per_s(stats.payload_bytes, window),
        "p50_ms": latency.p50 * 1e3 if latency.count else None,
        "p95_ms": latency.p95 * 1e3 if latency.count else None,
        "p99_ms": latency.p99 * 1e3 if latency.count else None,
    }


def run_scenario(
    scenario: Scenario,
    seed: int,
    quick: bool,
    protocol: Optional[ProtocolConfig] = None,
) -> dict:
    """Measure one scenario; returns its JSON-ready record.

    The trace counters are zeroed at the start of the measurement
    window, so the wire accounting (bytes/op, messages/op, batched
    frames) covers exactly the window the throughput numbers do.
    """
    warmup, window = _windows(quick)
    warmup *= scenario.window_scale
    window *= scenario.window_scale
    spec = scenario.spec_factory()
    build_kwargs = {}
    if scenario.read_leases:
        protocol = replace(
            protocol or ProtocolConfig(), view_quorum=True, read_leases=True
        )
        build_kwargs["heartbeat"] = _calm_heartbeat(scenario.grant_leases)
    if scenario.view_quorum:
        protocol = replace(protocol or ProtocolConfig(), view_quorum=True)
    if scenario.value_coding == "coded":
        protocol = replace(
            protocol or ProtocolConfig(),
            view_quorum=True,
            value_coding="coded",
            coding_k=scenario.coding_k,
            coding_n=scenario.servers,
        )
    if scenario.batch_max_messages is not None:
        protocol = replace(
            protocol or ProtocolConfig(),
            batch_max_messages=scenario.batch_max_messages,
        )
    if scenario.fd != "perfect":
        build_kwargs["fd"] = scenario.fd
        build_kwargs.setdefault("heartbeat", _calm_heartbeat())
    if scenario.num_blocks:
        # Rebalance on a tight cadence so the elastic twin converges
        # within the warmup and the measured window sees the *settled*
        # spread placement, not the transient.
        cluster = build_elastic_cluster(
            scenario.servers,
            scenario.num_blocks,
            list(scenario.rings),
            seed=seed + scenario.seed_offset,
            pack=scenario.pack,
            rebalance=scenario.elastic,
            rebalance_interval=0.02,
            topology=scenario.topology,
            protocol=protocol,
            initial_value=b"\xa5" * spec.value_size,
            **build_kwargs,
        )
    else:
        cluster = SimCluster.build(
            num_servers=scenario.servers,
            topology=scenario.topology,
            seed=seed + scenario.seed_offset,
            protocol=protocol,
            initial_value=b"\xa5" * spec.value_size,
            **build_kwargs,
        )
    driver = LoadDriver(cluster, spec, seed=seed + scenario.seed_offset)
    wall_start = time.perf_counter()
    driver.start()
    cluster.run(until=cluster.now + warmup)
    cluster.env.trace.reset_counters()
    driver.begin_measurement()
    cluster.run(until=cluster.now + window)
    driver.end_measurement()
    driver.stop()
    wall_seconds = time.perf_counter() - wall_start

    counters = cluster.env.trace.counters
    wire_bytes = sum(
        amount for name, amount in counters.items() if name.endswith(net_suffix(NET_WIRE_BYTES))
    )
    unicasts = sum(
        amount for name, amount in counters.items() if name.endswith(net_suffix(NET_UNICASTS))
    )
    # Server-to-server traffic alone ("srv" is the dedicated ring net of
    # the dual topology; on the shared net it cannot be separated).  This
    # is where the coded backend's (n-1)/(n*k) stripe saving shows up —
    # total bytes/op includes the client-side value transfer, which no
    # coding scheme can shrink.
    ring_wire_bytes = (
        counters.get(scoped("srv", NET_WIRE_BYTES), 0)
        if scenario.topology == "dual"
        else None
    )
    reads = driver.stats["read"]
    writes = driver.stats["write"]
    ops = reads.operations + writes.operations
    return {
        "name": scenario.name,
        "servers": scenario.servers,
        "topology": scenario.topology,
        "seed": seed + scenario.seed_offset,
        "warmup_s": warmup,
        "window_s": window,
        "read": _kind_record(reads, window),
        "write": _kind_record(writes, window),
        "wall_seconds": round(wall_seconds, 4),
        "wall_ops_per_s": round(ops / wall_seconds, 1) if wall_seconds > 0 else None,
        "wire": {
            "bytes_per_op": round(wire_bytes / ops, 1) if ops else None,
            "ring_bytes_per_op": (
                round(ring_wire_bytes / ops, 1)
                if ops and ring_wire_bytes is not None
                else None
            ),
            "messages_per_op": round(unicasts / ops, 2) if ops else None,
            "ring_messages_per_op": (
                round(counters.get(RING_MESSAGES, 0) / ops, 2) if ops else None
            ),
            "batched_frames": counters.get(RELIABLE_BATCHED_FRAMES, 0),
            "batched_messages": counters.get(RELIABLE_BATCHED_MESSAGES, 0),
            "retransmits": counters.get(RELIABLE_RETRANSMITS, 0),
        },
        "leases": (
            {
                "local_reads": counters.get(LEASE_LOCAL_READS, 0),
                "fallbacks": counters.get(LEASE_FALLBACKS, 0),
            }
            if scenario.read_leases
            else None
        ),
        "coding": (
            {
                "fragment_stores": counters.get(CODING_FRAGMENT_STORES, 0),
                "cache_reads": counters.get(CODING_CACHE_READS, 0),
                "reconstructions": counters.get(CODING_RECONSTRUCTIONS, 0),
            }
            if scenario.value_coding == "coded"
            else None
        ),
        "sharding": (
            {
                "num_blocks": scenario.num_blocks,
                "rings": len(scenario.rings),
                "elastic": scenario.elastic,
                # Cumulative over the whole run (rebalancer tallies and
                # the table version survive the counter reset), so they
                # capture the warmup migrations the window benefits from.
                "placement_version": cluster.placement.version,
                "migrations_completed": (
                    cluster.rebalancer.completed if cluster.rebalancer else 0
                ),
                "migrations_aborted": (
                    cluster.rebalancer.aborted if cluster.rebalancer else 0
                ),
                "splits": (
                    cluster.rebalancer.splits if cluster.rebalancer else 0
                ),
                "redirects": counters.get(SHARD_REDIRECTS, 0),
            }
            if scenario.num_blocks
            else None
        ),
    }


def run_suite(
    tag: str,
    seed: int = 7,
    quick: bool = True,
    batch_max_messages: Optional[int] = None,
) -> dict:
    """Run every scenario and assemble the snapshot document."""
    protocol = (
        None
        if batch_max_messages is None
        else ProtocolConfig(batch_max_messages=batch_max_messages)
    )
    effective = (protocol or ProtocolConfig()).batch_max_messages
    scenarios = [
        run_scenario(scenario, seed, quick, protocol) for scenario in SCENARIOS
    ]
    return {
        "schema": SCHEMA_VERSION,
        "tag": tag,
        "quick": quick,
        "base_seed": seed,
        "batch_max_messages": effective,
        "python": platform.python_version(),
        "scenarios": scenarios,
    }


# ----------------------------------------------------------------------
# Regression gate
# ----------------------------------------------------------------------


def check_regression(
    current: dict, baseline: dict, threshold: float = REGRESSION_THRESHOLD
) -> list[str]:
    """Compare simulated ops/s per scenario and kind; return failures.

    Only scenarios present in both snapshots are compared, and only op
    kinds the baseline actually measured (ops > 0).  Wall-clock numbers
    are never gated — they move with the host machine.  A scenario the
    baseline does not know is announced (``skipped: ...``), never
    silently ignored: an unannounced skip is how a renamed scenario
    slips past the gate ungated.
    """
    failures: list[str] = []
    baseline_by_name = {s["name"]: s for s in baseline.get("scenarios", ())}
    for scenario in current.get("scenarios", ()):
        base = baseline_by_name.get(scenario["name"])
        if base is None:
            print(f"skipped: {scenario['name']} (not in baseline)")
            continue
        for kind in ("read", "write"):
            base_rate = base[kind]["sim_ops_per_s"]
            if not base_rate:
                continue
            rate = scenario[kind]["sim_ops_per_s"]
            ratio = rate / base_rate
            if ratio < 1.0 - threshold:
                failures.append(
                    f"{scenario['name']}/{kind}: {rate:.1f} sim ops/s is "
                    f"{(1.0 - ratio) * 100:.1f}% below baseline {base_rate:.1f} "
                    f"(tolerance {threshold * 100:.0f}%)"
                )
    return failures


def _summarise(snapshot: dict) -> str:
    lines = [
        f"tag={snapshot['tag']} quick={snapshot['quick']} "
        f"batch_max_messages={snapshot['batch_max_messages']} "
        f"base_seed={snapshot['base_seed']}"
    ]
    for s in snapshot["scenarios"]:
        parts = [f"  {s['name']:>14}:"]
        for kind in ("read", "write"):
            if s[kind]["ops"]:
                parts.append(
                    f"{kind} {s[kind]['sim_ops_per_s']:.0f} ops/s "
                    f"({s[kind]['mbps']:.1f} Mbit/s)"
                )
        parts.append(f"wall {s['wall_ops_per_s']:.0f} ops/s")
        if s["wire"]["batched_frames"]:
            parts.append(
                f"batched {s['wire']['batched_messages']}m/"
                f"{s['wire']['batched_frames']}f"
            )
        if s.get("leases"):
            parts.append(
                f"ring/op {s['wire']['ring_messages_per_op']}  "
                f"lease {s['leases']['local_reads']}lo/"
                f"{s['leases']['fallbacks']}fb"
            )
        if s.get("coding"):
            parts.append(
                f"ring B/op {s['wire']['ring_bytes_per_op']}  "
                f"frags {s['coding']['fragment_stores']}"
            )
        if s.get("sharding"):
            sh = s["sharding"]
            parts.append(
                f"mig {sh['migrations_completed']}c/"
                f"{sh['migrations_aborted']}a/{sh['splits']}s "
                f"pv{sh['placement_version']}"
            )
        lines.append("  ".join(parts))
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.runner",
        description="seeded perf snapshots (BENCH_<tag>.json) with a "
                    "regression gate",
    )
    parser.add_argument("--tag", default="local",
                        help="snapshot tag; output file is BENCH_<tag>.json")
    parser.add_argument("--seed", type=int, default=7,
                        help="base seed; each scenario derives its own "
                             "(default 7, the committed snapshots' seed)")
    parser.add_argument("--full", action="store_true",
                        help="full windows (0.3s warmup / 1.0s window) "
                             "instead of the quick CI windows")
    parser.add_argument("--no-batch", action="store_true",
                        help="run with batch_max_messages=1 (the unbatched "
                             "wire path; used for the committed baseline)")
    parser.add_argument("--batch", type=int, default=None, metavar="K",
                        help="override batch_max_messages explicitly")
    parser.add_argument("--out", default=".",
                        help="directory for BENCH_<tag>.json (default: cwd)")
    parser.add_argument("--check-regression", metavar="BASELINE",
                        help="compare against a committed snapshot; exit "
                             "non-zero on >20%% simulated ops/s regression")
    parser.add_argument("--threshold", type=float, default=REGRESSION_THRESHOLD,
                        help="regression tolerance as a fraction "
                             "(default 0.20)")
    args = parser.parse_args(argv)

    if args.no_batch and args.batch is not None:
        parser.error("--no-batch and --batch are mutually exclusive")
    batch = 1 if args.no_batch else args.batch
    if batch is not None and batch < 1:
        parser.error(f"--batch must be >= 1, got {batch}")

    snapshot = run_suite(
        args.tag, seed=args.seed, quick=not args.full, batch_max_messages=batch
    )
    print(_summarise(snapshot))

    out_path = Path(args.out) / f"BENCH_{args.tag}.json"
    out_path.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"wrote {out_path}")

    if args.check_regression:
        baseline = json.loads(Path(args.check_regression).read_text())
        if baseline.get("quick") != snapshot["quick"]:
            print(f"FAIL: window mismatch — baseline quick="
                  f"{baseline.get('quick')} vs current quick={snapshot['quick']}")
            return 1
        failures = check_regression(snapshot, baseline, args.threshold)
        if failures:
            print("FAIL: simulated throughput regressed:")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print(f"regression gate: ok vs {args.check_regression}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
