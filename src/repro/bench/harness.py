"""Experiment runner: one measured point per call.

``run_throughput_point`` reproduces the paper's measurement methodology:
build the cluster, start the closed-loop load, let it warm up, measure
over a window, and report total read/write throughput in Mbit/s (the
paper's unit: payload bits delivered to/accepted from clients per
second).  ``run_latency_point`` measures isolated (unloaded) operation
latency for Figure 4.

The paper averages over at least three runs; ``repeat_throughput_point``
does the same with distinct seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.stats import LatencyStats, mbit_per_s
from repro.core.config import ProtocolConfig
from repro.runtime.sim_net import SimCluster
from repro.workload.generator import LoadDriver, WorkloadSpec


@dataclass(frozen=True)
class ThroughputPoint:
    """One measured (num_servers, workload) data point."""

    num_servers: int
    topology: str
    read_ops: int
    write_ops: int
    read_mbps: float
    write_mbps: float
    read_latency: LatencyStats
    write_latency: LatencyStats
    window: float

    @property
    def total_mbps(self) -> float:
        return self.read_mbps + self.write_mbps

    @property
    def read_mbps_per_server(self) -> float:
        return self.read_mbps / self.num_servers


def run_throughput_point(
    num_servers: int,
    spec: WorkloadSpec,
    topology: str = "dual",
    seed: int = 0,
    warmup: float = 0.25,
    window: float = 1.0,
    protocol: Optional[ProtocolConfig] = None,
) -> ThroughputPoint:
    """Measure saturated throughput for one cluster size.

    The register starts pre-populated with a value of the workload's
    size, so read replies carry full payloads from the first request.
    """
    cluster = SimCluster.build(
        num_servers=num_servers,
        topology=topology,
        seed=seed,
        protocol=protocol,
        initial_value=b"\xa5" * spec.value_size,
    )
    return measure_cluster(cluster, spec, warmup=warmup, window=window)


def run_baseline_throughput_point(
    build_cluster,
    num_servers: int,
    spec: WorkloadSpec,
    topology: str = "dual",
    seed: int = 0,
    warmup: float = 0.25,
    window: float = 1.0,
    **cluster_kwargs,
) -> ThroughputPoint:
    """Like :func:`run_throughput_point` but for a baseline cluster
    factory (e.g. :func:`repro.baselines.build_abd_cluster`)."""
    cluster = build_cluster(
        num_servers,
        topology=topology,
        seed=seed,
        initial_value=b"\xa5" * spec.value_size,
        **cluster_kwargs,
    )
    return measure_cluster(cluster, spec, warmup=warmup, window=window)


def measure_cluster(
    cluster, spec: WorkloadSpec, warmup: float, window: float
) -> ThroughputPoint:
    """Apply the closed-loop workload to ``cluster`` and measure one
    warm-started window."""
    driver = LoadDriver(cluster, spec)
    driver.start()
    cluster.run(until=cluster.now + warmup)
    driver.begin_measurement()
    cluster.run(until=cluster.now + window)
    driver.end_measurement()
    driver.stop()

    reads = driver.stats["read"]
    writes = driver.stats["write"]
    return ThroughputPoint(
        num_servers=cluster.config.num_servers,
        topology=cluster.config.topology,
        read_ops=reads.operations,
        write_ops=writes.operations,
        read_mbps=mbit_per_s(reads.payload_bytes, window),
        write_mbps=mbit_per_s(writes.payload_bytes, window),
        read_latency=LatencyStats.from_samples(reads.latencies),
        write_latency=LatencyStats.from_samples(writes.latencies),
        window=window,
    )


def repeat_throughput_point(
    num_servers: int,
    spec: WorkloadSpec,
    runs: int = 3,
    **kwargs,
) -> ThroughputPoint:
    """Average ``runs`` measurements with distinct seeds (paper: "every
    measurement has been performed at least 3 times and the average ...
    recorded")."""
    points = [
        run_throughput_point(num_servers, spec, seed=run, **kwargs)
        for run in range(runs)
    ]
    first = points[0]
    read_lat = LatencyStats.from_samples(
        [p.read_latency.mean for p in points if p.read_ops]
    )
    write_lat = LatencyStats.from_samples(
        [p.write_latency.mean for p in points if p.write_ops]
    )
    return ThroughputPoint(
        num_servers=num_servers,
        topology=first.topology,
        read_ops=sum(p.read_ops for p in points) // runs,
        write_ops=sum(p.write_ops for p in points) // runs,
        read_mbps=sum(p.read_mbps for p in points) / runs,
        write_mbps=sum(p.write_mbps for p in points) / runs,
        read_latency=read_lat,
        write_latency=write_lat,
        window=first.window,
    )


@dataclass(frozen=True)
class LatencyPoint:
    """Isolated-operation latency for one cluster size (Figure 4)."""

    num_servers: int
    read_ms: float
    write_ms: float


def run_latency_point(
    num_servers: int,
    value_size: int = 4096,
    samples: int = 20,
    topology: str = "dual",
    seed: int = 0,
    protocol: Optional[ProtocolConfig] = None,
) -> LatencyPoint:
    """Measure unloaded read/write latency (one client, one op at a time)."""
    cluster = SimCluster.build(
        num_servers=num_servers, topology=topology, seed=seed, protocol=protocol
    )
    host = cluster.add_client(home_server=0)
    read_samples: list[float] = []
    write_samples: list[float] = []

    def run_one(kind: str, sink: list[float], seq: int) -> None:
        done: list = []
        started = cluster.now
        if kind == "read":
            host.read(done.append)
        else:
            value = seq.to_bytes(8, "big") + b"\x00" * (value_size - 8)
            host.write(value, done.append)
        cluster.run_until(lambda: bool(done))
        sink.append(cluster.now - started)

    for i in range(samples):
        run_one("write", write_samples, i)
        run_one("read", read_samples, i)

    return LatencyPoint(
        num_servers=num_servers,
        read_ms=1e3 * sum(read_samples) / len(read_samples),
        write_ms=1e3 * sum(write_samples) / len(write_samples),
    )
