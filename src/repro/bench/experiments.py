"""Experiment registry: one entry per paper artifact.

Each ``run_*`` function regenerates the data series behind one figure or
analytical claim of the paper and returns ``(headers, rows)`` ready for
:func:`repro.bench.report.render_table`.  The benchmark suite under
``benchmarks/`` wraps these with timing and shape assertions; the
functions themselves are also directly usable::

    from repro.bench.experiments import run_fig3a
    headers, rows = run_fig3a(servers=(2, 4, 6, 8))

``quick`` mode (shorter warmup/window) is used by the test-suite; the
defaults match the committed EXPERIMENTS.md numbers.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines import (
    build_abd_cluster,
    build_chain_cluster,
    build_naive_cluster,
    build_tob_cluster,
)
from repro.bench.harness import (
    run_baseline_throughput_point,
    run_latency_point,
    run_throughput_point,
)
from repro.core.config import ProtocolConfig
from repro.rounds import RoundStorage, run_figure1
from repro.rounds.tob_round import RoundTobStorage
from repro.workload.scenarios import (
    contention_scenario,
    read_only_scenario,
    write_only_scenario,
)

DEFAULT_SERVERS = (2, 3, 4, 5, 6, 7, 8)


def _windows(quick: bool) -> tuple[float, float]:
    return (0.15, 0.3) if quick else (0.3, 1.0)


# ----------------------------------------------------------------------
# FIG1 — motivation: quorum vs local reads in the round model
# ----------------------------------------------------------------------


def run_fig1(servers: Sequence[int] = (3, 5, 8), rounds: int = 150):
    """Figure 1: same latency, 3x (then n x) read throughput."""
    headers = ["servers", "A tput/round", "B tput/round", "A latency", "B latency"]
    rows = []
    for n in servers:
        a = run_figure1("A", num_servers=n, rounds=rounds)
        b = run_figure1("B", num_servers=n, rounds=rounds)
        rows.append([n, a.throughput_per_round, b.throughput_per_round,
                     a.first_latency, b.first_latency])
    return headers, rows


# ----------------------------------------------------------------------
# SEC4 — the analytical claims, executed
# ----------------------------------------------------------------------


def run_sec4(servers: Sequence[int] = (2, 3, 5, 8), rounds: int = 200):
    """Section 4: latency 2 / 2N+2; throughput 1 / n (also contended)."""
    headers = [
        "servers", "read lat", "write lat", "2N+2",
        "write tput", "read tput", "read tput contended",
    ]
    rows = []
    for n in servers:
        rows.append([
            n,
            RoundStorage(n).isolated_read_latency(),
            RoundStorage(n).isolated_write_latency(),
            2 * n + 2,
            RoundStorage(n).saturated_write_throughput(rounds),
            RoundStorage(n).saturated_read_throughput(rounds),
            RoundStorage(n).saturated_read_throughput(rounds, with_writes=True),
        ])
    return headers, rows


# ----------------------------------------------------------------------
# FIG3 — the four throughput charts
# ----------------------------------------------------------------------


def run_fig3a(servers: Sequence[int] = DEFAULT_SERVERS, quick: bool = False, seed: int = 0):
    """Read throughput without contention: linear, ~90 Mbit/s/server."""
    warmup, window = _windows(quick)
    headers = ["servers", "total read Mbit/s", "per server"]
    rows = []
    for n in servers:
        p = run_throughput_point(n, read_only_scenario(), warmup=warmup, window=window, seed=seed)
        rows.append([n, p.read_mbps, p.read_mbps_per_server])
    return headers, rows


def run_fig3b(servers: Sequence[int] = DEFAULT_SERVERS, quick: bool = False, seed: int = 0):
    """Write throughput without contention: constant ~80-95 Mbit/s."""
    warmup, window = _windows(quick)
    headers = ["servers", "total write Mbit/s", "per writer machine"]
    rows = []
    for n in servers:
        p = run_throughput_point(n, write_only_scenario(), warmup=warmup, window=window, seed=seed)
        rows.append([n, p.write_mbps, p.write_mbps / (2 * n)])
    return headers, rows


def run_fig3c(servers: Sequence[int] = DEFAULT_SERVERS, quick: bool = False, seed: int = 0):
    """Contention, separate networks: write constant, read linear."""
    warmup, window = _windows(quick)
    headers = ["servers", "read Mbit/s", "read/server", "write Mbit/s"]
    rows = []
    for n in servers:
        p = run_throughput_point(n, contention_scenario(), warmup=warmup, window=window, seed=seed)
        rows.append([n, p.read_mbps, p.read_mbps_per_server, p.write_mbps])
    return headers, rows


def run_fig3d(servers: Sequence[int] = DEFAULT_SERVERS, quick: bool = False, seed: int = 0):
    """Contention, shared network: both lower; write roughly constant."""
    warmup, window = _windows(quick)
    headers = ["servers", "read Mbit/s", "read/server", "write Mbit/s", "per-NIC total"]
    rows = []
    for n in servers:
        p = run_throughput_point(
            n, contention_scenario(), topology="shared",
            warmup=warmup, window=window, seed=seed,
        )
        rows.append(
            [n, p.read_mbps, p.read_mbps_per_server, p.write_mbps,
             p.read_mbps_per_server + p.write_mbps]
        )
    return headers, rows


# ----------------------------------------------------------------------
# FIG4 — latency vs number of servers
# ----------------------------------------------------------------------


def run_fig4(servers: Sequence[int] = DEFAULT_SERVERS, samples: int = 10, seed: int = 0):
    """Write latency linear in n (two ring traversals); read constant."""
    headers = ["servers", "read ms", "write ms"]
    rows = []
    for n in servers:
        p = run_latency_point(n, samples=samples, seed=seed)
        rows.append([n, p.read_ms, p.write_ms])
    return headers, rows


# ----------------------------------------------------------------------
# Ablations
# ----------------------------------------------------------------------


def run_ablation_quorum(servers: Sequence[int] = (2, 4, 8), quick: bool = True, seed: int = 0):
    """ABL1: ring vs ABD quorum — read scaling and write behaviour."""
    warmup, window = _windows(quick)
    ro, wo = read_only_scenario(), write_only_scenario()
    headers = ["servers", "ring read", "abd read", "ring write", "abd write"]
    rows = []
    for n in servers:
        ring_r = run_throughput_point(n, ro, warmup=warmup, window=window, seed=seed)
        abd_r = run_baseline_throughput_point(build_abd_cluster, n, ro, warmup=warmup, window=window, seed=seed)
        ring_w = run_throughput_point(n, wo, warmup=warmup, window=window, seed=seed)
        abd_w = run_baseline_throughput_point(build_abd_cluster, n, wo, warmup=warmup, window=window, seed=seed)
        rows.append([n, ring_r.read_mbps, abd_r.read_mbps, ring_w.write_mbps, abd_w.write_mbps])
    return headers, rows


def run_ablation_chain(servers: Sequence[int] = (2, 4, 8), quick: bool = True, seed: int = 0):
    """ABL2: chain replication reads are tail-bound (flat)."""
    warmup, window = _windows(quick)
    ro = read_only_scenario()
    headers = ["servers", "ring read", "chain read"]
    rows = []
    for n in servers:
        ring = run_throughput_point(n, ro, warmup=warmup, window=window, seed=seed)
        chain = run_baseline_throughput_point(build_chain_cluster, n, ro, warmup=warmup, window=window, seed=seed)
        rows.append([n, ring.read_mbps, chain.read_mbps])
    return headers, rows


def run_ablation_tob(servers: Sequence[int] = (2, 4, 8), quick: bool = True):
    """ABL3: totally ordering reads caps round-model throughput at 1."""
    headers = ["servers", "tob ops/round", "ours write + reads /round"]
    rows = []
    for n in servers:
        tob = RoundTobStorage(n).saturated_throughput()
        ours_w = RoundStorage(n).saturated_write_throughput(150)
        ours_r = RoundStorage(n).saturated_read_throughput(150, with_writes=True)
        rows.append([n, tob, ours_w + ours_r])
    return headers, rows


def run_ablation_fairness(num_servers: int = 4, quick: bool = True, seed: int = 0):
    """ABL4: fairness and piggybacking switches.

    * ``fair_forwarding=False`` lets servers prefer their own clients'
      writes; under saturation the per-client completion spread widens
      (some clients starve).
    * ``piggyback_commits=False`` makes every commit a standalone
      message, costing ring slots.
    """
    warmup, window = _windows(quick)
    spec = write_only_scenario()
    headers = ["config", "write Mbit/s", "p99/med latency"]
    rows = []
    for label, config in [
        ("default", ProtocolConfig()),
        ("no fairness", ProtocolConfig(fair_forwarding=False)),
        ("no piggyback", ProtocolConfig(piggyback_commits=False)),
    ]:
        p = run_throughput_point(
            num_servers, spec, warmup=warmup, window=window, protocol=config,
            seed=seed,
        )
        spread = (
            p.write_latency.p99 / p.write_latency.p50
            if p.write_latency.count else float("nan")
        )
        rows.append([label, p.write_mbps, spread])
    return headers, rows


def run_ablation_collisions(servers: Sequence[int] = (2, 4, 8), quick: bool = True, seed: int = 0):
    """ABL5: multicast write-all collapses under collisions; ring doesn't."""
    warmup, window = _windows(quick)
    wo = write_only_scenario()
    headers = ["servers", "ring write", "naive unicast", "naive multicast"]
    rows = []
    for n in servers:
        ring = run_throughput_point(n, wo, warmup=warmup, window=window, seed=seed)
        uni = run_baseline_throughput_point(build_naive_cluster, n, wo, warmup=warmup, window=window, seed=seed)
        mc = run_baseline_throughput_point(
            build_naive_cluster, n, wo, warmup=warmup, window=window,
            use_multicast=True, seed=seed,
        )
        rows.append([n, ring.write_mbps, uni.write_mbps, mc.write_mbps])
    return headers, rows


def run_ablation_tob_wire(servers: Sequence[int] = (2, 4, 8), quick: bool = True, seed: int = 0):
    """Companion to ABL3 in the wire model: small read tokens let TOB
    reads scale further than the round model suggests — an honest note
    recorded in EXPERIMENTS.md."""
    warmup, window = _windows(quick)
    ro = read_only_scenario()
    headers = ["servers", "ours read", "tob read (wire model)"]
    rows = []
    for n in servers:
        ours = run_throughput_point(n, ro, warmup=warmup, window=window, seed=seed)
        tob = run_baseline_throughput_point(build_tob_cluster, n, ro, warmup=warmup, window=window, seed=seed)
        rows.append([n, ours.read_mbps, tob.read_mbps])
    return headers, rows


#: Registry used by ``python -m repro.bench`` and EXPERIMENTS.md.
EXPERIMENTS = {
    "fig1": run_fig1,
    "sec4": run_sec4,
    "fig3a": run_fig3a,
    "fig3b": run_fig3b,
    "fig3c": run_fig3c,
    "fig3d": run_fig3d,
    "fig4": run_fig4,
    "abl1-quorum": run_ablation_quorum,
    "abl2-chain": run_ablation_chain,
    "abl3-tob": run_ablation_tob,
    "abl3-tob-wire": run_ablation_tob_wire,
    "abl4-fairness": run_ablation_fairness,
    "abl5-collisions": run_ablation_collisions,
}
