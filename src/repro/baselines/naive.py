"""Naive read-one / write-all register — what the paper warns against.

Two deliberate flaws, each demonstrating one of the paper's design
arguments:

1. **No pre-write phase.**  A write installs locally and pushes the
   value to every other server; reads answer from the local copy
   immediately.  This suffers the *read-inversion* anomaly of the
   paper's Section 3: while a write is propagating, a reader at an
   updated server returns the new value, after which a reader at a
   not-yet-updated server returns the old one — a linearizability
   violation that the test-suite demonstrates with the checkers.

2. **Optional ethernet multicast dissemination.**  With
   ``use_multicast=True``, writes are broadcast in one frame.  Under
   concurrent writers, frames collide and back off exponentially
   (Section 1: "if write messages are simply broadcast to all servers
   ... collisions occur at the network layer; a retransmission is thus
   necessary, in turn causing even more collisions"), collapsing write
   throughput — the ablation benchmark measures it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.messages import (
    BASE_WIRE_BYTES,
    OP_ID_WIRE_BYTES,
    TAG_WIRE_BYTES,
    ClientRead,
    ClientWrite,
    OpId,
    ReadAck,
    WriteAck,
)
from repro.core.tags import Tag
from repro.baselines.runtime import MulticastPeers, PeerSend, build_baseline_cluster
from repro.runtime.interface import Reply


@dataclass(frozen=True)
class Push:
    """Value propagation: adopt (tag, value) if newer, then ack."""

    key: tuple[int, int]
    tag: Tag
    value: bytes

    def payload_bytes(self) -> int:
        return BASE_WIRE_BYTES + OP_ID_WIRE_BYTES + TAG_WIRE_BYTES + len(self.value)


@dataclass(frozen=True)
class PushAck:
    key: tuple[int, int]
    src: int

    def payload_bytes(self) -> int:
        return BASE_WIRE_BYTES + OP_ID_WIRE_BYTES + 4


@dataclass
class _WriteState:
    client: int
    op: OpId
    tag: Tag
    acks_needed: int


class NaiveServer:
    """Read-one/write-all without the pre-write phase (sans-I/O)."""

    def __init__(
        self,
        server_id: int,
        num_servers: int,
        initial_value: bytes = b"",
        use_multicast: bool = False,
    ):
        self.server_id = server_id
        self.num_servers = num_servers
        self.use_multicast = use_multicast
        self.tag = Tag.ZERO
        self.value = initial_value
        self._seq = 0
        self._writes: dict[tuple[int, int], _WriteState] = {}

    def on_client_message(self, client: int, message) -> list:
        if isinstance(message, ClientRead):
            # Read-one: immediate local read (this is the flaw).
            return [Reply(client, ReadAck(message.op, self.value, self.tag))]
        if not isinstance(message, ClientWrite):
            raise TypeError(f"unexpected client message {message!r}")
        self._seq += 1
        key = (self.server_id, self._seq)
        tag = Tag(max(self.tag.ts, self._seq) + 1, self.server_id)
        self._seq = tag.ts
        self._install(tag, message.value)
        if self.num_servers == 1:
            return [Reply(client, WriteAck(message.op, tag))]
        self._writes[key] = _WriteState(
            client, message.op, tag, acks_needed=self.num_servers - 1
        )
        push = Push(key, tag, message.value)
        if self.use_multicast:
            return [MulticastPeers(push)]
        return [
            PeerSend(other, push)
            for other in range(self.num_servers)
            if other != self.server_id
        ]

    def on_server_message(self, src: int, message) -> list:
        if isinstance(message, Push):
            self._install(message.tag, message.value)
            return [PeerSend(src, PushAck(message.key, self.server_id))]
        if isinstance(message, PushAck):
            state = self._writes.get(message.key)
            if state is None:
                return []
            state.acks_needed -= 1
            if state.acks_needed == 0:
                del self._writes[message.key]
                return [Reply(state.client, WriteAck(state.op, state.tag))]
            return []
        raise TypeError(f"unexpected server message {message!r}")

    def on_server_crash(self, crashed: int) -> list:
        return []  # failure-free demonstration baseline

    def _install(self, tag: Tag, value: bytes) -> None:
        if tag > self.tag:
            self.tag = tag
            self.value = value


def build_naive_cluster(num_servers: int, use_multicast: bool = False, **kwargs):
    """A simulated cluster whose servers run the naive register."""

    def factory(server_id: int, total: int, initial_value: bytes) -> NaiveServer:
        return NaiveServer(server_id, total, initial_value, use_multicast=use_multicast)

    return build_baseline_cluster(factory, num_servers, **kwargs)
