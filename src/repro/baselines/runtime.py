"""Shared runtime for baseline protocols on the simulated cluster.

A baseline server is a sans-I/O object with three inputs —
``on_client_message(client, msg)``, ``on_server_message(src, msg)``,
``on_server_crash(crashed)`` — each returning a list of effects:
:class:`~repro.runtime.interface.Reply` (to a client),
:class:`PeerSend` (unicast to another server) or :class:`MulticastPeers`
(ethernet multicast to all other servers, collision-prone).

:class:`BaselineServerHost` executes those effects with the same NIC
accounting as the core algorithm's host: one transmit at a time per NIC,
per-client-machine reply fairness, and dual/shared topology support.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.runtime.interface import Reply
from repro.runtime.sim_net import HostBase, OutLoop, SimCluster


@dataclass(frozen=True)
class PeerSend:
    """Unicast ``message`` to server ``dst`` over the server network."""

    dst: int
    message: Any


@dataclass(frozen=True)
class MulticastPeers:
    """Ethernet-multicast ``message`` to every other alive server."""

    message: Any


class BaselineServerHost(HostBase):
    """Hosts one baseline server protocol on the simulated network."""

    def __init__(self, cluster: SimCluster, server_id: int, proto):
        super().__init__(cluster, f"s{server_id}")
        self.server_id = server_id
        self.proto = proto
        self.peer_queue: deque[tuple[str, Any]] = deque()
        self._reply_queues: dict[str, deque[Reply]] = {}
        self._reply_rr: deque[str] = deque()

        nics = cluster.topo.nics[self.name]
        if cluster.config.topology == "dual":
            self.nic_ring = nics["srv"]
            self.nic_client = nics["cli"]
            self._loops.append(OutLoop(self, self.nic_ring, [self._peer_source]))
            self._loops.append(OutLoop(self, self.nic_client, [self._reply_source]))
        else:
            nic = nics["lan"]
            self.nic_ring = nic
            self.nic_client = nic
            self._loops.append(OutLoop(self, nic, [self._peer_source, self._reply_source]))

    # -- inbound ---------------------------------------------------------

    def receive_client(self, client_id: int, message) -> None:
        if not self.alive:
            return
        self._post(self.proto.on_client_message(client_id, message))

    def receive_server(self, src: int, message) -> None:
        if not self.alive:
            return
        self._post(self.proto.on_server_message(src, message))

    def receive_ring(self, message, sender=None) -> None:  # pragma: no cover - unused
        raise NotImplementedError("baseline hosts use receive_server")

    def notify_crash(self, crashed_id: int) -> None:
        if not self.alive:
            return
        handler = getattr(self.proto, "on_server_crash", None)
        if handler is not None:
            self._post(handler(crashed_id))

    # -- outbound --------------------------------------------------------

    def _peer_source(self):
        if not self.peer_queue:
            return None
        return (*self.peer_queue.popleft(), "srv")

    def _reply_source(self):
        while self._reply_rr:
            machine = self._reply_rr[0]
            queue = self._reply_queues.get(machine)
            if not queue:
                self._reply_rr.popleft()
                continue
            reply = queue.popleft()
            if queue:
                self._reply_rr.rotate(-1)
            else:
                self._reply_rr.popleft()
            return (machine, reply.message, "reply")
        return None

    def _post(self, effects) -> None:
        for effect in effects:
            if isinstance(effect, Reply):
                machine = self.cluster.client_name(effect.client)
                if machine is None:
                    continue
                queue = self._reply_queues.setdefault(machine, deque())
                if not queue and machine not in self._reply_rr:
                    self._reply_rr.append(machine)
                queue.append(effect)
            elif isinstance(effect, PeerSend):
                self.peer_queue.append((f"s{effect.dst}", effect.message))
            elif isinstance(effect, MulticastPeers):
                self.cluster.multicast_servers(self, effect.message)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown baseline effect {effect!r}")
        self.kick()


def build_baseline_cluster(proto_factory, num_servers: int, **kwargs) -> SimCluster:
    """Build a :class:`SimCluster` whose servers run a baseline protocol.

    ``proto_factory(server_id, num_servers, initial_value)`` builds each
    server's protocol object.
    """

    def host_factory(cluster: SimCluster, server_id: int) -> BaselineServerHost:
        proto = proto_factory(
            server_id, cluster.config.num_servers, cluster.config.initial_value
        )
        return BaselineServerHost(cluster, server_id, proto)

    return SimCluster.build(num_servers=num_servers, host_factory=host_factory, **kwargs)
