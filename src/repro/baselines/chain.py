"""Chain replication [28: van Renesse & Schneider, OSDI 2004].

Servers form a chain ``s0 (head) -> s1 -> ... -> s_{n-1} (tail)``:

* **writes** enter at the head, which orders them, and propagate down
  the chain; the tail acknowledges the client;
* **reads** ("queries") are served *only by the tail*.

Clients contact their bound server, which forwards the request to the
right end of the chain; replies go straight from the responsible server
to the client.  Write throughput is high (pipelined chain, like the
ring), but — as the paper notes in its related-work discussion — "the
reads ... are always directed to the same single server and are
therefore not scalable": the tail's NIC caps total read throughput at
one server's worth regardless of ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.messages import (
    BASE_WIRE_BYTES,
    OP_ID_WIRE_BYTES,
    TAG_WIRE_BYTES,
    ClientRead,
    ClientWrite,
    OpId,
    ReadAck,
    WriteAck,
)
from repro.core.tags import Tag
from repro.baselines.runtime import PeerSend, build_baseline_cluster
from repro.runtime.interface import Reply


@dataclass(frozen=True)
class FwdWrite:
    """A client write forwarded to the head."""

    client: int
    op: OpId
    value: bytes

    def payload_bytes(self) -> int:
        return BASE_WIRE_BYTES + 2 * OP_ID_WIRE_BYTES + len(self.value)


@dataclass(frozen=True)
class FwdRead:
    """A client read forwarded to the tail."""

    client: int
    op: OpId

    def payload_bytes(self) -> int:
        return BASE_WIRE_BYTES + 2 * OP_ID_WIRE_BYTES


@dataclass(frozen=True)
class Down:
    """An ordered update propagating down the chain."""

    seq: int
    client: int
    op: OpId
    value: bytes

    def payload_bytes(self) -> int:
        return (
            BASE_WIRE_BYTES + TAG_WIRE_BYTES + 2 * OP_ID_WIRE_BYTES + len(self.value)
        )


class ChainServer:
    """One chain-replication server (sans-I/O)."""

    def __init__(self, server_id: int, num_servers: int, initial_value: bytes = b""):
        self.server_id = server_id
        self.num_servers = num_servers
        self.value = initial_value
        self.seq = 0
        self._head_seq = 0

    @property
    def is_head(self) -> bool:
        return self.server_id == 0

    @property
    def is_tail(self) -> bool:
        return self.server_id == self.num_servers - 1

    @property
    def tail(self) -> int:
        return self.num_servers - 1

    def on_client_message(self, client: int, message) -> list:
        if isinstance(message, ClientWrite):
            if self.is_head:
                return self._accept_write(client, message.op, message.value)
            return [PeerSend(0, FwdWrite(client, message.op, message.value))]
        if isinstance(message, ClientRead):
            if self.is_tail:
                return self._serve_read(client, message.op)
            return [PeerSend(self.tail, FwdRead(client, message.op))]
        raise TypeError(f"unexpected client message {message!r}")

    def on_server_message(self, src: int, message) -> list:
        if isinstance(message, FwdWrite):
            return self._accept_write(message.client, message.op, message.value)
        if isinstance(message, FwdRead):
            return self._serve_read(message.client, message.op)
        if isinstance(message, Down):
            self._apply(message.seq, message.value)
            if self.is_tail:
                return [
                    Reply(message.client, WriteAck(message.op, Tag(message.seq, 0)))
                ]
            return [PeerSend(self.server_id + 1, message)]
        raise TypeError(f"unexpected server message {message!r}")

    def on_server_crash(self, crashed: int) -> list:
        return []  # failure-free comparison baseline

    def _accept_write(self, client: int, op: OpId, value: bytes) -> list:
        self._head_seq += 1
        seq = self._head_seq
        self._apply(seq, value)
        if self.num_servers == 1:
            return [Reply(client, WriteAck(op, Tag(seq, 0)))]
        return [PeerSend(self.server_id + 1, Down(seq, client, op, value))]

    def _serve_read(self, client: int, op: OpId) -> list:
        return [Reply(client, ReadAck(op, self.value, Tag(self.seq, 0)))]

    def _apply(self, seq: int, value: bytes) -> None:
        if seq > self.seq:
            self.seq = seq
            self.value = value


def build_chain_cluster(num_servers: int, **kwargs):
    """A simulated cluster whose servers run chain replication."""
    return build_baseline_cluster(ChainServer, num_servers, **kwargs)
