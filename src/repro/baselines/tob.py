"""Register built on a ring total-order broadcast (the modular approach).

The paper discusses — and rejects — building the atomic storage on top of
a total-order broadcast primitive [15: LCR-style ring TOB]: "Ensuring the
atomicity of the storage would however have required to also totally
order the reads, hampering its scalability.  Algorithms based on
underlying total order broadcast primitives have the same throughput as
the underlying atomic broadcast algorithm for both read and write
operations.  The highest throughput we know of for such algorithms is 1."

This baseline makes that argument executable: every operation — read or
write — is stamped by its origin server and circulated once around the
ring; when the token returns, the operation is "delivered" and the
origin answers the client.  Writes install values along the way with
monotone (seq, origin) ordering.  Because *reads* also consume ring
slots, total throughput (reads + writes) is capped at roughly one
operation per ring slot, no matter how many servers are added.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.messages import (
    BASE_WIRE_BYTES,
    OP_ID_WIRE_BYTES,
    TAG_WIRE_BYTES,
    ClientRead,
    ClientWrite,
    OpId,
    ReadAck,
    WriteAck,
)
from repro.core.tags import Tag
from repro.baselines.runtime import PeerSend, build_baseline_cluster
from repro.runtime.interface import Reply


@dataclass(frozen=True)
class OpToken:
    """One totally-ordered operation circulating the ring."""

    tag: Tag  # (sequence, origin) — the total order
    kind: str  # "read" | "write"
    client: int
    op: OpId
    value: Optional[bytes]

    @property
    def origin(self) -> int:
        return self.tag.server_id

    def payload_bytes(self) -> int:
        size = BASE_WIRE_BYTES + TAG_WIRE_BYTES + 2 * OP_ID_WIRE_BYTES + 1
        if self.value is not None:
            size += len(self.value)
        return size


class TobServer:
    """One server of the TOB-based register (sans-I/O)."""

    def __init__(self, server_id: int, num_servers: int, initial_value: bytes = b""):
        self.server_id = server_id
        self.num_servers = num_servers
        self.tag = Tag.ZERO
        self.value = initial_value
        self._seq = 0

    @property
    def successor(self) -> int:
        return (self.server_id + 1) % self.num_servers

    def on_client_message(self, client: int, message) -> list:
        self._seq = self._seq + 1
        tag = Tag(max(self._seq, self.tag.ts + 1), self.server_id)
        self._seq = tag.ts
        if isinstance(message, ClientWrite):
            token = OpToken(tag, "write", client, message.op, message.value)
            self._install(token)
        elif isinstance(message, ClientRead):
            token = OpToken(tag, "read", client, message.op, None)
        else:
            raise TypeError(f"unexpected client message {message!r}")
        if self.num_servers == 1:
            return self._deliver(token)
        return [PeerSend(self.successor, token)]

    def on_server_message(self, src: int, message) -> list:
        if not isinstance(message, OpToken):
            raise TypeError(f"unexpected server message {message!r}")
        if message.origin == self.server_id:
            return self._deliver(message)
        self._install(message)
        return [PeerSend(self.successor, message)]

    def on_server_crash(self, crashed: int) -> list:
        return []  # failure-free comparison baseline

    def _install(self, token: OpToken) -> None:
        if token.kind == "write" and token.tag > self.tag:
            self.tag = token.tag
            self.value = token.value

    def _deliver(self, token: OpToken) -> list:
        """The token circled the ring: the operation is totally ordered."""
        if token.kind == "write":
            return [Reply(token.client, WriteAck(token.op, token.tag))]
        return [Reply(token.client, ReadAck(token.op, self.value, self.tag))]


def build_tob_cluster(num_servers: int, **kwargs):
    """A simulated cluster whose servers run the TOB-based register."""
    return build_baseline_cluster(TobServer, num_servers, **kwargs)
