"""Baseline storage algorithms the paper compares against.

Each baseline runs on the same simulated cluster, NIC model and client
emulation as the core algorithm, so throughput comparisons isolate the
*algorithmic* communication pattern:

* :mod:`repro.baselines.abd` — a server-mediated multi-writer ABD
  majority-quorum register [Attiya, Bar-Noy, Dolev; Lynch & Shvartsman].
  Reads and writes both touch a majority, so read throughput cannot
  scale with servers (the paper's Figure 1 / [25] argument).
* :mod:`repro.baselines.chain` — chain replication [van Renesse &
  Schneider].  High write throughput, but all reads are served by the
  tail, so read throughput is flat.
* :mod:`repro.baselines.tob` — a ring total-order-broadcast register:
  reads and writes are both totally ordered (the modular approach the
  paper rejects), so total throughput is ~1 op/slot.
* :mod:`repro.baselines.naive` — read-one/write-all *without* the
  pre-write phase: exhibits the read-inversion atomicity violation, and
  its broadcast variant exercises the ethernet collision model.
"""

from repro.baselines.abd import AbdServer, build_abd_cluster
from repro.baselines.chain import ChainServer, build_chain_cluster
from repro.baselines.naive import NaiveServer, build_naive_cluster
from repro.baselines.runtime import BaselineServerHost, PeerSend
from repro.baselines.tob import TobServer, build_tob_cluster

__all__ = [
    "AbdServer",
    "BaselineServerHost",
    "ChainServer",
    "NaiveServer",
    "PeerSend",
    "TobServer",
    "build_abd_cluster",
    "build_chain_cluster",
    "build_naive_cluster",
    "build_tob_cluster",
]
