"""Server-mediated multi-writer ABD majority-quorum register.

The classical quorum register [4, 24 in the paper]: every operation
touches a majority of servers.

* **write(v)**: phase 1 — the coordinator queries a majority for the
  highest tag; phase 2 — it stores ``(max_ts + 1, id)`` with the value at
  a majority.
* **read()**: phase 1 — query a majority for (tag, value); phase 2 —
  write back the highest pair to a majority (required for atomicity),
  then return it.

The client contacts one server which acts as coordinator (as in the
paper's Figure 1 algorithm A), so the comparison with the ring algorithm
isolates the communication pattern.  Because every read moves the value
over ``~n/2`` server-network links and every coordinator must also
receive ``~n`` quorum messages per operation, read throughput stays flat
as servers are added — the behaviour the paper's introduction argues
makes quorum systems unsuitable for throughput (see also [25]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.messages import (
    BASE_WIRE_BYTES,
    OP_ID_WIRE_BYTES,
    TAG_WIRE_BYTES,
    ClientRead,
    ClientWrite,
    OpId,
    ReadAck,
    WriteAck,
)
from repro.core.tags import Tag
from repro.baselines.runtime import PeerSend, build_baseline_cluster
from repro.runtime.interface import Reply


@dataclass(frozen=True)
class QueryTag:
    """Phase-1 request: what is your highest tag (and value)?"""

    key: tuple[int, int]  # (coordinator, sequence)
    want_value: bool

    def payload_bytes(self) -> int:
        return BASE_WIRE_BYTES + OP_ID_WIRE_BYTES + 1


@dataclass(frozen=True)
class TagReply:
    key: tuple[int, int]
    tag: Tag
    value: Optional[bytes]

    def payload_bytes(self) -> int:
        size = BASE_WIRE_BYTES + OP_ID_WIRE_BYTES + TAG_WIRE_BYTES
        if self.value is not None:
            size += len(self.value)
        return size


@dataclass(frozen=True)
class Store:
    """Phase-2 request: adopt (tag, value) if newer."""

    key: tuple[int, int]
    tag: Tag
    value: bytes

    def payload_bytes(self) -> int:
        return BASE_WIRE_BYTES + OP_ID_WIRE_BYTES + TAG_WIRE_BYTES + len(self.value)


@dataclass(frozen=True)
class StoreAck:
    key: tuple[int, int]

    def payload_bytes(self) -> int:
        return BASE_WIRE_BYTES + OP_ID_WIRE_BYTES


@dataclass
class _OpState:
    kind: str  # "read" | "write"
    client: int
    op: OpId
    phase: int
    replies: int = 0
    best_tag: Tag = Tag.ZERO
    best_value: bytes = b""
    write_value: bytes = b""


class AbdServer:
    """One ABD replica + coordinator (sans-I/O)."""

    def __init__(self, server_id: int, num_servers: int, initial_value: bytes = b""):
        self.server_id = server_id
        self.num_servers = num_servers
        self.majority = num_servers // 2 + 1
        self.tag = Tag.ZERO
        self.value = initial_value
        self._seq = 0
        self._ops: dict[tuple[int, int], _OpState] = {}

    # ------------------------------------------------------------------
    # Client side (coordinator role)
    # ------------------------------------------------------------------

    def on_client_message(self, client: int, message) -> list:
        self._seq += 1
        key = (self.server_id, self._seq)
        if isinstance(message, ClientWrite):
            state = _OpState("write", client, message.op, phase=1)
            state.write_value = message.value
            want_value = False
        elif isinstance(message, ClientRead):
            state = _OpState("read", client, message.op, phase=1)
            want_value = True
        else:
            raise TypeError(f"unexpected client message {message!r}")
        self._ops[key] = state
        # Count ourselves as the first phase-1 reply.
        state.replies = 1
        state.best_tag = self.tag
        state.best_value = self.value
        effects = [
            PeerSend(other, QueryTag(key, want_value))
            for other in range(self.num_servers)
            if other != self.server_id
        ]
        return effects + self._maybe_advance(key)

    # ------------------------------------------------------------------
    # Replica side
    # ------------------------------------------------------------------

    def on_server_message(self, src: int, message) -> list:
        if isinstance(message, QueryTag):
            value = self.value if message.want_value else None
            return [PeerSend(src, TagReply(message.key, self.tag, value))]
        if isinstance(message, Store):
            self._install(message.tag, message.value)
            return [PeerSend(src, StoreAck(message.key))]
        if isinstance(message, TagReply):
            state = self._ops.get(message.key)
            if state is None or state.phase != 1:
                return []
            state.replies += 1
            if message.tag > state.best_tag:
                state.best_tag = message.tag
                if message.value is not None:
                    state.best_value = message.value
            return self._maybe_advance(message.key)
        if isinstance(message, StoreAck):
            state = self._ops.get(message.key)
            if state is None or state.phase != 2:
                return []
            state.replies += 1
            return self._maybe_advance(message.key)
        raise TypeError(f"unexpected server message {message!r}")

    def on_server_crash(self, crashed: int) -> list:
        return []  # failure-free comparison baseline

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _maybe_advance(self, key: tuple[int, int]) -> list:
        state = self._ops.get(key)
        if state is None or state.replies < self.majority:
            return []
        if state.phase == 1:
            state.phase = 2
            if state.kind == "write":
                tag = Tag(state.best_tag.ts + 1, self.server_id)
                value = state.write_value
            else:
                tag = state.best_tag
                value = state.best_value
            state.best_tag, state.best_value = tag, value
            self._install(tag, value)
            state.replies = 1  # our own phase-2 store
            return [
                PeerSend(other, Store(key, tag, value))
                for other in range(self.num_servers)
                if other != self.server_id
            ]
        # Phase 2 complete.
        del self._ops[key]
        if state.kind == "write":
            return [Reply(state.client, WriteAck(state.op, state.best_tag))]
        return [
            Reply(state.client, ReadAck(state.op, state.best_value, state.best_tag))
        ]

    def _install(self, tag: Tag, value: bytes) -> None:
        if tag > self.tag:
            self.tag = tag
            self.value = value


def build_abd_cluster(num_servers: int, **kwargs):
    """A simulated cluster whose servers run the ABD baseline."""
    return build_baseline_cluster(AbdServer, num_servers, **kwargs)
