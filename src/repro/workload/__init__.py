"""Client emulation: the load-generation layer of the evaluation.

* :mod:`repro.workload.generator` — closed-loop logical clients driving
  a simulated cluster, with measurement-window accounting;
* :mod:`repro.workload.scenarios` — the paper's exact experiment
  configurations (two reader machines per server, writer-only load, one
  reader plus one writer per server, shared vs separate networks).
"""

from repro.workload.generator import LoadDriver, WorkloadSpec
from repro.workload.scenarios import (
    contention_scenario,
    read_only_scenario,
    write_only_scenario,
)

__all__ = [
    "LoadDriver",
    "WorkloadSpec",
    "contention_scenario",
    "read_only_scenario",
    "write_only_scenario",
]
