"""Closed-loop load generation against a simulated cluster.

A :class:`LoadDriver` spawns client *machines* (one NIC each, as in the
paper's testbed) bound to specific servers, each emulating several
logical clients.  Every logical client runs a closed loop: issue an
operation, wait for completion, immediately issue the next.  Throughput
is whatever the system sustains — the standard way to measure saturated
throughput, and the paper's ("a single writing node can saturate the
storage implementation").

Written values embed the logical client id and a sequence number, so
every written value is globally unique — a requirement of the value-based
linearizability checker and good hygiene regardless.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of a load pattern.

    Attributes
    ----------
    reader_machines_per_server / writer_machines_per_server:
        Client machines bound to each server, matching the paper's
        "two dedicated client machines for each server".
    reader_concurrency / writer_concurrency:
        Logical clients each machine emulates (requests in parallel).
        Reads that wait for pending writes have latencies of several ring
        circuits, so saturating a loaded server takes far more
        outstanding reads than unloaded reads (Little's law); hence the
        separate knobs.
    value_size:
        Payload bytes per value (reads return this much; writes carry it).
    """

    reader_machines_per_server: int = 2
    writer_machines_per_server: int = 0
    reader_concurrency: int = 4
    writer_concurrency: int = 4
    value_size: int = 4096

    def validate(self) -> "WorkloadSpec":
        if self.reader_machines_per_server < 0 or self.writer_machines_per_server < 0:
            raise ConfigurationError("machine counts must be >= 0")
        if self.reader_concurrency < 1 or self.writer_concurrency < 1:
            raise ConfigurationError("concurrency must be >= 1")
        if self.value_size < 16:
            raise ConfigurationError("value_size must be >= 16 (unique-value header)")
        return self


@dataclass
class KindStats:
    """Accounting for one operation kind inside the measurement window."""

    operations: int = 0
    payload_bytes: int = 0
    latencies: list = field(default_factory=list)
    #: per logical-client completed ops (for per-client fairness checks)
    per_client: dict = field(default_factory=dict)


class LoadDriver:
    """Runs a :class:`WorkloadSpec` against a cluster.

    Usage::

        driver = LoadDriver(cluster, spec)
        driver.start()
        cluster.run(until=warmup_end)
        driver.begin_measurement()
        cluster.run(until=window_end)
        driver.end_measurement()
        stats = driver.stats["read"]
    """

    def __init__(self, cluster, spec: WorkloadSpec):
        self.cluster = cluster
        self.spec = spec.validate()
        self.stats: dict[str, KindStats] = {"read": KindStats(), "write": KindStats()}
        self._measuring = False
        self._stopped = False
        self._clients: list[tuple[object, int, str]] = []  # (host, client_id, kind)
        self._inflight_started: dict = {}
        self._write_seq = 0
        self._build()

    def _build(self) -> None:
        for server_id in sorted(self.cluster.servers):
            for _ in range(self.spec.reader_machines_per_server):
                self._add_machine(server_id, "read")
            for _ in range(self.spec.writer_machines_per_server):
                self._add_machine(server_id, "write")

    def _add_machine(self, server_id: int, kind: str) -> None:
        host = self.cluster.add_client(home_server=server_id)
        concurrency = (
            self.spec.reader_concurrency
            if kind == "read"
            else self.spec.writer_concurrency
        )
        ids = [host.client_id]
        for _ in range(concurrency - 1):
            ids.append(host.add_virtual_client())
        for client_id in ids:
            self._clients.append((host, client_id, kind))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Issue the first operation of every logical client."""
        for host, client_id, kind in self._clients:
            self._issue(host, client_id, kind)

    def stop(self) -> None:
        """Stop reissuing; in-flight operations complete and then the
        simulation quiesces."""
        self._stopped = True

    def begin_measurement(self) -> None:
        """Zero counters; subsequent completions count."""
        self.stats = {"read": KindStats(), "write": KindStats()}
        self._measuring = True

    def end_measurement(self) -> None:
        self._measuring = False

    @property
    def logical_clients(self) -> int:
        return len(self._clients)

    # ------------------------------------------------------------------
    # The closed loop
    # ------------------------------------------------------------------

    def _issue(self, host, client_id: int, kind: str) -> None:
        if self._stopped or not host.alive:
            return
        started = self.cluster.now

        def on_complete(result) -> None:
            self._completed(host, client_id, kind, started, result)

        if kind == "read":
            host.read(on_complete, client_id=client_id)
        else:
            host.write(self._next_value(client_id), on_complete, client_id=client_id)

    def _completed(self, host, client_id: int, kind: str, started: float, result) -> None:
        if result.ok and self._measuring:
            stats = self.stats[kind]
            stats.operations += 1
            stats.payload_bytes += self.spec.value_size
            stats.latencies.append(self.cluster.now - started)
            stats.per_client[client_id] = stats.per_client.get(client_id, 0) + 1
        self._issue(host, client_id, kind)

    def _next_value(self, client_id: int) -> bytes:
        self._write_seq += 1
        header = client_id.to_bytes(8, "big") + self._write_seq.to_bytes(8, "big")
        return header + b"\x00" * (self.spec.value_size - len(header))
