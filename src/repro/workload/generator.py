"""Closed-loop load generation against a simulated cluster.

A :class:`LoadDriver` spawns client *machines* (one NIC each, as in the
paper's testbed) bound to specific servers, each emulating several
logical clients.  Every logical client runs a closed loop: issue an
operation, wait for completion, immediately issue the next.  Throughput
is whatever the system sustains — the standard way to measure saturated
throughput, and the paper's ("a single writing node can saturate the
storage implementation").

Written values embed the logical client id and a sequence number, so
every written value is globally unique — a requirement of the value-based
linearizability checker and good hygiene regardless.

Block mode (``num_blocks > 0``) targets a sharded cluster: machines are
:class:`~repro.core.sharded.ShardClientHost`\\ s and every operation
draws a block first — uniformly, by a Zipf law over block ranks
(``block_skew``), and/or concentrated on an explicit hotset
(``hot_blocks`` / ``hot_fraction``).  The skewed draws are what the
elastic placement benchmarks feed the rebalancer.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.sim.rng import derive_seed


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of a load pattern.

    Attributes
    ----------
    reader_machines_per_server / writer_machines_per_server:
        Client machines bound to each server, matching the paper's
        "two dedicated client machines for each server".
    reader_concurrency / writer_concurrency:
        Logical clients each machine emulates (requests in parallel).
        Reads that wait for pending writes have latencies of several ring
        circuits, so saturating a loaded server takes far more
        outstanding reads than unloaded reads (Little's law); hence the
        separate knobs.
    value_size:
        Payload bytes per value (reads return this much; writes carry it).
    num_blocks:
        0 (default) drives the single-register cluster via plain
        read/write.  >0 drives a sharded cluster: machines become shard
        clients and every operation draws a target block first.
    block_skew:
        Zipf exponent ``s`` over block ranks: block ``i`` is drawn with
        weight ``1/(i+1)**s``, so block 0 is the hottest.  0 = uniform.
    hot_blocks / hot_fraction:
        An explicit hotset: with probability ``hot_fraction`` the draw
        picks uniformly among ``hot_blocks`` instead of the Zipf/uniform
        law.  Both must be set together.
    value_sizes:
        Mixed write sizes: each write draws uniformly from this tuple
        instead of using the fixed ``value_size``.  Empty = fixed.
    """

    reader_machines_per_server: int = 2
    writer_machines_per_server: int = 0
    reader_concurrency: int = 4
    writer_concurrency: int = 4
    value_size: int = 4096
    num_blocks: int = 0
    block_skew: float = 0.0
    hot_blocks: tuple = ()
    hot_fraction: float = 0.0
    value_sizes: tuple = ()

    def validate(self) -> "WorkloadSpec":
        if self.reader_machines_per_server < 0 or self.writer_machines_per_server < 0:
            raise ConfigurationError("machine counts must be >= 0")
        if self.reader_concurrency < 1 or self.writer_concurrency < 1:
            raise ConfigurationError("concurrency must be >= 1")
        if self.value_size < 16:
            raise ConfigurationError("value_size must be >= 16 (unique-value header)")
        if self.num_blocks < 0:
            raise ConfigurationError("num_blocks must be >= 0")
        if self.num_blocks == 0 and (
            self.block_skew or self.hot_blocks or self.hot_fraction
        ):
            raise ConfigurationError(
                "block-distribution knobs (block_skew/hot_blocks/hot_fraction) "
                "require num_blocks > 0"
            )
        if self.block_skew < 0:
            raise ConfigurationError("block_skew must be >= 0")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ConfigurationError("hot_fraction must be in [0, 1]")
        if bool(self.hot_blocks) != (self.hot_fraction > 0):
            raise ConfigurationError(
                "hot_blocks and hot_fraction must be set together (a hotset "
                "without a fraction, or vice versa, silently does nothing)"
            )
        if any(b < 0 or b >= self.num_blocks for b in self.hot_blocks):
            raise ConfigurationError(
                f"hot_blocks must be in [0, {self.num_blocks}); got {self.hot_blocks}"
            )
        if len(set(self.hot_blocks)) != len(self.hot_blocks):
            raise ConfigurationError("hot_blocks must not repeat")
        if any(size < 16 for size in self.value_sizes):
            raise ConfigurationError(
                "every value_sizes entry must be >= 16 (unique-value header)"
            )
        return self


@dataclass
class KindStats:
    """Accounting for one operation kind inside the measurement window."""

    operations: int = 0
    payload_bytes: int = 0
    latencies: list = field(default_factory=list)
    #: per logical-client completed ops (for per-client fairness checks)
    per_client: dict = field(default_factory=dict)


class LoadDriver:
    """Runs a :class:`WorkloadSpec` against a cluster.

    Usage::

        driver = LoadDriver(cluster, spec)
        driver.start()
        cluster.run(until=warmup_end)
        driver.begin_measurement()
        cluster.run(until=window_end)
        driver.end_measurement()
        stats = driver.stats["read"]
    """

    def __init__(self, cluster, spec: WorkloadSpec, seed: int = 0):
        self.cluster = cluster
        self.spec = spec.validate()
        self.stats: dict[str, KindStats] = {"read": KindStats(), "write": KindStats()}
        self._measuring = False
        self._stopped = False
        self._clients: list[tuple[object, int, str]] = []  # (host, client_id, kind)
        self._inflight_started: dict = {}
        self._write_seq = 0
        #: Block draws issued so far, per block (tests assert the
        #: distribution shape against this, not against completions,
        #: which fold in per-block service rates).
        self.block_ops_issued: dict[int, int] = {}
        self._rng = random.Random(derive_seed(seed, "workload.blocks"))
        self._block_cdf = self._build_block_cdf()
        self._build()

    def _build_block_cdf(self):
        """Cumulative weights of the Zipf(``block_skew``) law over block
        ranks (block 0 hottest); ``None`` outside block mode."""
        if self.spec.num_blocks == 0:
            return None
        weights = [
            1.0 / (rank + 1) ** self.spec.block_skew
            for rank in range(self.spec.num_blocks)
        ]
        cdf = []
        running = 0.0
        for weight in weights:
            running += weight
            cdf.append(running)
        return cdf

    def _draw_block(self) -> int:
        spec = self.spec
        if spec.hot_fraction and self._rng.random() < spec.hot_fraction:
            block = spec.hot_blocks[self._rng.randrange(len(spec.hot_blocks))]
        else:
            cdf = self._block_cdf
            block = bisect_left(cdf, self._rng.random() * cdf[-1])
        self.block_ops_issued[block] = self.block_ops_issued.get(block, 0) + 1
        return block

    def _draw_value_size(self) -> int:
        sizes = self.spec.value_sizes
        if not sizes:
            return self.spec.value_size
        return sizes[self._rng.randrange(len(sizes))]

    def _build(self) -> None:
        for server_id in sorted(self.cluster.servers):
            for _ in range(self.spec.reader_machines_per_server):
                self._add_machine(server_id, "read")
            for _ in range(self.spec.writer_machines_per_server):
                self._add_machine(server_id, "write")

    def _add_machine(self, server_id: int, kind: str) -> None:
        if self.spec.num_blocks > 0:
            # Imported here, not at module top: the workload layer stays
            # importable without the sharded stack and vice versa.
            from repro.core.sharded import add_shard_client

            host = add_shard_client(self.cluster, home_server=server_id)
        else:
            host = self.cluster.add_client(home_server=server_id)
        concurrency = (
            self.spec.reader_concurrency
            if kind == "read"
            else self.spec.writer_concurrency
        )
        ids = [host.client_id]
        for _ in range(concurrency - 1):
            ids.append(host.add_virtual_client())
        for client_id in ids:
            self._clients.append((host, client_id, kind))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Issue the first operation of every logical client."""
        for host, client_id, kind in self._clients:
            self._issue(host, client_id, kind)

    def stop(self) -> None:
        """Stop reissuing; in-flight operations complete and then the
        simulation quiesces."""
        self._stopped = True

    def begin_measurement(self) -> None:
        """Zero counters; subsequent completions count."""
        self.stats = {"read": KindStats(), "write": KindStats()}
        self._measuring = True

    def end_measurement(self) -> None:
        self._measuring = False

    @property
    def logical_clients(self) -> int:
        return len(self._clients)

    # ------------------------------------------------------------------
    # The closed loop
    # ------------------------------------------------------------------

    def _issue(self, host, client_id: int, kind: str) -> None:
        if self._stopped or not host.alive:
            return
        started = self.cluster.now
        if kind == "read":
            payload = self.spec.value_size
        else:
            payload = self._draw_value_size()

        def on_complete(result) -> None:
            self._completed(host, client_id, kind, started, payload, result)

        if self.spec.num_blocks > 0:
            reg = self._draw_block()
            if kind == "read":
                host.read_block(reg, on_complete, client_id=client_id)
            else:
                host.write_block(
                    reg, self._next_value(client_id, payload), on_complete,
                    client_id=client_id,
                )
        elif kind == "read":
            host.read(on_complete, client_id=client_id)
        else:
            host.write(
                self._next_value(client_id, payload), on_complete, client_id=client_id
            )

    def _completed(
        self, host, client_id: int, kind: str, started: float, payload: int, result
    ) -> None:
        if result.ok and self._measuring:
            stats = self.stats[kind]
            stats.operations += 1
            stats.payload_bytes += payload
            stats.latencies.append(self.cluster.now - started)
            stats.per_client[client_id] = stats.per_client.get(client_id, 0) + 1
        self._issue(host, client_id, kind)

    def _next_value(self, client_id: int, size: int = 0) -> bytes:
        self._write_seq += 1
        header = client_id.to_bytes(8, "big") + self._write_seq.to_bytes(8, "big")
        if size <= 0:
            size = self.spec.value_size
        return header + b"\x00" * (size - len(header))
