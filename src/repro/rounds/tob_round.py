"""The TOB-based register in the round model (the paper's "throughput 1").

Section 4.2: "Algorithms based on underlying total order broadcast
primitives have the same throughput as the underlying atomic broadcast
algorithm for both read and write operations.  The highest throughput we
know of for such algorithms is 1 [15]."

In the round model every ring slot carries one message per round
regardless of size, so totally ordering the *reads* as well as the
writes caps the combined throughput at 1 operation per round: each
operation's token occupies every one of the ``n`` ring links for one
round, and the ring moves ``n`` messages per round in total.

Contrast with the paper's algorithm in the same model
(:class:`repro.rounds.adapter.RoundStorage`): writes are 1/round *and*
reads are n/round on top.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class _Token:
    origin: int
    op: int
    kind: str


class RoundTobStorage:
    """A minimal totally-ordered register in lockstep rounds.

    Every server keeps a queue of operation tokens (its clients' plus
    forwarded ones) and sends exactly one per round to its successor; a
    token returning to its origin is delivered and its client answered.
    """

    def __init__(self, num_servers: int):
        self.num_servers = num_servers
        self.round_no = 0
        self._queues: list[deque[_Token]] = [deque() for _ in range(num_servers)]
        self._arriving: list = [None] * num_servers
        self._next_op = 0
        self.issued: dict[int, int] = {}
        self.completions: list[tuple[int, str, int, int]] = []

    def issue(self, server_id: int, kind: str) -> int:
        op = self._next_op
        self._next_op += 1
        self.issued[op] = self.round_no + 1
        self._queues[server_id].append(_Token(server_id, op, kind))
        return op

    def step(self) -> None:
        self.round_no += 1
        for i in range(self.num_servers):
            token = self._arriving[i]
            self._arriving[i] = None
            if token is None:
                continue
            if token.origin == i:
                self.completions.append(
                    (token.op, token.kind, self.issued.pop(token.op), self.round_no)
                )
            else:
                self._queues[i].append(token)
        next_arriving: list = [None] * self.num_servers
        for i in range(self.num_servers):
            if self._queues[i]:
                next_arriving[(i + 1) % self.num_servers] = self._queues[i].popleft()
        self._arriving = next_arriving

    def saturated_throughput(self, rounds: int = 300, read_fraction: float = 0.8) -> float:
        """Total (read + write) operations delivered per round when every
        server always has client operations queued."""
        warmup = 4 * self.num_servers
        at_cutoff = 0
        for r in range(rounds + warmup):
            for server_id in range(self.num_servers):
                if len(self._queues[server_id]) < 2:
                    kind = "read" if (r + server_id) % 10 < read_fraction * 10 else "write"
                    self.issue(server_id, kind)
            self.step()
            if r == warmup - 1:
                at_cutoff = len(self.completions)
        return (len(self.completions) - at_cutoff) / rounds
