"""Figure 1: why quorum algorithms cannot have high read throughput.

The paper's motivating example compares, on three servers in the round
model with a single interface per server (one send and one receive per
round):

* **Algorithm A** (majority-based): a read at server ``s_i`` requires a
  round trip to ``s_{i+1}`` before replying, so each read consumes three
  of the system's receive slots (request, probe, probe-ack);
* **Algorithm B** (local reads): the contacted server answers alone, so
  each read consumes one receive slot.

Both have the same 4-round client latency, but under full load A
completes 1 read per round (3 servers × 1 receive/round ÷ 3 receives per
read) while B completes 3 (one per server per round) — and adding
servers helps B linearly while leaving A flat.

Saturation is modelled as an infinite per-server request backlog: a
server whose receive slot is free in a round consumes one queued client
request with it (the paper's "under full load").  Client latency counts
the request round, every message round, and the reply round, matching
the figure's 4-round latency for both algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.rounds.model import RoundModel, RoundNode, RoundSend

#: The single shared interface of the motivating example.
NET = "net"


@dataclass
class _Ledger:
    """Issue/completion bookkeeping shared by all servers of one run."""

    issued: dict[int, int] = field(default_factory=dict)
    completed: list[tuple[int, int, int]] = field(default_factory=list)
    next_op: int = 0

    def issue(self, round_no: int) -> int:
        op = self.next_op
        self.next_op += 1
        # The request was sent by the client in the previous round and
        # arrived on the server's (otherwise free) receive slot.
        self.issued[op] = round_no - 1
        return op

    def complete(self, op: int, round_no: int) -> None:
        # The reply transits during ``round_no`` and reaches the client
        # at its end.
        self.completed.append((op, self.issued.pop(op), round_no))


@dataclass(frozen=True)
class _Probe:
    home: str
    op: int


@dataclass(frozen=True)
class _ProbeAck:
    op: int


class _ServerA(RoundNode):
    """Majority-based read server (Figure 1, algorithm A).

    A read at this server is complete once a majority has seen it: the
    server itself plus ``len(targets)`` probed peers.  With three servers
    (the paper's figure) one peer is probed; for larger rings the probe
    fan-out grows with the majority size, which is exactly why quorum
    read throughput stays flat as servers are added.
    """

    def __init__(self, name: str, targets: list[str], ledger: _Ledger):
        self.name = name
        self.targets = targets
        self.ledger = ledger
        self.outbox: list = []
        self.acks_pending: dict[int, int] = {}

    def on_round(self, round_no: int, inbox: dict) -> list[RoundSend]:
        message = inbox.get(NET)
        if isinstance(message, _Probe):
            self.outbox.append(RoundSend(message.home, NET, _ProbeAck(message.op)))
        elif isinstance(message, _ProbeAck):
            self.acks_pending[message.op] -= 1
            if self.acks_pending[message.op] == 0:
                del self.acks_pending[message.op]
                self.outbox.append(("reply", message.op))
        else:
            # Receive slot free: consume one backlogged client request.
            op = self.ledger.issue(round_no)
            self.acks_pending[op] = len(self.targets)
            for target in self.targets:
                self.outbox.append(RoundSend(target, NET, _Probe(self.name, op)))

        if not self.outbox:
            return []
        item = self.outbox.pop(0)
        if isinstance(item, RoundSend):
            return [item]
        _kind, op = item
        self.ledger.complete(op, round_no)  # reply transits this round
        return []


class _ServerB(RoundNode):
    """Local-read server (Figure 1, algorithm B).

    ``processing_rounds`` pads the reply so B's client latency equals
    A's 4 rounds, exactly as drawn in the figure; it changes latency
    only, not throughput (the pipeline is ``processing_rounds`` deep).
    """

    def __init__(self, name: str, ledger: _Ledger, processing_rounds: int = 2):
        self.name = name
        self.ledger = ledger
        self.processing_rounds = processing_rounds
        self.queue: list[tuple[int, int]] = []  # (reply_round, op)

    def on_round(self, round_no: int, inbox: dict) -> list[RoundSend]:
        # Receive slot is always free of server messages in B.
        op = self.ledger.issue(round_no)
        self.queue.append((round_no + self.processing_rounds, op))
        while self.queue and self.queue[0][0] <= round_no:
            _ready, ready_op = self.queue.pop(0)
            self.ledger.complete(ready_op, round_no)
            break  # one reply per send slot per round
        return []


@dataclass(frozen=True)
class Figure1Result:
    """Measured steady-state behaviour of one algorithm."""

    algorithm: str
    num_servers: int
    rounds: int
    completed_reads: int
    throughput_per_round: float
    first_latency: int
    steady_latency: float


def run_figure1(
    algorithm: str,
    num_servers: int = 3,
    rounds: int = 60,
    processing_rounds: int = 2,
) -> Figure1Result:
    """Run Algorithm A or B under full load and measure read throughput."""
    model = RoundModel(collision_policy="queue")
    ledger = _Ledger()
    server_names = [f"s{i}" for i in range(num_servers)]
    if algorithm == "A":
        majority = num_servers // 2 + 1
        for i, name in enumerate(server_names):
            targets = [
                server_names[(i + k) % num_servers] for k in range(1, majority)
            ]
            model.add(_ServerA(name, targets, ledger))
    elif algorithm == "B":
        for name in server_names:
            model.add(_ServerB(name, ledger, processing_rounds))
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")

    model.run(rounds)

    cutoff = rounds // 3
    steady = [c for c in ledger.completed if c[2] > cutoff]
    window = rounds - cutoff
    latencies = [finish - issue + 1 for _op, issue, finish in steady]
    first = min(finish - issue + 1 for _op, issue, finish in ledger.completed)
    return Figure1Result(
        algorithm=algorithm,
        num_servers=num_servers,
        rounds=rounds,
        completed_reads=len(steady),
        throughput_per_round=len(steady) / window,
        first_latency=first,
        steady_latency=sum(latencies) / len(latencies) if latencies else float("nan"),
    )
