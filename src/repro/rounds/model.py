"""Executable synchronous round model.

Processes implement :class:`RoundNode`; the :class:`RoundModel` engine
runs rounds: it collects each node's sends, applies the at-most-one
receive rule per (process, interface), counts collisions, and delivers.

Interfaces model the paper's dual-NIC testbed: inter-server traffic and
client traffic use separate interfaces ("client messages do indeed
transit on their own dedicated network"), so a server may send one ring
message *and* one client reply in the same round.  Figure 1's
motivation example instead uses a single shared interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import SimulationError


@dataclass(frozen=True)
class RoundSend:
    """One outgoing message: ``dst`` process, ``iface`` name, payload."""

    dst: str
    iface: str
    message: Any


class RoundNode:
    """Base class for round-model processes.

    Subclasses override :meth:`on_round` — called once per round with
    the messages delivered at the end of the *previous* round (one per
    interface at most) — and return the sends for this round.
    """

    name: str = "?"

    def on_round(
        self, round_no: int, inbox: dict[str, Any]
    ) -> list[RoundSend]:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass
class RoundModel:
    """Runs a set of :class:`RoundNode` processes in lockstep rounds."""

    nodes: dict[str, RoundNode] = field(default_factory=dict)
    round_no: int = 0
    collisions: int = 0
    delivered: int = 0
    #: What happens when two same-round messages hit one (process,
    #: interface): ``"destroy"`` — both are lost (ethernet collision);
    #: ``"queue"`` — extras are delivered in later rounds, one per round
    #: (an ideal collision-free schedule that still respects the
    #: one-receive-per-round capacity).
    collision_policy: str = "destroy"

    def __post_init__(self) -> None:
        if self.collision_policy not in ("destroy", "queue"):
            raise SimulationError(f"unknown collision policy {self.collision_policy!r}")
        self._inboxes: dict[str, dict[str, Any]] = {}
        self._backlog: dict[tuple[str, str], list[tuple[str, Any]]] = {}

    def add(self, node: RoundNode) -> None:
        if node.name in self.nodes:
            raise SimulationError(f"duplicate node {node.name!r}")
        self.nodes[node.name] = node

    def run_round(self) -> None:
        """Execute one synchronous round for every process."""
        self.round_no += 1
        pending = self._inboxes
        sends: list[tuple[str, RoundSend]] = []
        for name in sorted(self.nodes):
            inbox = pending.get(name, {})
            for send in self.nodes[name].on_round(self.round_no, inbox):
                if send.dst not in self.nodes:
                    raise SimulationError(f"send to unknown node {send.dst!r}")
                sends.append((name, send))

        # End of round: apply the at-most-one-receive-per-interface rule.
        arrivals: dict[tuple[str, str], list[tuple[str, Any]]] = dict(self._backlog)
        self._backlog = {}
        for src, send in sends:
            arrivals.setdefault((send.dst, send.iface), []).append((src, send.message))
        inboxes: dict[str, dict[str, Any]] = {}
        for (dst, iface), messages in arrivals.items():
            if len(messages) > 1:
                self.collisions += len(messages) - 1
                if self.collision_policy == "destroy":
                    continue
                self._backlog[(dst, iface)] = messages[1:]
            self.delivered += 1
            inboxes.setdefault(dst, {})[iface] = messages[0][1]
        self._inboxes = inboxes

    def run(self, rounds: int) -> None:
        for _ in range(rounds):
            self.run_round()
