"""The paper's synchronous round-based performance model (Section 2).

In each round ``k`` every process (1) computes, (2) sends one message
per network interface (possibly a multicast), and (3) receives at most
one message per interface.  Receiving two messages on one interface in
the same round is a *collision* — the model's abstraction of ethernet
collisions — and loses the messages.

This model is what the paper uses for Figure 1 (the quorum-vs-local-read
motivation) and the Section 4 analytical claims (read latency 2, write
latency 2N+2, write throughput 1/round, read throughput n/round); the
modules here reproduce all of them executably.
"""

from repro.rounds.figure1 import Figure1Result, run_figure1
from repro.rounds.model import RoundModel, RoundNode
from repro.rounds.adapter import RoundStorage

__all__ = [
    "Figure1Result",
    "RoundModel",
    "RoundNode",
    "RoundStorage",
    "run_figure1",
]
