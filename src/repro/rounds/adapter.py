"""The real server protocol in the synchronous round model (Section 4).

``RoundStorage`` drives unmodified :class:`~repro.core.server.ServerProtocol`
instances in lockstep rounds: every round each server (1) processes the
ring message that arrived at the end of the previous round, (2) processes
newly arrived client requests, (3) sends at most one ring message to its
successor (the paper's one-send-per-round rule), and (4) sends at most
one client reply (the client network's send slot).

Per the paper, Section 4.2's throughput analysis "only considers messages
exchanged between servers" (client traffic rides a dedicated network), so
client-request arrivals are not capacity-limited; the server-side
constraints — one ring send per round, one reply per round — are.

This executable model reproduces the analytical results exactly:

* read latency = 2 rounds (Section 4.1);
* write latency = 2N + 2 rounds (Section 4.1);
* saturated write throughput = 1 op/round regardless of N (Section 4.2);
* saturated read throughput = N ops/round (Section 4.2), also under
  write contention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import ProtocolConfig
from repro.core.messages import ClientRead, ClientWrite, OpId, ReadAck, WriteAck
from repro.core.ring import RingView
from repro.core.server import ServerProtocol


@dataclass
class _PendingOp:
    op: OpId
    kind: str
    issued_round: int


class RoundStorage:
    """A ring of real server protocols in lockstep rounds."""

    def __init__(self, num_servers: int, config: Optional[ProtocolConfig] = None):
        self.num_servers = num_servers
        ring = RingView.initial(num_servers)
        self.servers = [
            ServerProtocol(i, ring, config or ProtocolConfig()) for i in range(num_servers)
        ]
        self.round_no = 0
        # Ring messages in flight: arriving[i] is processed by server i
        # at the start of the next round.
        self._arriving: list = [None] * num_servers
        # Client requests: staged when issued (sent during the next
        # round), then in transit for one round, then processed.
        self._client_staging: list[list] = [[] for _ in range(num_servers)]
        self._client_arriving: list[list] = [[] for _ in range(num_servers)]
        # Per-server queue of replies awaiting the reply send slot.
        self._reply_queues: list[list] = [[] for _ in range(num_servers)]
        self._ops: dict[OpId, _PendingOp] = {}
        self.completions: list[tuple[OpId, str, int, int]] = []  # op, kind, issued, done
        self._next_client = 0
        self._next_seq = 0

    # ------------------------------------------------------------------
    # Round execution
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Run one synchronous round."""
        self.round_no += 1
        # (1) + (2): process arrivals from the end of the previous round.
        for i, server in enumerate(self.servers):
            message = self._arriving[i]
            self._arriving[i] = None
            if message is not None:
                self._reply_queues[i].extend(server.on_ring_message(message))
            for client, request in self._client_arriving[i]:
                self._reply_queues[i].extend(server.on_client_message(client, request))
        # Requests issued before this round start their one-round transit
        # now and are processed at the start of the next round.
        self._client_arriving = self._client_staging
        self._client_staging = [[] for _ in range(self.num_servers)]

        # (3): one ring send per server; arrives at round end.
        next_arriving: list = [None] * self.num_servers
        for i, server in enumerate(self.servers):
            message = server.next_ring_message()
            if message is not None:
                next_arriving[server.successor] = message
        # (4): one client reply per server; completes at round end.
        for i in range(self.num_servers):
            if self._reply_queues[i]:
                reply = self._reply_queues[i].pop(0)
                self._complete(reply.message)
        self._arriving = next_arriving

    def run(self, rounds: int) -> None:
        for _ in range(rounds):
            self.step()

    # ------------------------------------------------------------------
    # Client operations (issued "during" the current round; the server
    # sees them at the start of the next round)
    # ------------------------------------------------------------------

    def issue_write(self, server_id: int, value: bytes) -> OpId:
        op = self._new_op("write")
        self._client_staging[server_id].append((op.client, ClientWrite(op, value)))
        return op

    def issue_read(self, server_id: int) -> OpId:
        op = self._new_op("read")
        self._client_staging[server_id].append((op.client, ClientRead(op)))
        return op

    def _new_op(self, kind: str) -> OpId:
        op = OpId(self._next_client, self._next_seq)
        self._next_client += 1
        self._next_seq += 1
        self._ops[op] = _PendingOp(op, kind, self.round_no + 1)
        return op

    def _complete(self, message) -> None:
        if isinstance(message, (WriteAck, ReadAck)):
            pending = self._ops.pop(message.op, None)
            if pending is not None:
                self.completions.append(
                    (pending.op, pending.kind, pending.issued_round, self.round_no)
                )

    def latency_of(self, op: OpId) -> Optional[int]:
        """Rounds from issue to completion (inclusive), if completed."""
        for done_op, _kind, issued, done in self.completions:
            if done_op == op:
                return done - issued + 1
        return None

    # ------------------------------------------------------------------
    # Section 4 measurements
    # ------------------------------------------------------------------

    def isolated_write_latency(self) -> int:
        """Section 4.1: expected 2N + 2 rounds."""
        op = self.issue_write(0, b"w")
        self.run(4 * self.num_servers + 8)
        latency = self.latency_of(op)
        assert latency is not None, "isolated write did not complete"
        return latency

    def isolated_read_latency(self) -> int:
        """Section 4.1: expected 2 rounds."""
        op = self.issue_read(0)
        self.run(8)
        latency = self.latency_of(op)
        assert latency is not None, "isolated read did not complete"
        return latency

    def saturated_write_throughput(self, rounds: int = 200) -> float:
        """Section 4.2: expected 1 op/round regardless of N."""
        warmup = 4 * self.num_servers
        completed_at_cutoff = 0
        for r in range(rounds + warmup):
            for server_id in range(self.num_servers):
                if len(self.servers[server_id].write_queue) < 4:
                    self.issue_write(server_id, b"w")
            self.step()
            if r == warmup - 1:
                completed_at_cutoff = len(
                    [c for c in self.completions if c[1] == "write"]
                )
        total = len([c for c in self.completions if c[1] == "write"])
        return (total - completed_at_cutoff) / rounds

    def saturated_read_throughput(self, rounds: int = 200, with_writes: bool = False) -> float:
        """Section 4.2: expected N ops/round, with or without contention."""
        warmup = 6 * self.num_servers
        completed_at_cutoff = 0
        for r in range(rounds + warmup):
            for server_id in range(self.num_servers):
                self.issue_read(server_id)
                if with_writes and len(self.servers[server_id].write_queue) < 4:
                    self.issue_write(server_id, b"w")
            self.step()
            if r == warmup - 1:
                completed_at_cutoff = len(
                    [c for c in self.completions if c[1] == "read"]
                )
        total = len([c for c in self.completions if c[1] == "read"])
        return (total - completed_at_cutoff) / rounds
