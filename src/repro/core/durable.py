"""Durable server state: write-ahead snapshots for crash recovery.

The paper's crash model is crash-*stop*: a crashed server never returns,
so the ring can only shrink.  Recovery-capable variants of
message-passing atomic storage (coded atomic memory and its
storage-optimised successors) instead let a replica restart from its
persisted state and *catch up* before it serves reads again.  This
module supplies the persistence half of that model:

* :class:`ServerSnapshot` — an immutable, self-contained copy of
  everything a :class:`~repro.core.server.ServerProtocol` must not lose
  across a crash: the committed register (``value``/``tag``), the
  highest timestamp ever observed (``ts_seen``, which keeps post-restart
  initiations above every tag the server ever touched), the per-origin
  commit watermark, the per-client completed-operation watermark, the
  pending write set, and the reconfiguration nonce counter (so a
  restarted coordinator can never reuse a nonce and have its fresh token
  dropped as an orphan).
* :class:`SnapshotStore` — the persistence interface, with two
  backends: :class:`MemorySnapshotStore` for the simulator (a crash
  erases the process, not the store) and :class:`FileSnapshotStore` for
  the asyncio runtime (atomic write-to-temp + rename, so a crash during
  ``save`` leaves the previous snapshot intact).

Snapshots are *write-ahead* with respect to acknowledgements: the server
persists before its replies are handed to the runtime, so any write or
read a client observed as complete is covered by the snapshot a restart
reloads.  What is deliberately *not* persisted: the forward queue
(queued pre-writes live in their sender's pending set and are
redistributed by the rejoin merge) and the reliable-session state (a
restart is a new channel; sequence numbers restart from scratch on both
ends, exactly like a TCP connection).
"""

from __future__ import annotations

import base64
import json
import os
from dataclasses import dataclass
from typing import Optional

from repro.core.messages import OpId, PendingEntry
from repro.core.tags import Tag
from repro.errors import ProtocolError

#: Snapshot format version, checked on load so a stale on-disk snapshot
#: from an incompatible build fails loudly instead of corrupting state.
#: v2 added ``completed_tags`` (the commit tag behind each client's
#: completed-op watermark, so a restarted server's dedup acks stay
#: tag-covered).  v3 added ``frag_tag`` for the coded value backend (the
#: tag the persisted fragment belongs to, which can lag ``tag`` after a
#: merge installed a tag whose fragment the server never held); v2
#: documents still load — their ``value`` is a whole replicated value,
#: so ``frag_tag`` defaults to ``tag``.
SNAPSHOT_VERSION = 3

#: Oldest snapshot version ``from_json`` still accepts.
_OLDEST_READABLE_VERSION = 2


@dataclass(frozen=True)
class ServerSnapshot:
    """Everything a server must reload to rejoin without forgetting."""

    server_id: int
    members: tuple[int, ...]
    dead: tuple[int, ...]
    tag: Tag
    value: bytes
    ts_seen: int
    watermark: tuple[tuple[int, int], ...]       # origin -> max committed ts
    completed_ops: tuple[tuple[int, int], ...]   # client -> max committed seq
    pending: tuple[PendingEntry, ...]
    reconfig_counter: int = 0
    #: Installed view epoch.  Persisted so a restarted server rejoins
    #: claiming the epoch it actually had — the epoch guard then rejects
    #: any stale traffic of its previous incarnation, and its sponsor's
    #: fold-in token (strictly higher epoch) is the only way back in.
    epoch: int = 0
    #: Commit tag behind each client's max completed seq (when known):
    #: lets a restarted server ack a deduplicated retry with the real
    #: committed tag instead of an untagged (coverage-breaking) ack.
    completed_tags: tuple[tuple[int, Tag], ...] = ()
    #: Coded backend (v3): the tag the persisted ``value`` fragment
    #: belongs to.  ``None`` means "``value`` matches ``tag``" — true
    #: for every replicated snapshot and for coded servers whose
    #: fragment is current.  A coded merge can advance ``tag`` past the
    #: fragment the server holds; persisting the lag keeps a restarted
    #: server from serving a stale fragment as if it were current.
    frag_tag: Optional[Tag] = None

    def to_json(self) -> str:
        """Serialise to a JSON document (the file backend's format)."""
        return json.dumps(
            {
                "version": SNAPSHOT_VERSION,
                "server_id": self.server_id,
                "members": list(self.members),
                "dead": list(self.dead),
                "tag": [self.tag.ts, self.tag.server_id],
                "value": base64.b64encode(self.value).decode("ascii"),
                "ts_seen": self.ts_seen,
                "watermark": [list(item) for item in self.watermark],
                "completed_ops": [list(item) for item in self.completed_ops],
                "pending": [
                    {
                        "tag": [entry.tag.ts, entry.tag.server_id],
                        "value": base64.b64encode(entry.value).decode("ascii"),
                        "op": [entry.op.client, entry.op.seq],
                    }
                    for entry in self.pending
                ],
                "reconfig_counter": self.reconfig_counter,
                "epoch": self.epoch,
                "completed_tags": [
                    [client, tag.ts, tag.server_id]
                    for client, tag in self.completed_tags
                ],
                "frag_tag": (
                    [self.frag_tag.ts, self.frag_tag.server_id]
                    if self.frag_tag is not None
                    else None
                ),
            }
        )

    @staticmethod
    def from_json(document: str) -> "ServerSnapshot":
        """Inverse of :meth:`to_json`; raises on malformed documents."""
        try:
            data = json.loads(document)
            if not _OLDEST_READABLE_VERSION <= data["version"] <= SNAPSHOT_VERSION:
                raise ProtocolError(
                    f"snapshot version {data['version']} unsupported "
                    f"(readable: {_OLDEST_READABLE_VERSION}..{SNAPSHOT_VERSION})"
                )
            frag_tag = data.get("frag_tag")
            return ServerSnapshot(
                server_id=data["server_id"],
                members=tuple(data["members"]),
                dead=tuple(data["dead"]),
                tag=Tag(*data["tag"]),
                value=base64.b64decode(data["value"]),
                ts_seen=data["ts_seen"],
                watermark=tuple((o, ts) for o, ts in data["watermark"]),
                completed_ops=tuple((c, s) for c, s in data["completed_ops"]),
                pending=tuple(
                    PendingEntry(
                        Tag(*entry["tag"]),
                        base64.b64decode(entry["value"]),
                        OpId(*entry["op"]),
                    )
                    for entry in data["pending"]
                ),
                reconfig_counter=data.get("reconfig_counter", 0),
                epoch=data.get("epoch", 0),
                completed_tags=tuple(
                    (client, Tag(ts, sid))
                    for client, ts, sid in data.get("completed_tags", [])
                ),
                frag_tag=Tag(*frag_tag) if frag_tag is not None else None,
            )
        except ProtocolError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed snapshot: {exc}") from exc


class SnapshotStore:
    """Persistence interface for one server's durable snapshot."""

    def save(self, snapshot: ServerSnapshot) -> None:
        raise NotImplementedError

    def load(self) -> Optional[ServerSnapshot]:
        """The last saved snapshot, or ``None`` when nothing was saved."""
        raise NotImplementedError


class MemorySnapshotStore(SnapshotStore):
    """Simulator backend: the store outlives the simulated process.

    A simulated crash destroys the process's volatile state (the
    :class:`~repro.core.server.ServerProtocol` object is discarded); the
    store, held by the cluster, plays the role of the disk.
    """

    def __init__(self) -> None:
        self._snapshot: Optional[ServerSnapshot] = None
        #: Number of saves, asserted on by durability tests.
        self.saves = 0

    def save(self, snapshot: ServerSnapshot) -> None:
        self._snapshot = snapshot
        self.saves += 1

    def load(self) -> Optional[ServerSnapshot]:
        return self._snapshot


class FileSnapshotStore(SnapshotStore):
    """Asyncio-runtime backend: one JSON file, replaced atomically.

    ``save`` writes to ``<path>.tmp`` and renames it over the target, so
    a crash mid-save can never leave a torn snapshot — the previous
    complete snapshot survives.  Saves run synchronously inside protocol
    handlers (the write-ahead guarantee requires the snapshot on disk
    before a reply leaves), so by default they rely on rename atomicity
    alone: fully durable against *process* crashes — this repo's
    recovery model — at microseconds per save.  Pass ``fsync=True`` to
    also survive power loss, at the cost of a synchronous disk flush per
    dirty protocol step; on the asyncio event loop that stalls every
    connection of the node for each sync, so it belongs behind a
    battery-backed or NVMe-fast write path.
    """

    def __init__(self, path: str, fsync: bool = False) -> None:
        self.path = path
        self.fsync = fsync
        self.saves = 0

    def save(self, snapshot: ServerSnapshot) -> None:
        # An orphaned .tmp from a crash mid-save is overwritten here
        # (open "w" truncates) and replaced or re-orphaned atomically —
        # it can never be *loaded*, only waste a directory entry, which
        # load() also reclaims.
        tmp_path = self.path + ".tmp"
        with open(tmp_path, "w", encoding="ascii") as handle:
            handle.write(snapshot.to_json())
            if self.fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp_path, self.path)
        if self.fsync:
            # The rename itself lives in the directory entry: without a
            # directory fsync, power loss after save() returns can roll
            # the file back to the *previous* snapshot — exactly the
            # forgotten-acknowledgement the write-ahead contract forbids.
            self._fsync_directory()
        self.saves += 1

    def load(self) -> Optional[ServerSnapshot]:
        self._discard_orphan_tmp()
        try:
            with open(self.path, "r", encoding="ascii") as handle:
                return ServerSnapshot.from_json(handle.read())
        except FileNotFoundError:
            return None

    def _fsync_directory(self) -> None:
        directory = os.path.dirname(os.path.abspath(self.path))
        dir_fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    def _discard_orphan_tmp(self) -> None:
        """Remove a ``.tmp`` left behind by a crash between the write
        and the rename; the real snapshot (if any) is untouched."""
        try:
            os.remove(self.path + ".tmp")
        except FileNotFoundError:
            pass
