"""Ring membership views.

A :class:`RingView` is an immutable snapshot of the ring: the initial
member order plus the set of members known to have crashed.  Successor and
predecessor walk the *initial* order, skipping dead members — exactly the
paper's splice rule (``pnext = pj+1`` on the crash of ``pj``, line 87).

The view also defines the **adopter** of a dead server: its closest alive
predecessor.  The adopter terminates ring messages originated by the dead
server and answers for its orphaned in-flight writes during
reconfiguration.  Because "closest alive predecessor" is computed from the
monotonically growing dead set, adoptership can only transfer *towards*
the crash detector and two alive servers never simultaneously consider
themselves adopters of the same dead server.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RingView:
    """Immutable ring membership snapshot."""

    members: tuple[int, ...]
    dead: frozenset[int] = field(default_factory=frozenset)

    @staticmethod
    def initial(num_servers: int) -> "RingView":
        """The starting view: servers ``0 .. num_servers-1``, none dead."""
        if num_servers < 1:
            raise ConfigurationError("a ring needs at least one server")
        return RingView(tuple(range(num_servers)))

    def __post_init__(self) -> None:
        if len(set(self.members)) != len(self.members):
            raise ConfigurationError(f"duplicate ring members: {self.members}")
        unknown = self.dead - set(self.members)
        if unknown:
            raise ConfigurationError(f"dead ids not in ring: {sorted(unknown)}")
        if not self.alive():
            raise ConfigurationError("a ring view must contain at least one alive server")

    def alive(self) -> list[int]:
        """Alive members in initial ring order."""
        return [m for m in self.members if m not in self.dead]

    @property
    def num_alive(self) -> int:
        return len(self.members) - len(self.dead)

    @property
    def epoch(self) -> int:
        """Views are totally ordered by the number of known crashes."""
        return len(self.dead)

    def is_alive(self, server_id: int) -> bool:
        return server_id in set(self.members) and server_id not in self.dead

    def successor(self, of: int) -> int:
        """Next alive server after ``of`` in ring order (may be ``of``
        itself when it is the only survivor)."""
        return self._walk(of, +1)

    def predecessor(self, of: int) -> int:
        """Previous alive server before ``of`` in ring order."""
        return self._walk(of, -1)

    def adopter(self, dead_id: int) -> int:
        """The alive server responsible for a dead server's orphaned
        messages: its closest alive predecessor."""
        if dead_id not in self.dead:
            raise ConfigurationError(f"server {dead_id} is not dead in this view")
        return self._walk(dead_id, -1)

    def without(self, dead_id: int) -> "RingView":
        """A new view with ``dead_id`` marked crashed."""
        if dead_id not in set(self.members):
            raise ConfigurationError(f"unknown server {dead_id}")
        return RingView(self.members, self.dead | {dead_id})

    def with_dead(self, dead_ids) -> "RingView":
        """A new view with every id in ``dead_ids`` marked crashed."""
        return RingView(self.members, self.dead | frozenset(dead_ids))

    def revived(self, server_id: int) -> "RingView":
        """A new view with ``server_id`` alive again (crash recovery).

        A rejoining server takes back its original slot in the member
        order, so the splice rule keeps working unchanged.  Reviving a
        server that is not dead is a no-op — rejoin announcements are
        retried and may race the reconfiguration that already folded the
        server back in.  Note the dead set is no longer monotone once a
        cluster uses recovery, so :attr:`epoch` (``len(dead)``) can
        repeat across views; the reconfiguration machinery orders
        attempts by ``(coordinator, nonce)``, not by epoch.
        """
        if server_id not in set(self.members):
            raise ConfigurationError(f"unknown server {server_id}")
        if server_id not in self.dead:
            return self
        return RingView(self.members, self.dead - {server_id})

    def revive_all(self, server_ids) -> "RingView":
        """A new view with every id in ``server_ids`` alive again."""
        revivals = frozenset(server_ids) & self.dead
        if not revivals:
            return self
        return RingView(self.members, self.dead - revivals)

    def _walk(self, start: int, step: int) -> int:
        if start not in set(self.members):
            raise ConfigurationError(f"unknown server {start}")
        index = self.members.index(start)
        n = len(self.members)
        for offset in range(1, n + 1):
            candidate = self.members[(index + step * offset) % n]
            if candidate not in self.dead:
                return candidate
        raise ConfigurationError("no alive server in view")  # pragma: no cover
