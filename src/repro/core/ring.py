"""Ring membership views.

A :class:`RingView` is an immutable snapshot of the ring: the initial
member order plus the set of members known to have crashed.  Successor and
predecessor walk the *initial* order, skipping dead members — exactly the
paper's splice rule (``pnext = pj+1`` on the crash of ``pj``, line 87).

The view also defines the **adopter** of a dead server: its closest alive
predecessor.  The adopter terminates ring messages originated by the dead
server and answers for its orphaned in-flight writes during
reconfiguration.  Because "closest alive predecessor" is computed from the
monotonically growing dead set, adoptership can only transfer *towards*
the crash detector and two alive servers never simultaneously consider
themselves adopters of the same dead server.

Every view additionally carries an **epoch**: a monotonically increasing
counter that totally orders the views one server moves through.  Each
membership change — shrinking *or* growing — produces a strictly larger
epoch, so unlike the historic ``len(dead)`` rule the epoch never repeats
once crash recovery re-grows the ring.  Under the imperfect failure
detector the epoch is the safety anchor: reconfiguration tokens and
commits are epoch-stamped, data traffic is rejected across epochs, and a
view transition is installed only by a commit whose token gathered an
ack quorum of the previous view (see :mod:`repro.core.server`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RingView:
    """Immutable ring membership snapshot.

    ``epoch`` defaults to ``len(dead)`` when not given, which preserves
    the historic value for directly-constructed views; views derived
    through :meth:`without`, :meth:`with_dead`, :meth:`revived` and
    :meth:`revive_all` instead *increment* the parent's epoch, so epochs
    stay strictly monotone along any one server's view history even when
    recovery re-grows the ring.
    """

    members: tuple[int, ...]
    dead: frozenset[int] = field(default_factory=frozenset)
    epoch: int = -1

    @staticmethod
    def initial(num_servers: int) -> "RingView":
        """The starting view: servers ``0 .. num_servers-1``, none dead."""
        if num_servers < 1:
            raise ConfigurationError("a ring needs at least one server")
        return RingView(tuple(range(num_servers)))

    def __post_init__(self) -> None:
        if len(set(self.members)) != len(self.members):
            raise ConfigurationError(f"duplicate ring members: {self.members}")
        unknown = self.dead - set(self.members)
        if unknown:
            raise ConfigurationError(f"dead ids not in ring: {sorted(unknown)}")
        if not self.alive():
            raise ConfigurationError("a ring view must contain at least one alive server")
        if self.epoch < 0:
            object.__setattr__(self, "epoch", len(self.dead))

    def alive(self) -> list[int]:
        """Alive members in initial ring order."""
        return [m for m in self.members if m not in self.dead]

    @property
    def num_alive(self) -> int:
        return len(self.members) - len(self.dead)

    @property
    def quorum(self) -> int:
        """Majority of this view's alive members.

        Installing a successor view requires acks from at least this
        many members of *this* view; two disjoint alive sets cannot both
        reach it, which is what keeps a partitioned minority from
        installing a competing view (see docs/reconfiguration.md).
        """
        return self.num_alive // 2 + 1

    def is_alive(self, server_id: int) -> bool:
        return server_id in set(self.members) and server_id not in self.dead

    def successor(self, of: int) -> int:
        """Next alive server after ``of`` in ring order (may be ``of``
        itself when it is the only survivor)."""
        return self._walk(of, +1)

    def predecessor(self, of: int) -> int:
        """Previous alive server before ``of`` in ring order."""
        return self._walk(of, -1)

    def adopter(self, dead_id: int) -> int:
        """The alive server responsible for a dead server's orphaned
        messages: its closest alive predecessor."""
        if dead_id not in self.dead:
            raise ConfigurationError(f"server {dead_id} is not dead in this view")
        return self._walk(dead_id, -1)

    def without(self, dead_id: int) -> "RingView":
        """A new view with ``dead_id`` marked crashed."""
        if dead_id not in set(self.members):
            raise ConfigurationError(f"unknown server {dead_id}")
        return RingView(self.members, self.dead | {dead_id}, self.epoch + 1)

    def with_dead(self, dead_ids) -> "RingView":
        """A new view with every id in ``dead_ids`` marked crashed."""
        dead = self.dead | frozenset(dead_ids)
        if dead == self.dead:
            return self
        return RingView(self.members, dead, self.epoch + 1)

    def at_epoch(self, epoch: int, dead=None) -> "RingView":
        """The same membership at an explicitly installed ``epoch``.

        Used when adopting a reconfiguration commit wholesale: the
        commit's dead set *replaces* the local one (a stale receiver's
        private suspicions must not survive adoption) and the commit's
        epoch becomes the view's.
        """
        new_dead = self.dead if dead is None else frozenset(dead)
        if new_dead == self.dead and epoch == self.epoch:
            return self
        return RingView(self.members, new_dead, epoch)

    def revived(self, server_id: int) -> "RingView":
        """A new view with ``server_id`` alive again (crash recovery).

        A rejoining server takes back its original slot in the member
        order, so the splice rule keeps working unchanged.  Reviving a
        server that is not dead is a no-op — rejoin announcements are
        retried and may race the reconfiguration that already folded the
        server back in.  Reviving *bumps* the epoch like any other
        membership change, so epochs never repeat across views even
        though the dead set is no longer monotone under recovery.
        """
        if server_id not in set(self.members):
            raise ConfigurationError(f"unknown server {server_id}")
        if server_id not in self.dead:
            return self
        return RingView(self.members, self.dead - {server_id}, self.epoch + 1)

    def revive_all(self, server_ids) -> "RingView":
        """A new view with every id in ``server_ids`` alive again."""
        revivals = frozenset(server_ids) & self.dead
        if not revivals:
            return self
        return RingView(self.members, self.dead - revivals, self.epoch + 1)

    def _walk(self, start: int, step: int) -> int:
        if start not in set(self.members):
            raise ConfigurationError(f"unknown server {start}")
        index = self.members.index(start)
        n = len(self.members)
        for offset in range(1, n + 1):
            candidate = self.members[(index + step * offset) % n]
            if candidate not in self.dead:
                return candidate
        raise ConfigurationError("no alive server in view")  # pragma: no cover
