"""The fair forwarding scheduler (pseudocode lines 53–75).

Under load a server must choose, every time its outgoing ring link frees
up, between *initiating* a write from its own clients (``write_queue``)
and *forwarding* a message received from its predecessor
(``forward_queue``).  Always preferring clients would stall the ring;
always preferring the ring would starve local clients.  The paper's rule:

* keep a counter ``nb_msg[p]`` of messages forwarded per originating
  server ``p`` (initiating one's own write counts toward one's own
  counter, line 26);
* when the link frees up, serve the origin with the **smallest** counter
  among those with queued work — where "self" is a candidate only when
  ``write_queue`` is non-empty (lines 61–63);
* when the forward queue is empty the counters reset (line 55) and the
  server may initiate its own write.

The scheduler guarantees that each origin obtains a ``1/n`` share of every
link under saturation, which is what makes system-wide write throughput
equal to one operation per round (Section 4.2) and bounds the latency of
every write (liveness).
"""

from __future__ import annotations

from collections import deque
from typing import Generic, Optional, TypeVar, Union

T = TypeVar("T")

#: Sentinel returned by :meth:`FairScheduler.choose` meaning "initiate
#: one of your own writes now".
INITIATE_OWN = "initiate-own"


class FairScheduler(Generic[T]):
    """Chooses between forwarding and initiating, per the nb_msg rule.

    The scheduler owns the ``forward_queue``; the caller owns the write
    queue and only tells the scheduler whether it is non-empty.

    Parameters
    ----------
    server_id:
        This server's id (the "self" candidate).
    fair:
        When ``False``, implements the naive policy the paper warns
        about — always prefer one's own writes — used by the ABL4
        ablation benchmark.
    """

    def __init__(self, server_id: int, fair: bool = True):
        self.server_id = server_id
        self.fair = fair
        self.nb_msg: dict[int, int] = {}
        self._queues: dict[int, deque[T]] = {}
        self._order: deque[int] = deque()  # FIFO of (origin) arrival events
        self._size = 0

    # ------------------------------------------------------------------
    # Forward-queue management
    # ------------------------------------------------------------------

    def enqueue(self, origin: int, item: T) -> None:
        """Add a message originated by ``origin`` to the forward queue."""
        self._queues.setdefault(origin, deque()).append(item)
        self._order.append(origin)
        self._size += 1

    def __len__(self) -> int:
        return self._size

    @property
    def empty(self) -> bool:
        return self._size == 0

    def origins_queued(self) -> list[int]:
        """Origins that currently have at least one queued message."""
        return [origin for origin, queue in self._queues.items() if queue]

    def drain(self) -> list[tuple[int, T]]:
        """Remove and return every queued (origin, message) pair in FIFO
        order.  Used when a reconfiguration supersedes queued messages."""
        drained: list[tuple[int, T]] = []
        seen_counts: dict[int, int] = {}
        for origin in self._order:
            index = seen_counts.get(origin, 0)
            queue = self._queues.get(origin)
            if queue is not None and index < len(queue):
                drained.append((origin, queue[index]))
                seen_counts[origin] = index + 1
        self._queues.clear()
        self._order.clear()
        self._size = 0
        return drained

    def reset_counters(self) -> None:
        """Zero every nb_msg counter (pseudocode line 55)."""
        self.nb_msg.clear()

    # ------------------------------------------------------------------
    # The choice rule
    # ------------------------------------------------------------------

    def choose(self, want_initiate: bool) -> Union[str, tuple[int, T], None]:
        """Decide what to send next on the ring.

        Parameters
        ----------
        want_initiate:
            Whether the caller's write queue is non-empty.

        Returns
        -------
        ``INITIATE_OWN``
            The caller should initiate its own next write (the caller
            must then call :meth:`note_initiated`).
        ``(origin, item)``
            Forward ``item`` (counter already incremented).
        ``None``
            Nothing to send.
        """
        if not self.fair:
            # Naive policy: always prefer own writes (ABL4 ablation).
            if want_initiate:
                return INITIATE_OWN
            return self._pop_any()

        if self.empty:
            # Line 54-58: queue empty -> reset counters, maybe initiate.
            self.reset_counters()
            return INITIATE_OWN if want_initiate else None

        # Lines 60-64: candidates are queued origins, plus self when we
        # have writes of our own to initiate.
        candidates = self.origins_queued()
        if want_initiate:
            candidates.append(self.server_id)
        chosen = min(candidates, key=lambda origin: (self.nb_msg.get(origin, 0), origin))
        if chosen == self.server_id and want_initiate:
            return INITIATE_OWN
        return self._pop_from(chosen)

    def note_initiated(self) -> None:
        """Record that the caller initiated its own write (line 26)."""
        self.nb_msg[self.server_id] = self.nb_msg.get(self.server_id, 0) + 1

    def _pop_from(self, origin: int) -> tuple[int, T]:
        queue = self._queues[origin]
        item = queue.popleft()
        self._size -= 1
        self._drop_order_entry(origin)
        self.nb_msg[origin] = self.nb_msg.get(origin, 0) + 1
        return origin, item

    def _pop_any(self) -> Optional[tuple[int, T]]:
        """FIFO pop across all origins (unfair mode only)."""
        while self._order:
            origin = self._order[0]
            queue = self._queues.get(origin)
            if queue:
                item = queue.popleft()
                self._order.popleft()
                self._size -= 1
                self.nb_msg[origin] = self.nb_msg.get(origin, 0) + 1
                return origin, item
            self._order.popleft()
        return None

    def _drop_order_entry(self, origin: int) -> None:
        """Remove the oldest arrival-order entry for ``origin``."""
        try:
            self._order.remove(origin)
        except ValueError:  # pragma: no cover - defensive
            pass
