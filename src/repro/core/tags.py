"""Logical timestamps ("tags") for ordering written values.

The paper orders values by a pair ``[ts, id]`` compared lexicographically:
first by the integer timestamp, then by the writing server's identifier to
break ties.  Because a write contacts *all* servers, a server initiating a
write needs no communication to pick a fresh tag: it increments the
largest timestamp it has seen locally (pseudocode line 23), which keeps
timestamps monotonic across the whole execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering
from typing import Iterable


@total_ordering
@dataclass(frozen=True)
class Tag:
    """A lexicographically ordered (timestamp, server id) pair.

    ``server_id`` is the *index* of the originating server in the initial
    ring, which doubles as the tie-breaker.  ``Tag.ZERO`` (ts=0, id=-1) is
    smaller than every tag any server can generate.
    """

    ts: int
    server_id: int

    ZERO: "Tag" = None  # type: ignore[assignment]  # set below

    def __lt__(self, other: "Tag") -> bool:
        if not isinstance(other, Tag):
            return NotImplemented
        return (self.ts, self.server_id) < (other.ts, other.server_id)

    def next_for(self, server_id: int) -> "Tag":
        """The tag a write initiated by ``server_id`` after seeing ``self``
        would carry (pseudocode line 23: ``[max(...) + 1, i]``)."""
        return Tag(self.ts + 1, server_id)

    def __repr__(self) -> str:
        return f"Tag({self.ts},{self.server_id})"


# A sentinel smaller than any generated tag (generated tags have ts >= 1
# and server_id >= 0).
Tag.ZERO = Tag(0, -1)


def max_tag(tags: Iterable[Tag]) -> Tag:
    """Largest tag in ``tags``; ``Tag.ZERO`` when empty.

    Mirrors the pseudocode's ``maxlex(pending_write_set)`` which is used
    both when initiating a write (line 22) and when a read must wait
    (line 80).
    """
    best = Tag.ZERO
    for tag in tags:
        if tag > best:
            best = tag
    return best
