"""Protocol configuration.

All tunables of the core algorithm live here, including the switches the
ablation benchmarks flip:

* ``piggyback_commits`` — Section 4.2's optimisation: commit tags ride on
  the next outgoing ring message instead of consuming their own wire
  slot.  Turning it off roughly halves write throughput (ABL4).
* ``fair_forwarding`` — the nb_msg fairness scheduler.  Turning it off
  makes each server prioritise its own clients' writes, which starves
  forwarding under load and lets write latencies diverge (ABL4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ProtocolConfig:
    """Tunables for :class:`~repro.core.server.ServerProtocol` and
    :class:`~repro.core.client.ClientProtocol`.

    Attributes
    ----------
    piggyback_commits:
        Attach queued commit tags to outgoing ring messages (paper
        Section 4.2).  When ``False`` every commit is a standalone
        message, doubling per-write ring traffic.
    max_piggybacked_commits:
        Cap on commit tags per carrier message (bounds message growth
        under bursts).
    fair_forwarding:
        Use the nb_msg fairness rule (pseudocode lines 53–75).  When
        ``False`` a server always prefers its own write queue, the
        behaviour the paper warns would prevent ring progress.
    client_timeout:
        Seconds a client waits for a reply before retrying its request at
        another server.  Must exceed the worst-case write latency in the
        deployment; the paper's synchronous-cluster assumption makes such
        a bound known.
    client_max_retries:
        Retries before the client raises
        :class:`~repro.errors.StorageUnavailableError`.
    view_quorum:
        Epoch-guarded, quorum-installed ring views — the operating mode
        for clusters running the *imperfect* (heartbeat) failure
        detector.  Suspicions no longer splice the view directly:
        membership changes only through a reconfiguration commit whose
        token traversed (and was therefore acked by) a majority of the
        previous view's alive members, data traffic is rejected across
        epochs, and a wrongly suspected server pauses instead of serving
        possibly-stale reads.  Runtimes enable this automatically when
        built with ``fd="heartbeat"``; with the perfect detector the
        flag stays off and suspicion remains a crash certificate.
    """

    piggyback_commits: bool = True
    max_piggybacked_commits: int = 64
    fair_forwarding: bool = True
    client_timeout: float = 5.0
    client_max_retries: int = 16
    view_quorum: bool = False

    def validate(self) -> "ProtocolConfig":
        """Raise :class:`ConfigurationError` on nonsensical settings."""
        if self.max_piggybacked_commits < 1:
            raise ConfigurationError("max_piggybacked_commits must be >= 1")
        if self.client_timeout <= 0:
            raise ConfigurationError("client_timeout must be > 0")
        if self.client_max_retries < 0:
            raise ConfigurationError("client_max_retries must be >= 0")
        return self
