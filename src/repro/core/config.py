"""Protocol configuration.

All tunables of the core algorithm live here, including the switches the
ablation benchmarks flip:

* ``piggyback_commits`` — Section 4.2's optimisation: commit tags ride on
  the next outgoing ring message instead of consuming their own wire
  slot.  Turning it off roughly halves write throughput (ABL4).
* ``fair_forwarding`` — the nb_msg fairness scheduler.  Turning it off
  makes each server prioritise its own clients' writes, which starves
  forwarding under load and lets write latencies diverge (ABL4).
* ``batch_max_messages`` — ring-frame batching: successive successor-
  bound ring messages coalesce into one session-layer wire frame,
  amortising per-frame overhead (and, in the simulator, per-frame
  events).  ``1`` disables batching (every message is its own frame,
  the seed-state behaviour the BENCH_baseline.json snapshot records).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ProtocolConfig:
    """Tunables for :class:`~repro.core.server.ServerProtocol` and
    :class:`~repro.core.client.ClientProtocol`.

    Attributes
    ----------
    piggyback_commits:
        Attach queued commit tags to outgoing ring messages (paper
        Section 4.2).  When ``False`` every commit is a standalone
        message, doubling per-write ring traffic.
    max_piggybacked_commits:
        Cap on commit tags per carrier message (bounds message growth
        under bursts).
    fair_forwarding:
        Use the nb_msg fairness rule (pseudocode lines 53–75).  When
        ``False`` a server always prefers its own write queue, the
        behaviour the paper warns would prevent ring progress.
    client_timeout:
        Seconds a client waits for a reply before retrying its request at
        another server.  Must exceed the worst-case write latency in the
        deployment; the paper's synchronous-cluster assumption makes such
        a bound known.
    client_max_retries:
        Retries before the client raises
        :class:`~repro.errors.StorageUnavailableError`.
    batch_max_messages:
        Maximum successor-bound ring messages coalesced into one wire
        frame (:func:`repro.transport.reliable.encode_batch`).  Each
        message keeps its own session sequence number, so FIFO order,
        cumulative acks and duplicate suppression are untouched; the
        batch only changes how many segments share a frame.  ``1``
        disables batching.  Pulls stop early when the successor changes
        mid-drain (a queued reconfiguration message may retarget the
        ring) so a frame never mixes destinations.  The default of 4 is
        the measured sweet spot: per-frame overhead amortises with no
        visible store-and-forward latency cost, whereas deep batches
        (16) inflate per-hop latency enough to cost ~8 % simulated
        throughput at 4 KiB values (see docs/perf.md).  Runtimes apply
        the knob on *dedicated* ring links only: on the shared topology
        (one NIC for ring and client traffic) a k-message frame would
        take a k-fold share of the frame-granular round-robin and
        starve read replies, so the limit degenerates to 1 there.  The
        simulator additionally bounds the effective depth by ring size
        (``k*n <= 16``): frames store-and-forward whole per hop, so
        deep batches on long rings delay commits enough to sag
        contended read throughput (figure 3c at n=8).
    view_quorum:
        Epoch-guarded, quorum-installed ring views — the operating mode
        for clusters running the *imperfect* (heartbeat) failure
        detector.  Suspicions no longer splice the view directly:
        membership changes only through a reconfiguration commit whose
        token traversed (and was therefore acked by) a majority of the
        previous view's alive members, data traffic is rejected across
        epochs, and a wrongly suspected server pauses instead of serving
        possibly-stale reads.  Runtimes enable this automatically when
        built with ``fd="heartbeat"``; with the perfect detector the
        flag stays off and suspicion remains a crash certificate.
    read_leases:
        Epoch-scoped read leases (docs/leases.md).  The heartbeat
        detector grants per-server leases bounded below the suspicion
        timeout; a server holding a valid lease for its installed epoch
        serves reads locally with zero ring messages, and falls back to
        a full-circle :class:`~repro.core.messages.ReadFence` otherwise.
        Requires ``view_quorum`` (the lease safety argument leans on
        epoch-guarded installs and their wait-out); runtimes reject the
        flag under the perfect detector, where reads already serve
        locally whenever no write is pending.
    value_coding:
        ``"replicated"`` (the paper's full-replication ring: every
        server stores and forwards whole values) or ``"coded"`` (the
        CASGC-style backend: values stripe into ``coding_k``-of-
        ``coding_n`` GF(256) fragments, each server durably stores only
        its own ~``1/k``-size fragment, and reads reconstruct from any
        ``k`` fragments — see docs/coding.md).  Tags stay replicated in
        both modes; only value bytes are coded.
    coding_k:
        Data fragments per value under ``value_coding="coded"``: any
        ``coding_k`` of the ``coding_n`` fragments reconstruct the value.
        Higher ``k`` cuts per-server bytes (~``n/k`` total instead of
        ``n``) but tolerates fewer missing fragments.
    coding_n:
        Total fragments per value — must equal the ring size (one
        fragment per member, indexed by ring position).
    """

    piggyback_commits: bool = True
    max_piggybacked_commits: int = 64
    fair_forwarding: bool = True
    batch_max_messages: int = 4
    client_timeout: float = 5.0
    client_max_retries: int = 16
    view_quorum: bool = False
    read_leases: bool = False
    value_coding: str = "replicated"
    coding_k: int = 2
    coding_n: int = 4

    def validate(self) -> "ProtocolConfig":
        """Raise :class:`ConfigurationError` on nonsensical settings."""
        if self.max_piggybacked_commits < 1:
            raise ConfigurationError("max_piggybacked_commits must be >= 1")
        if self.batch_max_messages < 1:
            raise ConfigurationError("batch_max_messages must be >= 1")
        if self.client_timeout <= 0:
            raise ConfigurationError("client_timeout must be > 0")
        if self.client_max_retries < 0:
            raise ConfigurationError("client_max_retries must be >= 0")
        if self.read_leases and not self.view_quorum:
            raise ConfigurationError(
                "read_leases requires view_quorum: lease safety rests on "
                "epoch-guarded installs and the old-epoch wait-out"
            )
        if self.value_coding not in ("replicated", "coded"):
            raise ConfigurationError(
                f"value_coding must be 'replicated' or 'coded', "
                f"got {self.value_coding!r}"
            )
        if self.value_coding == "coded":
            if not self.view_quorum:
                raise ConfigurationError(
                    "value_coding='coded' requires view_quorum: with only "
                    "a fragment per server, quorum-installed views are what "
                    "keeps >= k fragment holders in every installed ring"
                )
            if not 1 <= self.coding_k <= self.coding_n:
                raise ConfigurationError(
                    f"need 1 <= coding_k <= coding_n, got "
                    f"k={self.coding_k}, n={self.coding_n}"
                )
            # Liveness bound: a quorum-installed view keeps a majority
            # of the full ring alive, so n - f >= k must hold for
            # f = n - (n // 2 + 1) crashed members — otherwise a legal
            # view could retain fewer than k fragment holders.
            if self.coding_k > self.coding_n // 2 + 1:
                raise ConfigurationError(
                    f"coding_k={self.coding_k} exceeds the view-quorum "
                    f"liveness bound n - f = {self.coding_n // 2 + 1} for "
                    f"n={self.coding_n}: a majority view could hold fewer "
                    "than k fragments"
                )
        return self
