"""The paper's contribution: the high-throughput atomic storage algorithm.

The package is organised as sans-I/O state machines plus a thin public
facade:

* :mod:`repro.core.tags` — logical timestamps ``(ts, server_id)`` ordered
  lexicographically;
* :mod:`repro.core.messages` — every client and ring message, with wire
  size accounting;
* :mod:`repro.core.fairness` — the ``nb_msg`` fair forwarding scheduler
  (pseudocode lines 53–75);
* :mod:`repro.core.ring` — ring views, successor computation and the
  crash-time adopter rule;
* :mod:`repro.core.server` — the server state machine (pseudocode lines
  11–93 plus the reconfiguration protocol);
* :mod:`repro.core.client` — the client state machine (retry on crash);
* :mod:`repro.core.storage` — the blocking public API over a simulated
  cluster;
* :mod:`repro.core.sharded` — a multi-register store composed of
  independent registers, the "distributed storage system" layer the
  paper's introduction motivates.
"""

from repro.core.client import ClientProtocol
from repro.core.config import ProtocolConfig
from repro.core.messages import (
    ClientRead,
    ClientWrite,
    Commit,
    PreWrite,
    ReadAck,
    ReconfigCommit,
    ReconfigToken,
    StateSync,
    WriteAck,
)
from repro.core.ring import RingView
from repro.core.server import ServerProtocol
from repro.core.storage import AtomicStorage
from repro.core.tags import Tag

__all__ = [
    "AtomicStorage",
    "ClientProtocol",
    "ClientRead",
    "ClientWrite",
    "Commit",
    "PreWrite",
    "ProtocolConfig",
    "ReadAck",
    "ReconfigCommit",
    "ReconfigToken",
    "RingView",
    "ServerProtocol",
    "StateSync",
    "Tag",
    "WriteAck",
]
