"""The server state machine of the atomic storage algorithm.

This module implements the paper's pseudocode lines 11–93 as a sans-I/O
state machine, plus the crash-reconfiguration protocol the paper defers to
its full version.  The mapping to the pseudocode:

====================================  =======================================
Pseudocode                            Here
====================================  =======================================
lines 11–17 (initialisation)          :meth:`ServerProtocol.__init__`
lines 18–20 (receive <write> req)     :meth:`_on_client_write`
lines 21–28 (procedure write)         :meth:`_initiate_write`
lines 29–40 (receive <pre_write>)     :meth:`_on_pre_write`
lines 41–52 (receive <write>)         :meth:`_process_commit`
lines 53–75 (task queue handler)      :meth:`next_ring_message` +
                                      :class:`~repro.core.fairness.FairScheduler`
lines 76–84 (receive <read>)          :meth:`_on_client_read`
lines 85–93 (upon pj crashed)         :meth:`on_server_crash` + reconfig
====================================  =======================================

Differences from the published pseudocode (deliberate fixes or stated
optimisations; see DESIGN.md section 5):

* **Commit messages carry tags only, and piggyback.**  Every server
  stores a pending write's *value* when it forwards the pre-write, so the
  second-phase ("write") message does not need to repeat the value;
  commit tags ride on the next outgoing ring message (Section 4.2's
  "write messages are piggybacked ... without the need for explicit
  acknowledgements").
* **Staleness-terminated commits.**  A commit tag circulates until it
  reaches the first server that already processed it (tracked by a
  per-origin committed-timestamp watermark).  In the failure-free case
  that is one full circle plus one hop; the origin acks its client when
  the tag comes back around.  Unlike terminate-at-origin, this rule stays
  correct when a commit is re-issued by a *different* server during crash
  recovery.
* **Duplicate filtering.**  The pseudocode re-adds ``msg.tag`` to the
  pending set whenever a message is forwarded (line 71), which would
  wedge reads if a crash-retransmitted duplicate were forwarded after its
  commit.  The watermark plus the pending/queued tag sets drop every
  duplicate.
* **Epoch reconfiguration instead of bare retransmission.**  On a crash,
  the detector (the crashed server's alive predecessor) pushes its state
  to the new successor (pseudocode line 88), then circulates a
  state-merge token around the new ring followed by a commit of the
  merged state, and finally re-commits every surviving pending write.
  This subsumes the pseudocode's retransmission (lines 89–91) and
  additionally resolves writes whose origin crashed — otherwise a read
  could block forever on an orphaned pre-write — and redistributes values
  for pre-writes that died mid-ring.
* **Epoch-guarded, quorum-installed views (imperfect detector).**  With
  ``config.view_quorum`` (the operating mode behind the runtimes'
  ``fd="heartbeat"`` option) the perfect-detector shortcut above is
  replaced: suspicion (:meth:`on_suspect`) may be *wrong*, so it never
  splices the view — it pauses the server and, after a grace delay, the
  runtime asks for a proposal (:meth:`propose_reconfig`).  A proposal
  launches only when the surviving members of the installed view form a
  majority of it; its token is admitted only over exactly that view
  (``epoch == installed + 1``), at most one proposal per view wins the
  per-view promise (lowest coordinator id; a forwarded competitor
  abandons one's own attempt), and the commit installs the new view
  wholesale with a strictly larger epoch.  Data traffic across epochs
  is rejected, wrongly excluded servers are fenced with
  :class:`StaleEpochNotice` and fold back in as rejoiners via the
  revived merge.  Full design rationale: docs/reconfiguration.md.
* **At-most-one commit per client write.**  Aggressive retries can get
  one operation initiated under two tags at two servers concurrently
  (partition-heal bursts make this common); each server endorses at
  most one tag per operation (lowest wins, deterministically), an
  origin only commits a returning pre-write it still endorses, and the
  reconfiguration merge keeps one entry per operation — so one write
  can never acquire two write points.
* **Client-operation deduplication.**  Pre-writes carry the client
  operation id; servers remember the highest completed sequence number
  per client (merged during reconfiguration), so a client retrying a
  write whose ack was lost gets an ack instead of a second write.
* **Superseded-initiation hygiene.**  With aggressive client timeouts a
  retry can land at a server that has not yet seen the original
  pre-write (it is stalled, not lost — the session layer retransmits),
  so the same client operation can be *initiated twice* under different
  tags.  Three rules keep that safe.  (1) A server drops any pre-write
  whose operation it already recorded as completed, so a late duplicate
  circle breaks as soon as the real commit has passed.  (2) Each server
  tracks the highest timestamp it has ever *seen* (``ts_seen``, fed by
  every pre-write, commit, state sync and merge — including dropped
  duplicates) and initiates strictly above it; therefore any write that
  begins after an operation was acknowledged outbids every tag that
  operation was ever initiated under, and a straggler duplicate commit
  can never override a newer value (the monotone install rejects it).
  (3) When a commit completes an operation, same-operation pending
  entries under other tags are zombies: they are dropped, their ack
  waiters are answered with the committed tag, and read thresholds
  referencing them are clamped — likewise at reconfiguration, where the
  merged ``completed_ops`` filters them out of the merged pending set so
  the post-merge re-commit cannot resurrect them.
* **Crash recovery.**  The paper's model is crash-stop; this server
  additionally supports restart-and-rejoin, the recovery model of
  erasure-coded atomic-storage successors.  A server persists a
  write-ahead snapshot (:mod:`repro.core.durable`) before any reply
  leaves a handler; after a restart, :meth:`ServerProtocol.restore`
  reloads it and the server comes back *rejoining*: paused, deferring
  reads, and announcing itself (:class:`RejoinRequest`) to a live
  sponsor.  The sponsor folds it back in by coordinating a
  reconfiguration whose token is marked ``revived`` — every receiver
  splices the rejoiner into its ring view before merging, so the token
  and commit traverse the *grown* ring, the rejoiner contributes its
  recovered pending set to the merge, and the commit that ends the
  reconfiguration is exactly the point at which the rejoiner is caught
  up and resumes service.  Snapshotted ``ts_seen`` keeps post-restart
  initiations above every tag the server ever touched, and the
  persisted reconfiguration nonce counter keeps restarted coordinators
  from reusing nonces.
* **Erasure-coded value backend** (``config.value_coding = "coded"``;
  docs/coding.md).  Instead of every server storing every value, the
  origin stripes each write into ``coding_n`` systematic GF(256)
  fragments (:mod:`repro.core.coding`) and sends each ring member only
  *its* fragment directly (:class:`FragmentStore`), while an
  empty-value pre-write circulates as the durability control circle.  A
  receiver parks the pre-write until its fragment arrives, so the full
  circle still proves "every member stores (its share of) the value".
  Tags, commits and the whole control plane stay replicated — only the
  value payload is striped, cutting ring bytes per write from ``n·V``
  to roughly ``(n-1)·V/k``.  Reads reconstruct the full value from
  ``k`` fragments (own + :class:`FragmentFetch`/:class:`FragmentReply`
  from peers) through a single-entry cache; the reconfiguration merge
  unions fragment sets across the token circle and re-derives a
  server's own fragment from any ``k`` others (the RADON-style repair
  path, also used by restarted rejoiners).  Coded mode requires
  ``view_quorum`` and ``coding_k`` within the majority-liveness bound,
  so every installed view retains at least ``k`` fragment holders.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.core import coding
from repro.core.config import ProtocolConfig
from repro.core.durable import ServerSnapshot, SnapshotStore
from repro.core.fairness import INITIATE_OWN, FairScheduler
from repro.core.messages import (
    ClientMessage,
    ClientRead,
    ClientWrite,
    Commit,
    FragmentFetch,
    FragmentReply,
    FragmentStore,
    OpId,
    PendingEntry,
    PreWrite,
    ReadAck,
    ReadFence,
    ReconfigCommit,
    ReconfigToken,
    RejoinRequest,
    RingMessage,
    StaleEpochNotice,
    StateSync,
    WriteAck,
)
from repro.core.ring import RingView
from repro.core.tags import Tag, max_tag
from repro.errors import ProtocolError
from repro.runtime.interface import Reply


class ServerProtocol:
    """A single server of the atomic storage ring (sans-I/O).

    Runtime contract:

    * deliver inbound traffic via :meth:`on_client_message`,
      :meth:`on_ring_message` and :meth:`on_server_crash`; each returns
      the :class:`~repro.runtime.interface.Reply` effects to send to
      clients;
    * whenever the outgoing ring link is free and :attr:`has_ring_work`
      is true, pull one message with :meth:`next_ring_message` and send
      it to :attr:`successor`; afterwards collect replies produced as a
      side effect with :meth:`drain_replies`.
    """

    def __init__(
        self,
        server_id: int,
        ring: RingView,
        config: Optional[ProtocolConfig] = None,
        initial_value: bytes = b"",
        durable: Optional[SnapshotStore] = None,
    ):
        if server_id not in set(ring.members):
            raise ProtocolError(f"server {server_id} not a ring member")
        self.server_id = server_id
        self.ring = ring
        self.config = (config or ProtocolConfig()).validate()

        # Erasure-coded value backend (config.value_coding == "coded").
        # The fragment index is the server's position in the *member
        # tuple* (immutable across view changes), so every server
        # derives the same indexing without coordination.
        self._coded = self.config.value_coding == "coded"
        if self._coded and self.config.coding_n != len(ring.members):
            raise ProtocolError(
                f"coding_n={self.config.coding_n} must equal the ring size "
                f"({len(ring.members)} members)"
            )
        self._coding_index = ring.members.index(server_id)
        self._k = self.config.coding_k
        self._n = self.config.coding_n

        #: Durable snapshot store (crash recovery).  When set, the
        #: protocol persists a write-ahead snapshot of its committed and
        #: pending state before any reply leaves a handler, so a restart
        #: via :meth:`restore` never forgets an acknowledged operation.
        self.durable = durable
        self._dirty = False

        # Register state (pseudocode line 12): current value and its tag.
        # In coded mode ``value`` holds this server's *fragment* of the
        # committed value, not the value itself.
        self.value: bytes = initial_value
        self.tag: Tag = Tag.ZERO

        # Coded-mode state (all empty/None in replicated mode).
        #: Tag the stored fragment belongs to.  ``None`` means "matches
        #: ``self.tag``"; a merge that advances the tag past the held
        #: fragment leaves this at the old tag (repaired on next read).
        self.frag_tag: Optional[Tag] = None
        #: Single-entry reconstruction cache: last full value decoded
        #: (or originated) here.  Volatile — never snapshotted.
        self._cache_tag: Optional[Tag] = None
        self._cache_value: Optional[bytes] = None
        #: Full values of writes this server originated, kept until the
        #: pre-write's circle returns (they seed the cache, so the
        #: origin's own reads never pay a reconstruction).
        self._origin_values: dict[Tag, bytes] = {}
        #: Fragments received via FragmentStore for pre-writes not yet
        #: forwarded (the pending entry takes the fragment at forward
        #: time).
        self._frag_stash: dict[Tag, bytes] = {}
        #: Pre-writes parked until their fragment arrives: forwarding
        #: before the fragment is stored would break the full-circle
        #: durability proof.
        self._parked_prewrites: dict[Tag, PreWrite] = {}
        #: In-flight reconstructions: nonce -> state dict; plus a
        #: tag -> nonce map so concurrent reads of one tag coalesce
        #: into a single fetch round.
        self._recon: dict[int, dict] = {}
        self._recon_by_tag: dict[Tag, int] = {}
        self._recon_nonce = 0
        if self._coded:
            fragments = coding.encode(initial_value, self._k, self._n)
            self.value = fragments[self._coding_index]
            self._cache_tag, self._cache_value = Tag.ZERO, initial_value

        # pending_write_set (line 13): tag -> PendingEntry.  The value is
        # kept so commits can be tag-only and reconfiguration can
        # redistribute values.
        self.pending: dict[Tag, PendingEntry] = {}

        # write_queue (line 15): client writes not yet initiated.
        self.write_queue: deque[tuple[OpId, bytes, int]] = deque()

        # forward_queue + nb_msg (lines 14, 16): the fairness scheduler.
        self.fair: FairScheduler[PreWrite] = FairScheduler(
            server_id, fair=self.config.fair_forwarding
        )
        #: Tags currently sitting in the forward queue (duplicate filter).
        self.queued_tags: set[Tag] = set()

        # Commit tags awaiting transmission to the successor.
        self.commit_queue: deque[Tag] = deque()

        # Highest committed timestamp per origin: the duplicate filter
        # and the termination rule for circulating commits.
        self.watermark: dict[int, int] = {}

        # Highest timestamp ever observed in any tag, including tags of
        # dropped duplicates.  New initiations go strictly above it, so
        # a superseded duplicate's eventual commit can never outbid a
        # write that started after the operation was acknowledged.
        self.ts_seen: int = 0

        # Client-op bookkeeping.
        self.completed_ops: dict[int, int] = {}  # client -> max committed seq
        # The commit tag behind each client's max completed seq, where
        # this server knows it (it processed the commit, resolved the
        # write locally, or learned it from a merge).  Lets a
        # deduplicated retry be acked with the *real* committed tag, so
        # completions stay tagged even when the original ack was lost —
        # the benchmark-scale gate requires 100% tag coverage.
        self.completed_tags: dict[int, Tag] = {}
        self.op_index: dict[OpId, Tag] = {}  # in-flight client write -> tag
        self.ack_waiters: dict[Tag, list[tuple[int, OpId]]] = {}

        # Read waiters (line 81): (threshold tag, client, op).
        self.read_waiters: list[tuple[Tag, int, OpId]] = []

        # Reconfiguration state.
        self.paused = False
        self.control_queue: deque[RingMessage] = deque()
        self.deferred_reads: deque[tuple[int, ClientRead]] = deque()
        self._reconfig_counter = 0
        self._seen_reconfigs: set[tuple[int, int]] = set()  # (coordinator, nonce)

        # Crash-recovery state.  A restored server stays in ``rejoining``
        # (paused, announcing itself) until a reconfiguration commit
        # folds it back into the ring; a live server sponsoring someone
        # else's rejoin defers the request while it is itself paused.
        self.rejoining = False
        self.restart_generation = 0
        self._rejoin_sponsor: Optional[int] = None
        self._deferred_rejoins: deque[RejoinRequest] = deque()

        # Epoch-guarded view state (imperfect-detector mode, enabled by
        # ``config.view_quorum``).  ``installed_epoch`` is the epoch of
        # the last *committed* view — the reference every guard compares
        # against (``self.ring`` may run ahead tentatively while a
        # reconfiguration token circulates).  ``suspected`` mirrors the
        # runtime's heartbeat tracker; suspicion pauses the server but
        # never mutates the view directly — only a quorum-installed
        # commit does.  ``view_log`` records every install for the
        # epoch-agreement property tests.
        self.installed_epoch = ring.epoch
        #: The last *committed* view.  ``self.ring`` may run ahead
        #: tentatively while a reconfiguration token circulates (routing
        #: follows the proposal); quorum and base-epoch checks always
        #: anchor here.
        self.installed_view = ring
        self.suspected: set[int] = set()
        self._suspicion_paused = False
        #: One forwarded token per installed view: (base epoch,
        #: coordinator, nonce).  Competing proposals for the same base
        #: are refused unless they outrank the promise (lower
        #: coordinator id, or a fresh retry by the same coordinator), so
        #: two interleaved tokens can never both complete their circle
        #: and install divergent views at the same epoch.
        self._promise: Optional[tuple[int, int, int]] = None
        #: Nonce of this server's own in-flight proposal, if any.
        self._attempt_nonce: Optional[int] = None
        #: Rejoiners that announced themselves (rid -> claimed epoch).
        #: A rejoiner that is alive in the installed view but stale —
        #: restarted before its exclusion installed, or demoted by the
        #: epoch guard — must ride the next proposal as ``revived`` so
        #: the base check lets it merge and catch up; cleared at every
        #: install (still-stale members re-announce).
        self._announced_rejoiners: dict[int, int] = {}
        #: Set by handlers when the runtime should (re-)evaluate the
        #: view proposal after the detector's grace delay.
        self.reconcile_due = False
        #: Directed out-of-ring-order messages (StaleEpochNotice), pulled
        #: by the runtime ahead of ring traffic.
        self.outbox: deque[tuple[int, RingMessage]] = deque()
        self._stale_notified: dict[int, int] = {}  # peer -> epoch notified at
        self.view_log: list[tuple[int, int, int]] = []  # (epoch, coordinator, nonce)

        # Epoch-scoped read leases (``config.read_leases``; docs/leases.md).
        # The runtime owns every clock — grant receipt, expiry, the
        # old-epoch wait-out — and pushes the results in
        # (:meth:`on_lease_update`, :meth:`lease_waitout_elapsed`), so
        # the state machine stays clockless.  None of this state is
        # snapshotted: a restarted server re-earns its lease from
        # scratch, which is what makes excluding leases from durable
        # state a safety feature rather than an omission.
        self.lease_valid = False
        self.lease_epoch = -1
        #: Fences awaiting transmission to the successor (ours and
        #: forwarded), drained behind commit traffic when not paused.
        self.fence_queue: deque[ReadFence] = deque()
        self._fence_nonce = 0
        #: Fence nonce -> reads served when that fence completes its circle.
        self._fence_waiters: dict[int, list[tuple[int, ClientRead]]] = {}
        #: While true (set at a view install that excluded members), new
        #: write initiations are gated until every lease granted under
        #: the old epoch has provably expired (HeartbeatConfig.waitout).
        self._lease_waitout = False
        #: Set by :meth:`_install_view` when a wait-out starts; the
        #: runtime consumes it (clearing it) and arms the wait-out timer,
        #: mirroring the ``reconcile_due`` handshake.
        self.lease_waitout_due = False
        #: Coordinator's post-merge re-commit tags, stashed while the
        #: wait-out runs (re-committing them sooner could complete a
        #: write an old-epoch leaseholder has never seen).
        self._waitout_commit_tags: list[Tag] = []

        self._replies: list[Reply] = []

        # Statistics (read by the benchmark harness and tests).
        self.stats_reads_served = 0
        self.stats_reads_waited = 0
        self.stats_writes_initiated = 0
        self.stats_forwards = 0
        self.stats_commits_processed = 0
        self.stats_duplicates_dropped = 0
        self.stats_superseded_dropped = 0
        self.stats_reconfigs = 0
        self.stats_commit_unknown_tag = 0
        self.stats_rejoins_sponsored = 0
        self.stats_stale_epoch_dropped = 0
        self.stats_quorum_stalls = 0
        self.stats_epoch_rejected_reconfigs = 0
        self.stats_confirm_reconfigs = 0
        self.stats_lease_local_reads = 0
        self.stats_lease_fallbacks = 0
        self.stats_lease_waitouts = 0
        self.stats_coding_fragment_stores = 0
        self.stats_coding_cache_reads = 0
        self.stats_coding_reconstructions = 0
        self.stats_coding_repairs = 0
        self.stats_coding_pending_dropped = 0

    # ------------------------------------------------------------------
    # Durable state (crash recovery)
    # ------------------------------------------------------------------

    def snapshot(self) -> ServerSnapshot:
        """An immutable copy of everything a restart must reload.

        The forward queue is deliberately excluded: a queued pre-write
        still lives in its sender's pending set, and the rejoin merge
        redistributes it.  Session-layer state is likewise excluded — a
        restart is a new channel.
        """
        # The dict-valued fields are captured in insertion order rather
        # than sorted: ``restore`` rebuilds dicts from them, so ordering
        # is semantically irrelevant, and this method runs once per ring
        # send (write-ahead persistence) — sorting here was ~a third of
        # the write hot path.
        return ServerSnapshot(
            server_id=self.server_id,
            members=tuple(self.ring.members),
            dead=tuple(sorted(self.ring.dead)),
            tag=self.tag,
            value=self.value,
            ts_seen=self.ts_seen,
            watermark=tuple(self.watermark.items()),
            completed_ops=tuple(self.completed_ops.items()),
            pending=tuple(self.pending.values()),
            reconfig_counter=self._reconfig_counter,
            epoch=self.installed_epoch,
            completed_tags=tuple(self.completed_tags.items()),
            frag_tag=self.frag_tag,
        )

    @classmethod
    def restore(
        cls,
        server_id: int,
        members,
        snapshot: Optional[ServerSnapshot],
        config: Optional[ProtocolConfig] = None,
        durable: Optional[SnapshotStore] = None,
        *,
        initial_value: bytes = b"",
        alone: bool = False,
        generation: int = 1,
    ) -> "ServerProtocol":
        """Rebuild a server from its durable snapshot after a restart.

        ``snapshot`` may be ``None`` (the server crashed before it ever
        persisted); recovery then starts from initial state —
        ``initial_value`` must match what the server was originally
        built with, or a pre-populated register would restart empty.  With
        ``alone=False`` the server comes back *rejoining*: paused,
        deferring reads, and announcing itself until a reconfiguration
        commit folds it back into the ring with the merged state.  With
        ``alone=True`` (no other server is alive) there is nobody to
        rejoin: the server resumes immediately as the sole survivor and
        resolves its recovered pending writes locally.
        """
        members = tuple(members)
        if alone:
            dead = frozenset(members) - {server_id}
        elif snapshot is not None:
            dead = frozenset(snapshot.dead) - {server_id}
        else:
            dead = frozenset()
        epoch = snapshot.epoch if snapshot is not None else 0
        proto = cls(
            server_id,
            RingView(members, dead, epoch),
            config,
            initial_value=initial_value,
            durable=durable,
        )
        proto.installed_epoch = epoch
        proto.installed_view = proto.ring
        if snapshot is not None:
            proto.value = snapshot.value
            proto.tag = snapshot.tag
            proto.frag_tag = snapshot.frag_tag
            if proto._coded and snapshot.tag != Tag.ZERO:
                # The initial-value cache seeded by __init__ no longer
                # matches the restored tag; reads reconstruct instead.
                proto._cache_tag, proto._cache_value = None, None
            proto.ts_seen = snapshot.ts_seen
            proto.watermark = dict(snapshot.watermark)
            proto.completed_ops = dict(snapshot.completed_ops)
            proto.completed_tags = dict(snapshot.completed_tags)
            proto.pending = {entry.tag: entry for entry in snapshot.pending}
            proto.op_index = {entry.op: entry.tag for entry in snapshot.pending}
            proto._reconfig_counter = snapshot.reconfig_counter
        proto.restart_generation = generation
        if alone:
            # Sole survivor: recovered pending writes commit locally, in
            # tag order, exactly as a live server resolves them when the
            # ring shrinks to one.
            if proto.pending:
                proto._resolve_alone()
                proto.drain_replies()  # no client is waiting across a restart
        else:
            proto.rejoining = True
            proto.paused = True
        proto._dirty = True
        proto._maybe_persist()
        return proto

    @classmethod
    def from_transfer(
        cls,
        server_id: int,
        members,
        snapshot: Optional[ServerSnapshot],
        config: Optional[ProtocolConfig] = None,
        durable: Optional[SnapshotStore] = None,
        *,
        initial_value: bytes = b"",
        generation: int = 0,
    ) -> "ServerProtocol":
        """Adopt a migrated block's state on a *new* ring (live migration).

        The third install mode, distinct from :meth:`restore`'s two: the
        rebalancer drained the source ring before snapshotting, so the
        snapshot carries no pending writes, and every member of the
        destination ring installs the *same* state over the same
        fully-alive view — there is nothing to merge and nobody to
        rejoin (``restore(alone=False)`` would leave all destination
        members paused waiting to sponsor each other).  The server starts
        serving the moment the placement cutover routes traffic to it.

        The view epoch continues from the snapshot's: a frame from the
        source ring's superseded incarnation that survives in the fabric
        can never outrank the destination's installed epoch.
        """
        members = tuple(members)
        epoch = snapshot.epoch if snapshot is not None else 0
        proto = cls(
            server_id,
            RingView(members, frozenset(), epoch),
            config,
            initial_value=initial_value,
            durable=durable,
        )
        proto.installed_epoch = epoch
        proto.installed_view = proto.ring
        if snapshot is not None:
            proto.value = snapshot.value
            proto.tag = snapshot.tag
            proto.frag_tag = snapshot.frag_tag
            if proto._coded and snapshot.tag != Tag.ZERO:
                proto._cache_tag, proto._cache_value = None, None
            proto.ts_seen = snapshot.ts_seen
            proto.watermark = dict(snapshot.watermark)
            proto.completed_ops = dict(snapshot.completed_ops)
            proto.completed_tags = dict(snapshot.completed_tags)
            proto._reconfig_counter = snapshot.reconfig_counter
            # pending is deliberately *not* installed: the drain predicate
            # (:meth:`quiescent` on every alive source member) guarantees
            # the snapshot was taken with an empty pending set, and a
            # non-empty one here would mean the handoff raced the drain.
            if snapshot.pending:
                raise ProtocolError(
                    f"block transfer snapshot for server {server_id} carries "
                    f"{len(snapshot.pending)} pending write(s); the source "
                    "ring was not drained"
                )
        proto.restart_generation = generation
        proto._dirty = True
        proto._maybe_persist()
        return proto

    def quiescent(self) -> bool:
        """No client-visible work in flight on this block.

        The migration drain predicate: a snapshot taken while every
        alive member of the source ring reports quiescent carries no
        pending writes, no queued client work and no circulating ring
        traffic originated here — so the destination ring can adopt it
        with :meth:`from_transfer` without a merge.  A rejoining or
        paused member is *not* quiescent: its state may trail the ring.
        """
        return not (
            self.pending
            or self.write_queue
            or self.commit_queue
            or self.queued_tags
            or self.fence_queue
            or self.ack_waiters
            or self.read_waiters
            or self.deferred_reads
            or self.rejoining
            or self.paused
            or self.has_ring_work
        )

    def queue_rejoin_announce(self, sponsor: int) -> None:
        """Target the next rejoin announcement at ``sponsor``.

        The runtime picks sponsors (any server it believes alive) and
        re-queues announcements on a timer until :attr:`rejoining`
        clears; the request itself is idempotent at the sponsor.
        """
        if self.rejoining:
            self._rejoin_sponsor = sponsor

    def next_rejoin_announce(self) -> Optional[tuple[int, RejoinRequest]]:
        """The pending ``(sponsor, announcement)``, if one is queued.

        Pulled by the runtime's outbound pump ahead of ring traffic —
        the announcement travels outside ring order because the
        rejoiner is not part of anyone's ring yet.
        """
        if self._rejoin_sponsor is None:
            return None
        sponsor, self._rejoin_sponsor = self._rejoin_sponsor, None
        return sponsor, RejoinRequest(
            self.server_id, self.restart_generation, self.installed_epoch
        )

    def next_directed_message(self) -> Optional[tuple[int, RingMessage]]:
        """The next out-of-ring-order ``(destination, message)``, if any.

        Pulled by the runtime's outbound pump ahead of ring traffic:
        rejoin announcements, stale-epoch notices and reconfiguration
        tokens whose first hop differs from the installed successor.
        """
        announce = self.next_rejoin_announce()
        if announce is not None:
            return announce
        if self.outbox:
            return self.outbox.popleft()
        return None

    def complete_rejoin_alone(self) -> None:
        """End a rejoin with no live sponsor: this server is the ring.

        The runtime calls this when every other server is dead — there
        is nobody to announce to, and with a perfect failure detector
        "nobody answers" *means* "nobody is alive".  Recovered pending
        writes resolve locally, exactly as a live sole survivor resolves
        them when the ring shrinks to one.
        """
        if not self.rejoining:
            return
        self.ring = RingView(
            self.ring.members,
            frozenset(self.ring.members) - {self.server_id},
            max(self.ring.epoch, self.installed_epoch) + 1,
        )
        self.installed_epoch = self.ring.epoch
        self.installed_view = self.ring
        self.rejoining = False
        self._rejoin_sponsor = None
        self._resolve_alone()
        self._maybe_persist()

    def _mark_dirty(self) -> None:
        self._dirty = True

    def _maybe_persist(self) -> None:
        if self._dirty and self.durable is not None:
            self.durable.save(self.snapshot())
            self._dirty = False

    # ------------------------------------------------------------------
    # Public protocol surface
    # ------------------------------------------------------------------

    @property
    def successor(self) -> int:
        """Current ring successor (pseudocode ``pnext``)."""
        return self.ring.successor(self.server_id)

    @property
    def alone(self) -> bool:
        """True when this server is the only survivor."""
        return self.ring.num_alive == 1

    def on_client_message(self, client: int, message: ClientMessage) -> list[Reply]:
        """Handle a client request (pseudocode lines 18–20 and 76–84)."""
        if isinstance(message, ClientWrite):
            self._on_client_write(client, message)
        elif isinstance(message, ClientRead):
            self._on_client_read(client, message)
        else:
            raise ProtocolError(f"unexpected client message: {message!r}")
        self._maybe_persist()
        return self.drain_replies()

    def on_ring_message(
        self, message: RingMessage, sender: Optional[int] = None
    ) -> list[Reply]:
        """Handle a message from the ring predecessor.

        ``sender`` is the hop sender's server id when the runtime knows
        it; the epoch guard uses it to notify a stale peer that the ring
        moved on without it.
        """
        if self.config.view_quorum and isinstance(
            message,
            (PreWrite, Commit, StateSync, ReadFence,
             FragmentStore, FragmentFetch, FragmentReply),
        ):
            # Epoch guard: data traffic is valid only within the sender's
            # and receiver's *common* installed view.  Traffic from an
            # older epoch is a wrongly-suspected (or healed) server that
            # does not know it was excluded — tell it; traffic from a
            # newer epoch means *we* are the stale one (possible only on
            # reordered seams) and must not process writes we cannot
            # place.
            if message.epoch != self.installed_epoch:
                # This path touches only stats and the outbox — nothing
                # the snapshot covers — so no persist is needed here
                # (the writeahead staticheck rule proves every handler
                # leaves covered state clean).
                self.stats_stale_epoch_dropped += 1
                if message.epoch < self.installed_epoch and sender is not None:
                    self._notify_stale(sender)
                return self.drain_replies()
        if isinstance(message, PreWrite):
            self._process_commits(message.commits)
            self._on_pre_write(message)
        elif isinstance(message, Commit):
            self._process_commits(message.commits)
        elif isinstance(message, StateSync):
            self._process_commits(message.commits)
            self._on_state_sync(message)
        elif isinstance(message, ReconfigToken):
            self._on_reconfig_token(message)
        elif isinstance(message, ReconfigCommit):
            self._on_reconfig_commit(message)
        elif isinstance(message, RejoinRequest):
            self._on_rejoin_request(message)
        elif isinstance(message, StaleEpochNotice):
            self._on_stale_epoch(message)
        elif isinstance(message, ReadFence):
            self._on_read_fence(message)
        elif isinstance(message, FragmentStore):
            self._on_fragment_store(message)
        elif isinstance(message, FragmentFetch):
            self._on_fragment_fetch(message)
        elif isinstance(message, FragmentReply):
            self._on_fragment_reply(message)
        else:
            raise ProtocolError(f"unexpected ring message: {message!r}")
        self._maybe_persist()
        return self.drain_replies()

    def on_server_crash(self, crashed: int) -> list[Reply]:
        """Perfect-failure-detector notification (pseudocode lines 85–93)."""
        if crashed == self.server_id:
            raise ProtocolError("a server cannot be notified of its own crash")
        if crashed in self.ring.dead or crashed not in set(self.ring.members):
            return self.drain_replies()

        if self.rejoining:
            # Not part of anyone's ring yet: note the crash, stay paused.
            # Coordinating a reconfiguration from outside the ring would
            # circulate a token nobody routes back (every survivor still
            # considers this server dead); the announcement retry brings
            # us in through a live sponsor instead.
            self.ring = self.ring.without(crashed)
            self._maybe_persist()
            return self.drain_replies()

        was_successor = self.successor == crashed
        self.ring = self.ring.without(crashed)
        self.stats_reconfigs += 1

        if self.alone:
            self._resolve_alone()
            self._maybe_persist()
            return self.drain_replies()

        if was_successor:
            # We are the detector: splice the ring (line 87), push our
            # committed state to the new successor (line 88), then run
            # the state-merge reconfiguration, which subsumes the
            # pending-pre-write retransmission of lines 89-91.
            self.control_queue.append(StateSync(self.tag, self.value))
            self._start_reconfig()
        else:
            # Await the coordinator's token; suspend normal ring traffic.
            self.paused = True
        self._maybe_persist()
        return self.drain_replies()

    # ------------------------------------------------------------------
    # Imperfect failure detector (epoch-guarded views, config.view_quorum)
    # ------------------------------------------------------------------

    def on_suspect(self, peer: int) -> list[Reply]:
        """Heartbeat-detector suspicion of ``peer`` (may be wrong!).

        Unlike :meth:`on_server_crash`, suspicion never splices the
        view.  It (1) pauses this server — if a view member may be gone,
        locally-served reads are no longer provably fresh, and a server
        on the wrong side of a partition must stop serving *before* the
        other side installs a view without it — and (2) asks the runtime
        to re-evaluate the view proposal after the detector's grace
        delay (:attr:`reconcile_due`).
        """
        if not self.config.view_quorum:
            raise ProtocolError("on_suspect requires view_quorum mode")
        if peer == self.server_id or peer not in set(self.ring.members):
            return self.drain_replies()
        if peer in self.suspected:
            return self.drain_replies()
        self.suspected.add(peer)
        if self._promise is not None and self._promise[1] == peer:
            # The coordinator we promised this view transition to may be
            # gone; release the promise so a surviving proposer can move
            # the epoch.
            self._promise = None
        if self.installed_view.is_alive(peer) and not self.rejoining:
            self.paused = True
            self._suspicion_paused = True
            self.reconcile_due = True
        return self.drain_replies()

    def on_unsuspect(self, peer: int) -> list[Reply]:
        """A suspected peer's heartbeat arrived late: it is alive.

        The wrong suspicion is withdrawn; if the peer was already
        excluded from the installed view, re-admitting it takes a
        reconfiguration (the runtime is asked to propose one), and if we
        paused over a suspicion that has now evaporated, a *confirm*
        reconfiguration proves the view is still live before we resume.
        """
        if not self.config.view_quorum:
            raise ProtocolError("on_unsuspect requires view_quorum mode")
        if peer not in self.suspected:
            return self.drain_replies()
        self.suspected.discard(peer)
        if not self.rejoining and (
            self._suspicion_paused
            or peer in self.installed_view.dead
        ):
            self.reconcile_due = True
        return self.drain_replies()

    # ------------------------------------------------------------------
    # Read leases (config.read_leases; docs/leases.md)
    # ------------------------------------------------------------------

    def on_lease_update(self, valid: bool, epoch: int) -> list[Reply]:
        """Runtime-pushed lease validity transition.

        ``epoch`` is the epoch the runtime's :class:`~repro.fd.heartbeat.
        ReadLease` found every required grant stamped with; serving
        additionally requires it to equal :attr:`installed_epoch` at
        read time (checked per read, so a view install between updates
        cannot be served against).
        """
        self.lease_valid = valid
        self.lease_epoch = epoch if valid else -1
        return self.drain_replies()

    def may_grant_lease(self, peer: int) -> bool:
        """Grantor-side gate: may this server extend ``peer``'s lease?

        Grants flow only toward peers the grantor currently believes
        are full, caught-up members of its installed view: never to a
        suspect (suspicion and a live grant would let the detector's
        two hands disagree), never to an announced rejoiner (it holds
        stale state until the revived merge catches it up — a lease
        would let it serve that state), and never while this server is
        itself paused, rejoining, or mid-proposal (its own view may be
        about to move).
        """
        if not (self.config.read_leases and self.config.view_quorum):
            return False
        if self.rejoining or self.paused:
            return False
        if peer == self.server_id or not self.installed_view.is_alive(peer):
            return False
        if peer in self.suspected or peer in self._announced_rejoiners:
            return False
        return True

    def lease_waitout_elapsed(self, epoch: int) -> list[Reply]:
        """The old-epoch lease wait-out for ``epoch`` ran its course.

        Every lease granted under the superseded view has now provably
        expired on its holder's clock (drift bound included), so the new
        epoch may complete writes: initiation un-gates, and the
        coordinator's stashed post-merge re-commits flow.  A stale
        timer — a newer view installed meanwhile — is ignored; that
        install started its own wait-out.
        """
        if epoch != self.installed_epoch or not self._lease_waitout:
            return self.drain_replies()
        self._lease_waitout = False
        for tag in self._waitout_commit_tags:
            self.commit_queue.append(tag)
        self._waitout_commit_tags = []
        return self.drain_replies()

    def propose_reconfig(self) -> list[Reply]:
        """Re-evaluate the view proposal (runtime-called, grace-delayed).

        Compares the detector's suspicion set against the installed
        view and, when this server is the responsible coordinator and
        the proposed view retains an ack quorum of the current one,
        launches the state-merge reconfiguration.  Without quorum the
        proposal is *refused*: the server stays paused — wrong suspicion
        costs liveness, never linearizability — until a heal shrinks the
        suspicion set.  A suspicion-paused server whose suspicions have
        all evaporated runs a membership-preserving *confirm*
        reconfiguration: its commit is the proof that the current view
        (not a successor installed elsewhere) is still live, which a
        healed minority cannot produce — its stale-epoch token earns a
        :class:`StaleEpochNotice` and a rejoin instead.
        """
        self.reconcile_due = False
        if not self.config.view_quorum or self.rejoining:
            return self.drain_replies()
        if len(self.ring.members) == 1:
            return self.drain_replies()  # no peers, nothing to suspect
        if (
            self._promise is not None
            and self._promise[0] == self.installed_epoch
            and self._promise[1] != self.server_id
        ):
            # Another coordinator's transition out of this view is in
            # flight and we forwarded its token; proposing against it
            # would only be refused.  Its commit (or its coordinator's
            # suspicion, which releases the promise) re-triggers us.
            return self.drain_replies()
        view = self.installed_view
        members = set(view.members)
        suspected = self.suspected & members
        to_exclude = sorted(s for s in suspected if view.is_alive(s))
        to_readmit = sorted(s for s in view.dead if s not in suspected)
        # Announced rejoiners that are alive in the installed view but
        # claim an *older* epoch are stale, not absent: they restarted
        # before their exclusion installed, or the epoch guard demoted
        # them, or a commit died mid-circle and left them behind.  They
        # must traverse the next token as ``revived`` (exempt from the
        # base-epoch check) to be caught up by the merge — a proposal
        # that routes through them without the marking dies at their
        # staleness forever.  Announcers already *at* our epoch pass the
        # base check unaided and keep their full arbitration role; they
        # merely need some commit to resume, which the confirm branch
        # below guarantees exists.
        announced = [
            (rid, epoch)
            for rid, epoch in sorted(self._announced_rejoiners.items())
            if rid in members
            and rid != self.server_id
            and rid not in suspected
            and view.is_alive(rid)
        ]
        stale_members = sorted(
            rid for rid, epoch in announced if epoch < self.installed_epoch
        )
        current_rejoiners = [
            rid for rid, epoch in announced if epoch >= self.installed_epoch
        ]
        if not to_exclude and not to_readmit and not stale_members:
            if (
                self._suspicion_paused
                or self._attempt_nonce is not None
                or current_rejoiners
            ):
                # Confirm: same membership, next epoch.  Also supersedes
                # a pending attempt of our own whose proposal no longer
                # matches the detector (e.g. it tried to revive a peer
                # that has since fallen silent): the stuck token dies by
                # abandonment and the confirm — which circulates live
                # members only — unblocks everyone promised to us.
                self.stats_confirm_reconfigs += 1
                self._propose_view(set(view.dead), ())
            return self.drain_replies()
        proposed_dead = (set(view.dead) | set(to_exclude)) - set(to_readmit)
        # The ack quorum is counted over the *installed* view's alive
        # members only: the token's full circle collects an ack from
        # every proposed-ring member, but revived servers are not part
        # of the view being superseded (and stale members, though
        # nominally in it, skip the promise arbitration) — neither may
        # pad the count, or a minority plus a rejoiner could
        # out-install the real majority.
        old_acks = len(set(view.alive()) - proposed_dead - set(stale_members))
        if old_acks < view.quorum:
            # No quorum of the current view survives into the proposal:
            # refuse to install.  Both sides of a partition land here
            # symmetrically — neither can move the epoch, so neither
            # can serve, and the first heal re-triggers reconciliation.
            self.stats_quorum_stalls += 1
            self.paused = True
            self._suspicion_paused = True
            return self.drain_replies()
        # No coordinator election: *every* member that sees the diff
        # proposes once its grace timer fires.  A designated coordinator
        # (say, the suspected server's predecessor) can itself be stale,
        # rejoining or freshly crashed — electing it would deadlock the
        # ring — while concurrent proposals are safe by construction:
        # the per-view promise arbitrates toward the lowest coordinator
        # id and every outranked attempt is abandoned mid-circle.
        self.stats_reconfigs += 1
        self._propose_view(
            proposed_dead, tuple(sorted(set(to_readmit) | set(stale_members)))
        )
        return self.drain_replies()

    def _propose_view(self, proposed_dead, revived: tuple[int, ...]) -> None:
        """Coordinator side: circulate a token for the proposed view.

        The coordinator adopts the proposed membership *tentatively*
        (``installed_view``/``installed_epoch`` stay anchored until the
        commit) and sends the token through the ordinary control
        pipeline.  Routing through the ring — never directly to the
        proposal's first hop — is what keeps the happens-before between
        a just-created commit and a follow-up proposal: the token rides
        the same FIFO links behind the commit, so no receiver ever sees
        a proposal based on a view it has not installed yet.
        """
        self.paused = True
        self._reconfig_counter += 1
        self._attempt_nonce = self._reconfig_counter
        self._promise = (
            self.installed_epoch, self.server_id, self._reconfig_counter
        )
        self._mark_dirty()
        token = ReconfigToken(
            nonce=self._reconfig_counter,
            epoch=self.installed_epoch + 1,
            coordinator=self.server_id,
            dead=tuple(sorted(proposed_dead)),
            tag=self.tag,
            value=self._register_blob() if self._coded else self.value,
            pending=self._pending_snapshot(),
            completed_ops=tuple(sorted(self.completed_ops.items())),
            revived=tuple(sorted(revived)),
            completed_tags=tuple(sorted(self.completed_tags.items())),
        )
        self.ring = self.installed_view.at_epoch(
            self.installed_epoch + 1, frozenset(proposed_dead)
        )
        self.control_queue.append(token)
        self._maybe_persist()

    def _notify_stale(self, peer: int) -> None:
        """Queue a StaleEpochNotice to ``peer``, once per installed epoch."""
        if self._stale_notified.get(peer) == self.installed_epoch:
            return
        self._stale_notified[peer] = self.installed_epoch
        self.outbox.append(
            (peer, StaleEpochNotice(self.installed_epoch, self.server_id))
        )

    def _on_stale_epoch(self, message: StaleEpochNotice) -> None:
        """The ring installed views we never saw: stop and rejoin."""
        if not self.config.view_quorum:
            return
        if message.epoch <= self.installed_epoch or self.rejoining:
            return
        self._enter_rejoining()

    def _enter_rejoining(self) -> None:
        """Demote this live-but-stale server to a rejoiner.

        Same posture as a restarted server: paused, deferring reads,
        announcing itself until a sponsor's revived reconfiguration
        commit carries the merged state (including this server's
        recovered pending writes) back to it.  Nothing is discarded —
        the fold-in merge is what redistributes the pending set.
        """
        self.rejoining = True
        self.paused = True
        self._suspicion_paused = False
        self._rejoin_sponsor = None
        self._attempt_nonce = None
        self._promise = None
        # In-flight fragment fetches carry our (now superseded) epoch
        # and can never be answered; route their reads back through the
        # deferred queue to re-reconstruct after the fold-in merge.
        self._requeue_recon_waiters()
        if self.config.read_leases:
            # A rejoiner must re-earn its lease after the fold-in merge;
            # until then nothing may be served locally, and any fence in
            # flight died with our ring membership.
            self.lease_valid = False
            self.lease_epoch = -1
            self._lease_waitout = False
            self._waitout_commit_tags = []
            self._requeue_fence_waiters()

    @property
    def has_ring_work(self) -> bool:
        """Whether :meth:`next_ring_message` would return a message."""
        if self.control_queue or self.outbox:
            return True
        if self.paused or self.alone:
            return False
        return bool(
            self.commit_queue
            or self.write_queue
            or self.fence_queue
            or not self.fair.empty
        )

    def next_ring_message(self) -> Optional[RingMessage]:
        """Pull the next message for the successor (the ``queue handler``
        task, lines 53–75, plus commit piggybacking)."""
        message = self._next_ring_message()
        # Initiating or forwarding mutates the pending set; persist
        # before the message leaves (write-ahead of the wire).
        self._maybe_persist()
        return message

    def next_ring_batch(self, limit: int) -> list[RingMessage]:
        """Pull up to ``limit`` successor-bound messages for one wire
        frame (:attr:`ProtocolConfig.batch_max_messages`).

        Persistence stays write-ahead — the single :meth:`_maybe_persist`
        below runs before the runtime puts any of these messages on the
        wire — but is amortised over the whole batch instead of paid per
        message.  The drain stops early if the successor changes between
        pulls (a control message may retarget the ring) so one frame
        never mixes destinations.
        """
        batch: list[RingMessage] = []
        successor = self.successor
        while len(batch) < limit:
            message = self._next_ring_message()
            if message is None:
                break
            batch.append(message)
            if self.successor != successor:
                break
        # Unconditional: a drain that yields no message may still have
        # mutated covered state (e.g. a duplicate write absorbed during
        # initiation), and _maybe_persist is a no-op when nothing is
        # dirty anyway.
        self._maybe_persist()
        return batch

    def _next_ring_message(self) -> Optional[RingMessage]:
        if self.control_queue:
            return self._attach_commits(self.control_queue.popleft())
        if self.paused or self.alone:
            return None

        choice = self.fair.choose(
            # Initiation is gated while an old-epoch lease wait-out runs:
            # a write completing before every old lease died could be
            # invisible to a leaseholder still serving reads.
            want_initiate=bool(self.write_queue) and not self._lease_waitout
        )
        if choice == INITIATE_OWN:
            message = self._initiate_write()
            if message is not None:
                return self._attach_commits(message)
            if self.write_queue or not self.fair.empty:
                # The popped write was absorbed (duplicate); keep going.
                return self._next_ring_message()
        elif choice is not None:
            _origin, prewrite = choice
            self.queued_tags.discard(prewrite.tag)
            if self._is_stale(prewrite.tag):
                # Committed while queued (possible around reconfigs).
                self.stats_duplicates_dropped += 1
                return self._next_ring_message()
            if self._op_completed(prewrite.op):
                # A duplicate initiation whose operation committed under
                # another tag while this copy sat queued; forwarding it
                # would re-enter it into our pending set as a zombie.
                if self.op_index.get(prewrite.op) == prewrite.tag:
                    del self.op_index[prewrite.op]
                self.stats_superseded_dropped += 1
                return self._next_ring_message()
            endorsed = self.op_index.get(prewrite.op)
            if endorsed is not None and endorsed != prewrite.tag:
                # While this copy sat queued, a lower-tag copy of the
                # same operation was endorsed; forwarding both would let
                # two circles race to commit one write.
                self.stats_superseded_dropped += 1
                return self._next_ring_message()
            entry_value = prewrite.value
            if self._coded:
                # The pre-write circulates empty; the stored share is
                # the stashed fragment (its arrival is what unparked
                # this pre-write, so it is normally present — a merge
                # racing the forward clears both queue and stash, so a
                # missing fragment means the entry is already covered).
                fragment = self._frag_stash.pop(prewrite.tag, None)
                if fragment is None:
                    self.stats_duplicates_dropped += 1
                    return self._next_ring_message()
                entry_value = fragment
            # Line 71: entering pending at *forward* time keeps reads
            # immediate for as long as possible; by the time any commit
            # for this tag can exist, we have forwarded the pre-write.
            self.pending[prewrite.tag] = PendingEntry(
                prewrite.tag, entry_value, prewrite.op
            )
            self.op_index[prewrite.op] = prewrite.tag
            self.stats_forwards += 1
            self._mark_dirty()
            # Build the outgoing pre-write directly with its piggybacked
            # commits rather than routing through _attach_commits, which
            # would construct the PreWrite twice.
            return PreWrite(
                prewrite.tag,
                prewrite.value,
                prewrite.op,
                self._pull_commit_tags(carrier_is_commit=False),
                self.installed_epoch,
            )

        if self.commit_queue:
            return self._attach_commits(Commit(()))
        if self.fence_queue:
            # Behind commit traffic, never ahead of it: a fence must not
            # delay the commits whose arrival answers threshold-waiting
            # reads, and the commit queue fully drains into one carrier.
            return self.fence_queue.popleft()
        return None

    def drain_replies(self) -> list[Reply]:
        """Replies produced since the last drain."""
        replies, self._replies = self._replies, []
        return replies

    # ------------------------------------------------------------------
    # Client requests
    # ------------------------------------------------------------------

    def _on_client_write(self, client: int, message: ClientWrite) -> None:
        op = message.op
        # Duplicate of a committed write (retry after a lost ack):
        # carry the committed tag so the completion stays tag-covered.
        if self._op_completed(op):
            self._reply(client, WriteAck(op, self._completed_tag(op)))
            return
        # Duplicate of an in-flight write: join its ack waiters.
        tag = self.op_index.get(op)
        if tag is not None:
            self.ack_waiters.setdefault(tag, []).append((client, op))
            return
        if self.alone and not self.paused and not self._lease_waitout:
            self._commit_locally(op, message.value, client)
            return
        self.write_queue.append((op, message.value, client))

    def _on_client_read(self, client: int, message: ClientRead) -> None:
        if self.paused:
            # During reconfiguration the pending set is in flux; defer.
            self.deferred_reads.append((client, message))
            return
        if self.config.read_leases:
            # Leased read path: serve locally only while the lease is
            # valid *for the installed epoch* and local state covers the
            # client's session; otherwise prove epoch liveness with a
            # full-circle fence before serving.
            if (
                self.lease_valid
                and self.lease_epoch == self.installed_epoch
                and self._session_covered(message.session)
            ):
                self.stats_lease_local_reads += 1
                self._serve_read_locally(client, message)
            else:
                self.stats_lease_fallbacks += 1
                self._fence_read(client, message)
            return
        self._serve_read_locally(client, message)

    def _serve_read_locally(self, client: int, message: ClientRead) -> None:
        if not self.pending:
            # Lines 77-78: reads are local and immediate when there is no
            # write in progress.
            self.stats_reads_served += 1
            self._answer_read(client, message.op)
            return
        # Lines 80-82: wait until the highest currently-pending write has
        # committed, then answer with the (current) committed value.
        threshold = max_tag(self.pending.keys())
        self.stats_reads_waited += 1
        self.read_waiters.append((threshold, client, message.op))

    def _answer_read(self, client: int, op: OpId) -> None:
        """Produce the read value for the *current* committed tag.

        Replicated mode answers from the register directly.  Coded mode
        must materialise the full value: from the single-entry cache
        (populated by origination, reconstruction and merge repair), by
        a trivial local decode when ``k == 1``, or by fetching ``k``
        fragments from peers — in which case the reply is deferred
        until the reconstruction completes.
        """
        if not self._coded:
            self._reply(client, ReadAck(op, self.value, self.tag))
            return
        if self._cache_tag == self.tag:
            self.stats_coding_cache_reads += 1
            self._reply(client, ReadAck(op, self._cache_value, self.tag))
            return
        if self.frag_tag is None and self._k == 1:
            full = coding.decode(
                {self._coding_index: self.value}, self._k, self._n
            )
            self._cache_tag, self._cache_value = self.tag, full
            self.stats_coding_reconstructions += 1
            self._reply(client, ReadAck(op, full, self.tag))
            return
        if self.paused:
            # Mid-reconfiguration (reachable via _wake_readers during a
            # merge apply): fetches stamped now would die at the epoch
            # seam; re-enter after resume.
            self.deferred_reads.append((client, ClientRead(op)))
            return
        self._start_reconstruction(client, op)

    def _start_reconstruction(self, client: int, op: OpId) -> None:
        """Fetch peer fragments to rebuild the value for ``self.tag``."""
        tag = self.tag
        nonce = self._recon_by_tag.get(tag)
        if nonce is not None:
            self._recon[nonce]["waiters"].append((client, op))
            return
        peers = [s for s in self.ring.alive() if s != self.server_id]
        if not peers:
            # Below the liveness bound (k > 1 survivors needed): the
            # read cannot be served until the view grows back.
            self.deferred_reads.append((client, ClientRead(op)))
            return
        fragments: dict[int, bytes] = {}
        if self.frag_tag is None:
            fragments[self._coding_index] = self.value
        self._recon_nonce += 1
        nonce = self._recon_nonce
        self._recon[nonce] = {
            "tag": tag,
            "fragments": fragments,
            "waiters": [(client, op)],
            "outstanding": len(peers),
            "misses": 0,
        }
        self._recon_by_tag[tag] = nonce
        for peer in peers:
            self.outbox.append(
                (peer, FragmentFetch(
                    nonce, tag, self.server_id, self.installed_epoch
                ))
            )

    def _requeue_recon_waiters(self) -> None:
        """Route reconstruction-waiting reads back through the deferred
        queue (mirror of :meth:`_requeue_fence_waiters`): in-flight
        fetches cannot complete across a view install or demotion, and
        after resume the reads re-evaluate against the merged state."""
        if not self._recon:
            return
        recons, self._recon = self._recon, {}
        self._recon_by_tag = {}
        for nonce in sorted(recons):
            for client, op in recons[nonce]["waiters"]:
                self.deferred_reads.append((client, ClientRead(op)))

    def _session_covered(self, session: Optional[Tag]) -> bool:
        """Whether local state covers the client's session tag.

        Every tag a client observed belongs to a *completed* write, and
        completion requires the pre-write's full circle — so a current
        ring member has the tag installed or pending.  A gap means this
        server's state predates something the client already saw (a
        lease valid for a stale epoch is excluded before this check, so
        in practice: a sharded client whose session tag belongs to
        another block); the fence fallback covers it.
        """
        if session is None or session <= self.tag:
            return True
        return bool(self.pending) and session <= max_tag(self.pending.keys())

    def _fence_read(self, client: int, message: ClientRead) -> None:
        """Fallback read: circulate a fence; serve when it returns.

        One fence per read (not batched): the fence *is* the read's ring
        cost, and the circulating baseline the lease win is measured
        against must genuinely pay it.
        """
        if self.alone:
            # A sole survivor has no circle to prove and nobody whose
            # view could move without it; local state is the register.
            self._serve_read_locally(client, message)
            return
        self._fence_nonce += 1
        self._fence_waiters[self._fence_nonce] = [(client, message)]
        self.fence_queue.append(
            ReadFence(self._fence_nonce, self.server_id, self.installed_epoch)
        )

    def _on_read_fence(self, message: ReadFence) -> None:
        """A fence arrived from the predecessor (epoch guard already ran)."""
        if message.origin == self.server_id:
            self._complete_fence(message)
            return
        self.fence_queue.append(message)

    def _complete_fence(self, message: ReadFence) -> None:
        """Our fence closed its circle under the installed epoch: every
        ring member forwarded it, so this view was live for the whole
        circulation and local committed state covers every write
        completed before the fence left.  Serve the waiting reads from
        local state — without the lease check, and without the session
        check (the full circle pulled every completed write's pre-write
        through us; a session tag from another shard's block is the one
        thing left uncovered, and the fence is exactly the proof that
        serving current local state is linearizable for *this* block)."""
        waiters = self._fence_waiters.pop(message.nonce, None)
        if waiters is None:
            return  # superseded at a view change; the reads were re-queued
        for client, read in waiters:
            if self.paused:
                self.deferred_reads.append((client, read))
            else:
                self._serve_read_locally(client, read)

    def _requeue_fence_waiters(self) -> None:
        """Route every fence-waiting read back through ``_on_client_read``.

        Called when in-flight fences can no longer complete (a view
        install obsoleted their epoch stamp, or this server was demoted
        to a rejoiner): the reads re-enter via the deferred queue, so
        after resume they re-evaluate the lease and re-fence under the
        new epoch instead of waiting for a circle that will never close.
        """
        if not self._fence_waiters:
            return
        waiters, self._fence_waiters = self._fence_waiters, {}
        for nonce in sorted(waiters):
            self.deferred_reads.extend(waiters[nonce])

    # ------------------------------------------------------------------
    # Coded value backend (config.value_coding == "coded"; docs/coding.md)
    # ------------------------------------------------------------------

    def _on_fragment_store(self, message: FragmentStore) -> None:
        """Our fragment of a write, sent directly by the origin.

        Stash it; if the matching (empty-value) pre-write is parked
        waiting for it, the pre-write re-enters the forward path now.
        """
        tag = message.tag
        self._note_tag(tag)
        if not self._coded or message.index != self._coding_index:
            return
        if self._is_stale(tag) or self._op_completed(message.op):
            # Committed (or superseded) while the fragment was in
            # flight; a parked pre-write for it is equally dead.
            self._parked_prewrites.pop(tag, None)
            self.stats_duplicates_dropped += 1
            return
        if tag in self.pending or tag in self._frag_stash:
            self.stats_duplicates_dropped += 1
            return
        self._frag_stash[tag] = message.fragment
        self.stats_coding_fragment_stores += 1
        parked = self._parked_prewrites.pop(tag, None)
        if parked is not None:
            self._on_pre_write(parked)

    def _on_fragment_fetch(self, message: FragmentFetch) -> None:
        """A peer is reconstructing ``message.tag``: send our share.

        An index of ``-1`` signals a miss — this server holds no
        fragment for that tag (its register moved past it, or it never
        saw the write); the requester counts misses to detect a round
        that cannot complete.
        """
        if not self._coded:
            return
        fragment: Optional[bytes] = None
        if message.tag == self.tag and self.frag_tag is None:
            fragment = self.value
        elif message.tag in self.pending:
            fragment = self.pending[message.tag].value
        elif message.tag in self._frag_stash:
            fragment = self._frag_stash[message.tag]
        elif self._cache_tag == message.tag and self._cache_value is not None:
            # The full value is cached: re-derive our share (covers a
            # stale own fragment after a merge repair-on-read).
            fragment = coding.encode(
                self._cache_value, self._k, self._n
            )[self._coding_index]
        if fragment is None:
            reply = FragmentReply(
                message.nonce, message.tag, -1, b"", self.installed_epoch
            )
        else:
            reply = FragmentReply(
                message.nonce, message.tag, self._coding_index, fragment,
                self.installed_epoch,
            )
        self.outbox.append((message.requester, reply))

    def _on_fragment_reply(self, message: FragmentReply) -> None:
        """A peer's share (or miss) for one of our reconstructions."""
        recon = self._recon.get(message.nonce)
        if recon is None or recon["tag"] != message.tag:
            return
        if message.index >= 0:
            recon["fragments"][message.index] = message.fragment
        else:
            recon["misses"] += 1
        fragments = recon["fragments"]
        if len(fragments) >= self._k:
            self._complete_reconstruction(message.nonce)
            return
        answered = len(fragments) + recon["misses"]
        known = 1 if self._coding_index in fragments else 0
        if answered - known >= recon["outstanding"]:
            # Every peer answered and the round fell short of k.  The
            # tag was committed ring-wide, so peers that missed have
            # moved *past* it — the commit that moved them is on its
            # way here.  Re-route the waiters: they re-check the (by
            # then advanced) tag and fetch again.
            self._abort_reconstruction(message.nonce)

    def _complete_reconstruction(self, nonce: int) -> None:
        recon = self._recon.pop(nonce)
        self._recon_by_tag.pop(recon["tag"], None)
        tag = recon["tag"]
        full = coding.decode(recon["fragments"], self._k, self._n)
        self.stats_coding_reconstructions += 1
        if tag >= self.tag and self._cache_tag != tag:
            self._cache_tag, self._cache_value = tag, full
        if tag == self.tag and self.frag_tag is not None:
            # Repair-on-read: our own fragment lagged the committed tag
            # (a merge advanced the register without our share); we now
            # hold the full value, so re-derive and install our share.
            self.value = coding.encode(full, self._k, self._n)[
                self._coding_index
            ]
            self.frag_tag = None
            self.stats_coding_repairs += 1
            self._mark_dirty()
        for client, op in recon["waiters"]:
            if self.tag == tag:
                self._reply(client, ReadAck(op, full, tag))
            else:
                # The register advanced while we fetched; the read must
                # reflect the newer committed value.
                self._answer_read(client, op)

    def _abort_reconstruction(self, nonce: int) -> None:
        recon = self._recon.pop(nonce)
        self._recon_by_tag.pop(recon["tag"], None)
        for client, op in recon["waiters"]:
            self._answer_read(client, op)

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def _initiate_write(self) -> Optional[PreWrite]:
        """Pseudocode lines 21–28."""
        if not self.write_queue:
            return None
        op, value, client = self.write_queue.popleft()
        # A queued duplicate may have completed meanwhile.
        if self._op_completed(op):
            self._reply(client, WriteAck(op, self._completed_tag(op)))
            return None
        if op in self.op_index:
            self.ack_waiters.setdefault(self.op_index[op], []).append((client, op))
            return None
        if self.alone:
            self._commit_locally(op, value, client)
            return None

        new_tag = Tag(self._next_ts(), self.server_id)
        # Note our own mint: if this entry is later zombie-dropped (a
        # duplicate initiation losing to a lower tag), _next_ts must
        # still never re-issue the timestamp — in coded mode, peers'
        # fragment stashes are keyed by tag, and a re-minted tag would
        # commit one tag over two different ops' fragment sets.
        self._note_tag(new_tag)
        wire_value = value
        if self._coded:
            # Stripe the value: each live member gets its fragment
            # directly; the circulating pre-write carries no value and
            # serves purely as the durability control circle.  (A dead
            # member's fragment is simply not stored — the same
            # degraded redundancy its absence from the circle implies.)
            fragments = coding.encode(value, self._k, self._n)
            for peer in self.ring.members:
                if peer == self.server_id or not self.ring.is_alive(peer):
                    continue
                self.outbox.append(
                    (peer, FragmentStore(
                        new_tag, op, self.ring.members.index(peer),
                        fragments[self.ring.members.index(peer)],
                        self.installed_epoch,
                    ))
                )
            self._origin_values[new_tag] = value
            value = fragments[self._coding_index]
            wire_value = b""
        self.pending[new_tag] = PendingEntry(new_tag, value, op)
        self.op_index[op] = new_tag
        self.ack_waiters.setdefault(new_tag, []).append((client, op))
        self.fair.note_initiated()
        self.stats_writes_initiated += 1
        self._mark_dirty()
        return PreWrite(new_tag, wire_value, op)

    def _commit_locally(self, op: OpId, value: bytes, client: int) -> None:
        """Single-survivor fast path: the write is trivially everywhere."""
        new_tag = Tag(self._next_ts(), self.server_id)
        self._note_tag(new_tag)
        self.watermark[self.server_id] = max(
            self.watermark.get(self.server_id, 0), new_tag.ts
        )
        if self._coded:
            # Store our own share; the full value seeds the cache so a
            # sole survivor's reads never need the (absent) peers.
            own = coding.encode(value, self._k, self._n)[self._coding_index]
            self._install_fragment(new_tag, own)
            self._cache_tag, self._cache_value = new_tag, value
        else:
            self._install(new_tag, value)
        self._record_completed(op, new_tag)
        self.stats_writes_initiated += 1
        self._reply(client, WriteAck(op, new_tag))
        self._wake_readers()

    def _on_pre_write(self, message: PreWrite) -> None:
        tag = message.tag
        origin = tag.server_id
        self._note_tag(tag)
        if origin == self.server_id:
            # Lines 32-38: our own pre-write completed the circle; every
            # server now stores the value, so install it and start the
            # commit phase.  The client is acked when the commit returns.
            if tag not in self.pending:
                self.stats_duplicates_dropped += 1
                return
            entry = self.pending[tag]
            if self._op_completed(entry.op):
                # The operation committed under another tag while our
                # circle was in flight (a duplicate initiation racing
                # us).  Committing this copy too would give one write
                # two write-points; drop it and answer its waiters —
                # the real commit already made the write durable.
                del self.pending[tag]
                self._origin_values.pop(tag, None)
                if self.op_index.get(entry.op) == tag:
                    del self.op_index[entry.op]
                self.stats_superseded_dropped += 1
                for client, waiting_op in self.ack_waiters.pop(tag, ()):
                    self._reply(
                        client, WriteAck(waiting_op, self._completed_tag(waiting_op))
                    )
                self._retarget_read_waiters()
                return
            if self.op_index.get(entry.op) != tag:
                # Our endorsement moved to a lower-tag copy of the same
                # operation while this circle was out.  Only the
                # endorsed copy may commit; this one stays pending as a
                # zombie (the winner's commit answers its waiters).
                self.stats_superseded_dropped += 1
                return
            del self.pending[tag]
            if self._coded:
                self._install_fragment(tag, entry.value)
                full = self._origin_values.pop(tag, None)
                if full is not None and tag >= self.tag:
                    self._cache_tag, self._cache_value = tag, full
            else:
                self._install(tag, entry.value)
            self._record_completed(entry.op, tag)
            self.op_index.pop(entry.op, None)
            self.commit_queue.append(tag)
            self._wake_readers()
            return
        if origin in self.ring.dead and self.ring.adopter(origin) == self.server_id:
            # The origin died and we are its adopter: act as the origin.
            # The pre-write reaching us means every surviving server on
            # the path stored the value; the commit distributes the
            # decision (and dies by staleness after one circle).
            if self._is_stale(tag):
                self.stats_duplicates_dropped += 1
                return
            if self._op_completed(message.op):
                # The operation committed under another tag; committing
                # this copy too would re-install a superseded value.
                self.pending.pop(tag, None)
                self.stats_superseded_dropped += 1
                for client, waiting_op in self.ack_waiters.pop(tag, ()):
                    self._reply(
                        client, WriteAck(waiting_op, self._completed_tag(waiting_op))
                    )
                self._retarget_read_waiters()
                return
            lower = self.op_index.get(message.op)
            if lower is not None and lower < tag:
                # A lower-tag initiation of the same operation is still
                # in flight; the lowest tag is the one copy allowed to
                # commit (see _on_pre_write), and its commit will clean
                # this orphan up as a zombie.
                self.stats_superseded_dropped += 1
                return
            entry = self.pending.pop(tag, None)
            if self._coded:
                # The circulating pre-write is empty; our share is in
                # the pending entry (forwarded) or the stash (not yet).
                # Neither present: the tag still advances and the
                # fragment lag is repaired on the next read.
                fragment = entry.value if entry is not None else (
                    self._frag_stash.pop(tag, None)
                )
                self._install_fragment(tag, fragment)
            else:
                self._install(tag, message.value)
            self._record_completed(message.op, tag)
            self.op_index.pop(message.op, None)
            self.commit_queue.append(tag)
            self._wake_readers()
            return
        # Lines 30-31: enqueue for (fair) forwarding.
        if self._is_stale(tag) or tag in self.pending or tag in self.queued_tags:
            self.stats_duplicates_dropped += 1
            return
        if self._op_completed(message.op):
            # Duplicate initiation of an operation that already committed
            # under another tag (an aggressive retry raced the stalled
            # original).  Dropping it here breaks the duplicate's circle,
            # so it can never commit; ts_seen was noted above, so our own
            # future initiations still outbid it.
            self.stats_superseded_dropped += 1
            return
        other = self.op_index.get(message.op)
        if other is not None and other < tag:
            # Concurrent duplicate initiations of one operation: at most
            # one may ever commit, or two servers could end up with
            # different write-points for the same write (the value of
            # the loser is zombie-dropped at whoever learns of the
            # winner first, after which a stray commit of the loser can
            # no longer be installed ring-wide).  The arbitration is
            # deterministic — the lowest tag wins — so every copy of
            # the higher circle breaks at the first server holding a
            # lower one, while the lowest circle passes everywhere.
            self.stats_superseded_dropped += 1
            return
        if self._coded and tag not in self._frag_stash:
            # Our fragment has not arrived yet: forwarding now would
            # let the circle complete without this server storing its
            # share, voiding the durability proof.  Park the pre-write;
            # the FragmentStore's arrival re-enters it here.
            if tag in self._parked_prewrites:
                self.stats_duplicates_dropped += 1
            else:
                self._parked_prewrites[tag] = message
            return
        self.queued_tags.add(tag)
        self.op_index[message.op] = tag
        self.fair.enqueue(origin, PreWrite(tag, message.value, message.op))

    def _process_commits(self, tags: tuple[Tag, ...]) -> None:
        for tag in tags:
            self._process_commit(tag)

    def _process_commit(self, tag: Tag) -> None:
        """Pseudocode lines 41–52, on a tag-only commit.

        Termination: the tag is re-enqueued for the successor unless this
        server had already processed it (staleness).  A commit therefore
        travels one full circle — every server processes it exactly
        once — plus one extra hop back to the first processor.
        """
        origin = tag.server_id
        self._note_tag(tag)
        if self._is_stale(tag):
            self.stats_duplicates_dropped += 1
            return
        self.watermark[origin] = max(self.watermark.get(origin, 0), tag.ts)
        self._mark_dirty()  # commit point: watermark and pending change
        self.stats_commits_processed += 1

        entry = self.pending.pop(tag, None)
        if self._coded:
            # A fragment stashed (or a pre-write parked) for a tag that
            # just committed is residue of a circle that completed
            # without our forward (reconfiguration reroute); drop it.
            if entry is None:
                self._frag_stash.pop(tag, None)
            self._parked_prewrites.pop(tag, None)
        if entry is not None:
            if self._coded:
                self._install_fragment(tag, entry.value)
            else:
                self._install(tag, entry.value)
            self._record_completed(entry.op, tag)
            self.op_index.pop(entry.op, None)
            self._drop_superseded(entry.op, tag)
        elif tag > self.tag:
            # We never saw this write's value and are asked to commit
            # above our installed state: only possible for flows already
            # covered by reconfiguration; counted for test visibility.
            self.stats_commit_unknown_tag += 1

        # Ack every client waiting on this tag at *this* server (the
        # origin's own client, plus any retries that attached here).
        for client, op in self.ack_waiters.pop(tag, ()):
            self._reply(client, WriteAck(op, tag))

        self._wake_readers()

        if not self.alone:
            self.commit_queue.append(tag)

    def _on_state_sync(self, message: StateSync) -> None:
        """Predecessor's committed state after a splice (line 88)."""
        self._note_tag(message.tag)
        if message.tag > self.tag:
            if self._coded:
                # Perfect-detector path only; coded mode requires
                # view_quorum, so this is belt-and-braces: advance the
                # tag, repair the fragment on the next read.
                self._install_fragment(message.tag, None)
            else:
                self._install(message.tag, message.value)
            self._wake_readers()

    # ------------------------------------------------------------------
    # Reconfiguration
    # ------------------------------------------------------------------

    def _start_reconfig(self, revived: tuple[int, ...] = ()) -> None:
        """Coordinator side: circulate the state-merge token.

        ``revived`` names servers this reconfiguration folds back into
        the ring (crash recovery); the coordinator has already spliced
        them into its own view, and every receiver does the same before
        merging, so the token traverses the grown ring.
        """
        self.paused = True
        self._reconfig_counter += 1
        # Reconfig point: persist the nonce counter so a restarted
        # coordinator can never reuse a nonce (others would drop its
        # fresh token as an orphaned duplicate).
        self._mark_dirty()
        token = ReconfigToken(
            nonce=self._reconfig_counter,
            epoch=max(self.ring.epoch, self.installed_epoch + 1),
            coordinator=self.server_id,
            dead=tuple(sorted(self.ring.dead)),
            tag=self.tag,
            value=self._register_blob() if self._coded else self.value,
            pending=self._pending_snapshot(),
            completed_ops=tuple(sorted(self.completed_ops.items())),
            revived=tuple(sorted(revived)),
            completed_tags=tuple(sorted(self.completed_tags.items())),
        )
        self.control_queue.append(token)

    def _pending_snapshot(self) -> tuple[PendingEntry, ...]:
        """Every uncommitted write this server knows about: the pending
        set plus pre-writes still sitting in the forward queue (which is
        drained — the merge supersedes it).

        Coded mode: the returned entries are *token-form* — their value
        is a packed fragment set ``{our index: our fragment}`` so the
        circulating merge can union shares across members.  Queued
        pre-writes take their fragment from the stash; a queued or
        parked pre-write whose fragment never arrived contributes
        nothing (the origin's own token entry covers the write).
        """
        entries = dict(self.pending)
        for _origin, prewrite in self.fair.drain():
            if self._coded:
                fragment = self._frag_stash.get(prewrite.tag)
                if fragment is None:
                    continue
                entries.setdefault(
                    prewrite.tag,
                    PendingEntry(prewrite.tag, fragment, prewrite.op),
                )
            else:
                entries.setdefault(
                    prewrite.tag,
                    PendingEntry(prewrite.tag, prewrite.value, prewrite.op),
                )
        self.queued_tags.clear()
        if self._coded:
            return tuple(
                PendingEntry(
                    tag,
                    coding.pack_fragments(
                        {self._coding_index: entries[tag].value}
                    ),
                    entries[tag].op,
                )
                for tag in sorted(entries)
            )
        return tuple(entries[tag] for tag in sorted(entries))

    def _merge_into_token(self, token: ReconfigToken) -> ReconfigToken:
        self._note_tag(token.tag)
        for entry in token.pending:
            self._note_tag(entry.tag)
        if self._coded:
            merged_tag, merged_value = self._merge_register_blob(token)
        else:
            merged_tag, merged_value = (
                (token.tag, token.value)
                if token.tag >= self.tag
                else (self.tag, self.value)
            )
        entries = {entry.tag: entry for entry in token.pending}
        for entry in self._pending_snapshot():
            if self._coded and entry.tag in entries:
                # Union our fragment share into the circulating set.
                shares = coding.unpack_fragments(entries[entry.tag].value)
                shares.update(coding.unpack_fragments(entry.value))
                entries[entry.tag] = PendingEntry(
                    entry.tag, coding.pack_fragments(shares), entry.op
                )
            else:
                entries.setdefault(entry.tag, entry)
        completed: dict[int, int] = dict(token.completed_ops)
        completed_tags: dict[int, Tag] = dict(token.completed_tags)
        for client, seq in self.completed_ops.items():
            self._advance_completed(
                completed, completed_tags, client, seq,
                self.completed_tags.get(client),
            )
        # A server this token revives must not ride along in the merged
        # dead set via some receiver's stale view.  (In view_quorum mode
        # the receiver's view was wholesale-adopted from the token, so
        # the union adds nothing: the proposed membership is fixed by
        # the coordinator and the token gathers *state*, not exclusions.)
        # A *rejoining* merger contributes state but no exclusions: its
        # dead set is its snapshot's — stale by definition — and any
        # crash it has witnessed since restarting was witnessed by every
        # live merger too.  Unioning it in re-excluded members that were
        # folded back while the rejoiner was down, which diverted the
        # token's circle around them and deadlocked the ring (two
        # overlapping crash-recovery cycles were enough to hit this).
        local_dead = frozenset() if self.rejoining else self.ring.dead
        dead = (frozenset(token.dead) | local_dead) - frozenset(token.revived)
        return ReconfigToken(
            nonce=token.nonce,
            epoch=max(token.epoch, len(dead)) if not self.config.view_quorum
            else token.epoch,
            coordinator=token.coordinator,
            dead=tuple(sorted(dead)),
            tag=merged_tag,
            value=merged_value,
            pending=tuple(entries[tag] for tag in sorted(entries)),
            completed_ops=tuple(sorted(completed.items())),
            revived=token.revived,
            completed_tags=tuple(sorted(completed_tags.items())),
        )

    def _on_reconfig_token(self, token: ReconfigToken) -> None:
        if self.config.view_quorum:
            if not self._admit_token(token):
                return
            # Tentative *wholesale* adoption of the proposed membership:
            # the token's dead set replaces local state (a receiver's
            # private suspicions must not leak into the proposal), and
            # routing follows the proposed ring from here on.
            self.ring = self.ring.at_epoch(
                token.epoch, frozenset(token.dead) - frozenset(token.revived)
            )
        elif self.rejoining:
            # Wholesale adoption for a rejoiner: its own dead set is its
            # snapshot's and must not survive into routing — keeping a
            # long-since-revived member dead would make this server
            # forward the token (and every later frame) past it.
            self.ring = self.ring.at_epoch(
                max(self.ring.epoch + 1, token.epoch),
                frozenset(token.dead) - frozenset(token.revived),
            )
        else:
            self.ring = self.ring.with_dead(token.dead).revive_all(token.revived)
        if token.coordinator == self.server_id:
            if self.config.view_quorum and token.nonce != self._attempt_nonce:
                return  # a superseded/abandoned attempt of our own
            # Token is back with every survivor's state merged in.  In
            # view_quorum mode its full circle around the proposed ring
            # *is* the ack quorum of the old view: the proposal was
            # quorum-checked against the installed view, and every
            # proposed member forwarded the token.
            final = self._merge_into_token(token)
            commit = ReconfigCommit(
                nonce=final.nonce,
                epoch=final.epoch,
                coordinator=final.coordinator,
                dead=final.dead,
                tag=final.tag,
                value=final.value,
                pending=final.pending,
                completed_ops=final.completed_ops,
                revived=final.revived,
                completed_tags=final.completed_tags,
            )
            self.control_queue.append(commit)
            if self.config.view_quorum:
                self._install_view(commit)
            self._apply_merged_state(commit)
            # Re-commit every surviving pending write so no read blocks
            # forever and every origin can ack its client.  The commits
            # flow behind the ReconfigCommit (FIFO), so every server has
            # the merged values before a commit reaches it.  Iterating
            # the *applied* pending set (not the raw token) matters:
            # apply-time filtering has already dropped stale entries and
            # zombies of operations the merged completed_ops says are
            # done, which must not be re-committed (resurrection).
            # While an old-epoch lease wait-out runs, the re-commits are
            # stashed instead: completing a merged write before every
            # old lease died could hide it from a leaseholder's reads.
            if self._lease_waitout:
                self._waitout_commit_tags = sorted(self.pending)
            else:
                for tag in sorted(self.pending):
                    self.commit_queue.append(tag)
            self._resume()
        else:
            key = (token.coordinator, token.nonce)
            if key in self._seen_reconfigs:
                # A token orphaned by its coordinator's crash; drop it
                # (the coordinator's own crash triggers a fresh merge).
                return
            self._seen_reconfigs.add(key)
            self.paused = True
            self.control_queue.append(self._merge_into_token(token))

    def _admit_token(self, token: ReconfigToken) -> bool:
        """Epoch + promise arbitration for one view transition.

        A token is admitted when it is built on exactly this server's
        installed view (``epoch == installed + 1`` — the ack quorum it
        collects must anchor to the view it supersedes) and it wins the
        per-view promise: at most one *admitted* proposal per installed
        view, ties broken toward the lower coordinator id, with a
        coordinator's fresh retry replacing its own older promise.
        Admitting a competitor's token abandons any in-flight attempt of
        our own — the abandoned token keeps circulating but its return
        is ignored, so two proposals can never both install.  A token
        reviving *us* is exempt from the base check: catching a stale
        server up is the one sanctioned epoch jump, and the rejoiner is
        deliberately not counted toward the quorum.
        """
        if token.coordinator == self.server_id:
            # Our own token came back: valid only if it is our current
            # attempt and nothing installed meanwhile.
            return (
                token.epoch == self.installed_epoch + 1
                and token.nonce == self._attempt_nonce
            )
        if self.server_id in token.revived:
            if token.epoch <= self.installed_epoch:
                self.stats_epoch_rejected_reconfigs += 1
                return False
            return True
        if token.epoch != self.installed_epoch + 1:
            self.stats_epoch_rejected_reconfigs += 1
            if token.epoch <= self.installed_epoch:
                # A healed minority (or superseded attempt) proposing
                # from a view the ring has left behind: tell it.
                self._notify_stale(token.coordinator)
            else:
                # A proposal from beyond our next epoch is proof the
                # ring installed views we never saw (a commit can die
                # mid-circle when a member crashes while it circulates,
                # leaving us behind): same signal as a StaleEpochNotice.
                self._enter_rejoining()
            return False
        if token.coordinator in self.suspected:
            # A straggling token from a coordinator we believe gone
            # (delivered late across a heal, or its sender crashed after
            # sending): promising it would wedge this view on an attempt
            # that can never complete.  If the suspicion is wrong the
            # coordinator simply retries — liveness cost only.
            self.stats_epoch_rejected_reconfigs += 1
            return False
        promise = self._promise
        if promise is not None and promise[0] == self.installed_epoch:
            base, promised_coordinator, promised_nonce = promise
            if token.coordinator == promised_coordinator:
                if token.nonce < promised_nonce:
                    self.stats_epoch_rejected_reconfigs += 1
                    return False  # stale retry of the promised attempt
            elif token.coordinator > promised_coordinator:
                self.stats_epoch_rejected_reconfigs += 1
                return False  # outranked; the promised attempt proceeds
        self._promise = (self.installed_epoch, token.coordinator, token.nonce)
        if self._attempt_nonce is not None:
            # We had our own proposal in flight and just admitted a
            # higher-priority one: abandon ours (bumping the persisted
            # counter makes our returning token unrecognisable).
            self._reconfig_counter += 1
            self._attempt_nonce = None
            self._mark_dirty()
        return True

    def _on_reconfig_commit(self, commit: ReconfigCommit) -> None:
        if self.config.view_quorum:
            if commit.coordinator == self.server_id:
                return  # full circle; applied when created
            if commit.epoch != self.installed_epoch + 1 and (
                self.server_id not in commit.revived
                or commit.epoch <= self.installed_epoch
            ):
                # Same chain discipline as tokens: a commit installs
                # only over the view it superseded; the one sanctioned
                # jump is the fold-in of the stale server it revives.
                self.stats_epoch_rejected_reconfigs += 1
                if commit.epoch > self.installed_epoch + 1 and not self.rejoining:
                    self._enter_rejoining()
                return
            key = (commit.coordinator, -commit.nonce)
            if key in self._seen_reconfigs:
                return
            self._seen_reconfigs.add(key)
            self._install_view(commit)
            self._apply_merged_state(commit)
            self.control_queue.append(commit)
            self._resume()
            return
        if self.rejoining:
            # Same wholesale adoption as the token path: the commit's
            # membership replaces the rejoiner's stale snapshot view.
            self.ring = self.ring.at_epoch(
                max(self.ring.epoch + 1, commit.epoch),
                frozenset(commit.dead) - frozenset(commit.revived),
            )
        else:
            self.ring = self.ring.with_dead(commit.dead).revive_all(commit.revived)
        if commit.coordinator == self.server_id:
            return  # full circle; applied when created
        key = (commit.coordinator, -commit.nonce)
        if key in self._seen_reconfigs:
            return  # orphaned duplicate of a commit we already applied
        self._seen_reconfigs.add(key)
        self._apply_merged_state(commit)
        self.control_queue.append(commit)
        if frozenset(commit.dead) >= self.ring.dead:
            self._resume()
        # else: we know of a crash this commit predates; stay paused
        # until the follow-up reconfiguration's commit arrives.

    def _install_view(self, commit: ReconfigCommit) -> None:
        """Install the committed view: the epoch transition point.

        From here on, traffic of older epochs is rejected, and newly
        excluded members that may still be alive are told directly.
        With ``read_leases`` the notice is backed by an invariant: an
        install that excludes members also starts the old-epoch lease
        *wait-out* — no new-epoch write may complete until every lease
        granted under the superseded view has provably expired on its
        holder's clock — so even an excluded server that hears nothing
        (the one-way-partition case the notices cannot reach) stops
        serving leased reads before any conflicting write exists.
        Without leases the notices remain best-effort (see
        docs/reconfiguration.md).
        """
        newly_dead = frozenset(commit.dead) - self.installed_view.dead
        self.ring = self.ring.at_epoch(
            commit.epoch, frozenset(commit.dead) - frozenset(commit.revived)
        )
        self.installed_epoch = commit.epoch
        self.installed_view = self.ring
        self.view_log.append((commit.epoch, commit.coordinator, commit.nonce))
        self._announced_rejoiners.clear()  # still-stale members re-announce
        self._promise = None  # promises are per installed view
        if commit.coordinator == self.server_id:
            self._attempt_nonce = None
        # In-flight fragment fetches are stamped with the superseded
        # epoch and can never be answered; their reads re-reconstruct
        # against the merged state after resume.
        self._requeue_recon_waiters()
        if self.config.read_leases:
            # Our own lease was granted under the superseded epoch; the
            # per-read epoch check already refuses it, but dropping the
            # flag keeps the runtime's next push authoritative.
            self.lease_valid = False
            self.lease_epoch = -1
            # In-flight fences carry the old epoch stamp and can never
            # close their circle; re-route their reads through the
            # deferred queue so they re-fence under the new epoch.
            self._requeue_fence_waiters()
            # A stashed re-commit from a previous wait-out is obsolete:
            # this install's merge carried those pending writes and the
            # coordinator re-commits them afresh.
            self._waitout_commit_tags = []
            if newly_dead - {self.server_id}:
                # Members were excluded: their leases (and any lease the
                # old view granted) may live up to the full duration
                # plus drift; gate new-epoch writes until that horizon
                # passes.  Confirm/revive installs exclude nobody and
                # need no wait — the commit itself circulates ahead of
                # any new-epoch data on FIFO links.
                self._lease_waitout = True
                self.lease_waitout_due = True
                self.stats_lease_waitouts += 1
            else:
                self._lease_waitout = False
        self._mark_dirty()
        for peer in sorted(newly_dead):
            if peer != self.server_id:
                # Best-effort fence: if the excluded peer is actually
                # alive (wrong suspicion), the notice demotes it to a
                # rejoiner; if it is dead, the frame dies in transit.
                self._notify_stale(peer)

    def _apply_merged_state(self, commit: ReconfigCommit) -> None:
        self._note_tag(commit.tag)
        if commit.tag > self.tag:
            if self._coded:
                self._apply_merged_register(commit.tag, commit.value)
            else:
                self._install(commit.tag, commit.value)
        merged_tags = dict(commit.completed_tags)
        for client, seq in commit.completed_ops:
            self._advance_completed(
                self.completed_ops, self.completed_tags, client, seq,
                merged_tags.get(client),
            )
        # The merged pending set replaces local pending and every queued
        # pre-write (their tags are all in the merged set by construction).
        self.fair.drain()
        self.queued_tags.clear()
        self.fair.reset_counters()
        merged: dict[Tag, PendingEntry] = {}
        endorsed: dict[OpId, Tag] = {}
        for entry in commit.pending:  # ascending tag order by construction
            self._note_tag(entry.tag)
            if self._is_stale(entry.tag):
                continue
            if self._op_completed(entry.op):
                # A zombie of an operation the merged completed_ops says
                # is done: re-committing it would resurrect a superseded
                # value.  Its committed state is covered by the merged
                # (tag, value) — some survivor processed the real commit,
                # or completed_ops could not name the operation.
                self.stats_superseded_dropped += 1
                continue
            winner = endorsed.get(entry.op)
            if winner is not None:
                # Duplicate initiations of one uncommitted operation
                # survived into the merge; keep only the lowest tag (the
                # same arbitration the live forward path applies), or
                # the post-merge re-commit would commit one write twice
                # under different tags.  Its waiters follow the winner.
                self.stats_superseded_dropped += 1
                waiters = self.ack_waiters.pop(entry.tag, None)
                if waiters:
                    self.ack_waiters.setdefault(winner, []).extend(waiters)
                continue
            if self._coded:
                # Token-form entry: unpack the fragment union and keep
                # only our share.  The keep/drop decision must be a
                # function of the union alone — every member applies
                # the same commit, and a split decision lets the origin
                # re-commit (and ack) a write its peers dropped, whose
                # reads then never wait for it.  Unrecoverable (< k
                # shares — the write was too young to reach k members
                # before the view broke): drop it *everywhere*, origin
                # included; it never completed anywhere (completion
                # needs the full circle, and a completed write leaves
                # >= k shares in any quorum under the liveness bound)
                # and the client's retry re-initiates it.  Kept but our
                # share missing: re-derive it — the RADON-style repair
                # that also catches up rejoiners.
                shares = coding.unpack_fragments(entry.value)
                if len(shares) < self._k:
                    self.stats_coding_pending_dropped += 1
                    self.ack_waiters.pop(entry.tag, None)
                    continue
                mine = shares.get(self._coding_index)
                if mine is None:
                    full = coding.decode(shares, self._k, self._n)
                    mine = coding.encode(full, self._k, self._n)[
                        self._coding_index
                    ]
                    self.stats_coding_repairs += 1
                entry = PendingEntry(entry.tag, mine, entry.op)
            endorsed[entry.op] = entry.tag
            merged[entry.tag] = entry
        self.pending = merged
        self.op_index = {entry.op: entry.tag for entry in merged.values()}
        if self._coded:
            # Stashes and parked pre-writes are superseded wholesale by
            # the merged pending set; in-flight reconstructions died at
            # the epoch seam (their waiters were re-queued at install).
            self._frag_stash.clear()
            self._parked_prewrites.clear()
            self._origin_values = {
                tag: value
                for tag, value in self._origin_values.items()
                if tag in self.pending
            }
        self._mark_dirty()  # reconfig point: the merged state is durable
        # Waiters for operations the merge knows are complete would now
        # wait forever (their tag was filtered); answer them here.
        for tag in sorted(self.ack_waiters):
            waiting = self.ack_waiters[tag]
            remaining = [
                (client, op) for client, op in waiting if not self._op_completed(op)
            ]
            for client, op in waiting:
                if self._op_completed(op):
                    self._reply(client, WriteAck(op, self._completed_tag(op)))
            if remaining:
                self.ack_waiters[tag] = remaining
            else:
                del self.ack_waiters[tag]
        self._retarget_read_waiters()
        self._wake_readers()

    def _resume(self) -> None:
        self.paused = False
        self._suspicion_paused = False
        if self.rejoining:
            # The reconfiguration commit that carries the merged state is
            # the moment a recovering server is caught up: from here on
            # it serves reads and initiates writes like any ring member.
            self.rejoining = False
            self._rejoin_sponsor = None
        if self.config.view_quorum:
            # The installed view may not match what the detector says:
            # leftover suspicions of still-in-view members mean we must
            # not serve (re-pause, and ask for a new proposal); excluded
            # members whose heartbeats resumed deserve re-admission.
            if any(self.ring.is_alive(s) for s in self.suspected):
                self.paused = True
                self._suspicion_paused = True
                self.reconcile_due = True
            if any(
                d not in self.suspected and d in set(self.ring.members)
                for d in self.ring.dead
            ):
                self.reconcile_due = True
        deferred, self.deferred_reads = self.deferred_reads, deque()
        for client, message in deferred:
            self._on_client_read(client, message)
        rejoins, self._deferred_rejoins = self._deferred_rejoins, deque()
        for request in rejoins:
            # May pause us again (a new reconfiguration); later requests
            # in the batch then re-defer themselves.
            self._on_rejoin_request(request)

    def _on_rejoin_request(self, message: RejoinRequest) -> None:
        """Sponsor side of the rejoin handshake.

        A restarted server announced itself.  If our view still has it
        dead, splice it back in and coordinate a reconfiguration whose
        token (marked ``revived``) circulates the grown ring — through
        the rejoiner, which merges its recovered state in and resumes on
        the commit.  If our view already has it alive, a commit is (or
        was) on its way and the request is a retried duplicate: drop it.
        """
        rid = message.server_id
        if rid == self.server_id or rid not in set(self.ring.members):
            return
        if self.config.view_quorum:
            if message.epoch > self.installed_epoch:
                return  # a confused rejoiner cannot drag the ring back
            if self.rejoining:
                return
            # Sponsorship is folded into the proposal pipeline: record
            # the announcement and let the grace-delayed reconciliation
            # carry the rejoiner as ``revived`` in the next proposal.
            # (Unlike the perfect-detector path, a rejoiner still *in*
            # the installed view needs this too: it restarted — or was
            # demoted by the epoch guard — holding stale state, and
            # only a revived-marked merge catches it up.)  "Down" for a
            # sponsor under an imperfect detector means no heartbeat
            # evidence of life: while we still suspect the announcer,
            # the record stays parked — folding in a server we cannot
            # hear would bounce straight back out.
            if rid not in self._announced_rejoiners:
                # Count rejoiners taken on, not their announcement
                # retries (the perfect path counts once per splice).
                self.stats_rejoins_sponsored += 1
            self._announced_rejoiners[rid] = message.epoch
            if rid not in self.suspected:
                self.reconcile_due = True
            return
        if rid not in self.ring.dead:
            return
        if self.paused:
            # Mid-reconfiguration: the ring is in flux.  Defer; the
            # rejoiner also retries, so nothing is lost if we crash.
            self._deferred_rejoins.append(message)
            return
        self.ring = self.ring.revived(rid)
        self.stats_reconfigs += 1
        self.stats_rejoins_sponsored += 1
        self._start_reconfig(revived=(rid,))

    def _resolve_alone(self) -> None:
        """Down to a single survivor: every known pending write commits
        locally, in tag order, and every waiter is answered."""
        self.paused = False
        for _origin, prewrite in self.fair.drain():
            self.pending.setdefault(
                prewrite.tag, PendingEntry(prewrite.tag, prewrite.value, prewrite.op)
            )
        self.queued_tags.clear()
        for tag in sorted(self.pending):
            entry = self.pending.pop(tag)
            self._note_tag(tag)
            if self._op_completed(entry.op):
                # Zombie of an already-committed operation: answer its
                # waiters, but do not install a superseded value.
                self.stats_superseded_dropped += 1
                for client, op in self.ack_waiters.pop(tag, ()):
                    self._reply(client, WriteAck(op, self._completed_tag(op)))
                continue
            self.watermark[tag.server_id] = max(
                self.watermark.get(tag.server_id, 0), tag.ts
            )
            self._mark_dirty()
            if self._coded:
                # The entry holds our fragment only.  With k > 1 and no
                # peers the full value is unrecoverable (operating below
                # the liveness bound); the tag still advances, and reads
                # of it stall until the view grows back.
                self._install_fragment(tag, entry.value)
            else:
                self._install(tag, entry.value)
            self._record_completed(entry.op, tag)
            self.op_index.pop(entry.op, None)
            for client, op in self.ack_waiters.pop(tag, ()):
                self._reply(client, WriteAck(op, tag))
        # Acks for tags we initiated whose commit was still circulating.
        for tag in sorted(self.ack_waiters):
            for client, op in self.ack_waiters.pop(tag, ()):
                self._reply(client, WriteAck(op, tag))
        self.commit_queue.clear()
        self.control_queue.clear()
        self._retarget_read_waiters()
        self._wake_readers()
        self._resume()
        # Absorb queued client writes through the fast path.
        queued, self.write_queue = self.write_queue, deque()
        for op, value, client in queued:
            if self._op_completed(op):
                self._reply(client, WriteAck(op, self._completed_tag(op)))
            else:
                self._commit_locally(op, value, client)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _pull_commit_tags(self, carrier_is_commit: bool) -> tuple:
        """Drain up to the piggyback budget of queued commit tags."""
        if not self.commit_queue:
            return ()
        if not (self.config.piggyback_commits or carrier_is_commit):
            return ()
        budget = self.config.max_piggybacked_commits
        tags: list[Tag] = []
        while self.commit_queue and len(tags) < budget:
            tags.append(self.commit_queue.popleft())
        return tuple(tags)

    def _attach_commits(self, message: RingMessage) -> RingMessage:
        """Piggyback queued commit tags and stamp the installed epoch."""
        if isinstance(message, (ReconfigToken, ReconfigCommit)):
            return message  # reconfiguration messages carry their own epoch
        if isinstance(message, ReadFence):
            # A fence keeps its origin's epoch stamp end to end (the
            # circle proves that epoch's liveness) and carries no
            # commits — it must stay exactly one read's ring cost.
            return message
        epoch = self.installed_epoch
        tags = self._pull_commit_tags(carrier_is_commit=isinstance(message, Commit))
        if isinstance(message, PreWrite):
            return PreWrite(
                message.tag,
                message.value,
                message.op,
                tags if tags else message.commits,
                epoch,
            )
        if isinstance(message, StateSync):
            return StateSync(
                message.tag,
                message.value,
                tags if tags else message.commits,
                epoch,
            )
        return Commit(tags if tags else message.commits, epoch)

    def _install(self, tag: Tag, value: bytes) -> None:
        """Monotone register update (lines 33-35 / 43-45)."""
        if tag > self.tag:
            self.tag = tag
            self.value = value
            self._mark_dirty()

    def _install_fragment(self, tag: Tag, fragment: Optional[bytes]) -> None:
        """Coded-mode monotone register update.

        ``fragment`` is this server's own share of the value committed
        under ``tag`` — or ``None`` when the tag must advance without
        it (merge decided above us); the previously held fragment then
        keeps its old tag in :attr:`frag_tag` and the next read's
        reconstruction repairs the lag.
        """
        if tag <= self.tag:
            return
        if fragment is not None:
            self.value = fragment
            self.frag_tag = None
        elif self.frag_tag is None:
            self.frag_tag = self.tag
        self.tag = tag
        self._mark_dirty()

    def _register_blob(self) -> bytes:
        """Our committed register as a token-form fragment set: our own
        share when it is current, empty when it lags the tag."""
        if self.frag_tag is None:
            return coding.pack_fragments({self._coding_index: self.value})
        return coding.pack_fragments({})

    def _merge_register_blob(self, token: ReconfigToken) -> tuple[Tag, bytes]:
        """Coded-mode committed-register merge for one token hop.

        The max tag wins as in replicated mode; the value is a fragment
        *union* — the winning side's collected shares plus whatever
        share this server holds for that tag (its committed register,
        a pending entry racing its commit, or a stashed fragment).
        """
        if token.tag >= self.tag:
            merged_tag = token.tag
            shares = coding.unpack_fragments(token.value)
        else:
            merged_tag = self.tag
            shares = {}
        mine: Optional[bytes] = None
        if merged_tag == self.tag and self.frag_tag is None:
            mine = self.value
        elif merged_tag in self.pending:
            mine = self.pending[merged_tag].value
        elif merged_tag in self._frag_stash:
            mine = self._frag_stash[merged_tag]
        if mine is not None:
            shares[self._coding_index] = mine
        return merged_tag, coding.pack_fragments(shares)

    def _apply_merged_register(self, tag: Tag, blob: bytes) -> None:
        """Install the merged committed register from its fragment set.

        Our own share may be missing (we never forwarded the winning
        write): with ``k`` or more shares collected it is re-derived on
        the spot — the repair path rejoiners and merge losers ride —
        and the decoded value seeds the cache; with fewer, the tag
        advances anyway and the next read repairs the fragment.
        """
        shares = coding.unpack_fragments(blob)
        mine = shares.get(self._coding_index)
        if mine is None and len(shares) >= self._k:
            full = coding.decode(shares, self._k, self._n)
            mine = coding.encode(full, self._k, self._n)[self._coding_index]
            self._cache_tag, self._cache_value = tag, full
            self.stats_coding_repairs += 1
        self._install_fragment(tag, mine)

    def _is_stale(self, tag: Tag) -> bool:
        """True when ``tag`` is already committed here (duplicate filter)."""
        return tag.ts <= self.watermark.get(tag.server_id, 0)

    @staticmethod
    def _advance_completed(
        seqs: dict, tags: dict, client: int, seq: int, tag: Optional[Tag]
    ) -> bool:
        """Advance one client's (completed-seq, completed-tag) watermark
        pair; returns whether anything changed.

        The tag slot always describes the *max* seq: advancing past it
        replaces the tag — or pops it when the new op's tag is unknown,
        so the previous op's tag can never masquerade as the new one's —
        and a seq tie only backfills an empty slot.  Every path that
        learns of completions (local commits, the reconfiguration token
        merge, commit application) goes through here, so the invariant
        lives in one place.
        """
        recorded = seqs.get(client, -1)
        if seq > recorded:
            seqs[client] = seq
            if tag is not None:
                tags[client] = tag
            else:
                tags.pop(client, None)
            return True
        if seq == recorded and tag is not None and client not in tags:
            tags[client] = tag
            return True
        return False

    def _record_completed(self, op: OpId, tag: Optional[Tag] = None) -> None:
        if self._advance_completed(
            self.completed_ops, self.completed_tags, op.client, op.seq, tag
        ):
            self._mark_dirty()

    def _op_completed(self, op: OpId) -> bool:
        """Whether ``op`` is known to have committed (under any tag).
        Clients run one operation at a time with monotone sequence
        numbers, so the per-client watermark answers exactly this."""
        return self.completed_ops.get(op.client, -1) >= op.seq

    def _completed_tag(self, op: OpId) -> Optional[Tag]:
        """The tag ``op`` committed under, if this server knows it.

        Only the client's *latest* completed operation is remembered —
        a client retries only its one in-flight op, so that is the only
        seq a dedup ack can be for.  ``None`` for older seqs (the client
        has long since moved on and discards such acks) or when the
        completion was learned without its tag."""
        if self.completed_ops.get(op.client, -1) == op.seq:
            return self.completed_tags.get(op.client)
        return None

    def _note_tag(self, tag: Tag) -> None:
        """Track the highest timestamp ever seen (duplicates included)."""
        if tag.ts > self.ts_seen:
            self.ts_seen = tag.ts
            self._mark_dirty()

    def _next_ts(self) -> int:
        """Timestamp for a fresh initiation: strictly above everything
        installed, pending, or ever seen — including tags of duplicates
        this server dropped, which may still commit elsewhere."""
        return max(max_tag(self.pending.keys()).ts, self.tag.ts, self.ts_seen) + 1

    def _drop_superseded(self, op: OpId, committed: Tag) -> None:
        """Remove pending zombies of ``op`` left by duplicate initiations.

        ``op`` just committed under ``committed``; any other pending tag
        carrying the same operation is a duplicate whose circle may
        never close.  Its ack waiters get the real committed tag, and
        read thresholds pointing at it are clamped so no read waits for
        a commit that will never arrive.
        """
        zombies = [
            tag for tag, entry in self.pending.items()
            if entry.op == op and tag != committed
        ]
        for tag in zombies:
            del self.pending[tag]
            self.queued_tags.discard(tag)
            self.stats_superseded_dropped += 1
            self._mark_dirty()
            if self._coded:
                self._frag_stash.pop(tag, None)
                self._origin_values.pop(tag, None)
            for client, waiting_op in self.ack_waiters.pop(tag, ()):
                self._reply(client, WriteAck(waiting_op, committed))
        if self._coded:
            for tag in [
                t for t, parked in self._parked_prewrites.items()
                if parked.op == op and t != committed
            ]:
                del self._parked_prewrites[tag]
                self._frag_stash.pop(tag, None)
        if self.op_index.get(op) in zombies:
            del self.op_index[op]
        if zombies:
            self._retarget_read_waiters()

    def _retarget_read_waiters(self) -> None:
        """Clamp read thresholds to the highest still-outstanding tag.

        A waiter's threshold can point at a pending entry that was
        dropped as a superseded duplicate; left alone it would wait for
        a commit that never comes.  Clamping to ``max(pending, tag)`` is
        safe: every write completed before the read arrived has either
        been installed here (covered by ``self.tag``) or is still
        pending here (covered by the remaining pending set).
        """
        if not self.read_waiters:
            return
        ceiling = max_tag(self.pending.keys())
        if self.tag > ceiling:
            ceiling = self.tag
        changed = False
        clamped = []
        for threshold, client, op in self.read_waiters:
            if threshold > ceiling:
                threshold = ceiling
                changed = True
            clamped.append((threshold, client, op))
        if changed:
            self.read_waiters = clamped
            self._wake_readers()

    def _wake_readers(self) -> None:
        """Answer read waiters whose threshold is now installed.

        The installed tag only ever reflects *committed* values (installs
        happen at pre-write return, commit processing, state sync and
        merged-state application), so ``self.tag >= threshold`` is the
        paper's line-81 condition "received a write message with tag >=
        threshold".
        """
        if not self.read_waiters:
            return
        still_waiting = []
        satisfied = []
        for threshold, client, op in self.read_waiters:
            if self.tag >= threshold:
                satisfied.append((client, op))
            else:
                still_waiting.append((threshold, client, op))
        self.read_waiters = still_waiting
        for client, op in satisfied:
            # _answer_read may reconstruct (coded mode), which can
            # re-enter waiter lists — hence the two-phase drain.
            self._answer_read(client, op)

    def _reply(self, client: int, message) -> None:
        self._replies.append(Reply(client, message))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ServerProtocol id={self.server_id} tag={self.tag} "
            f"pending={len(self.pending)} paused={self.paused}>"
        )
