"""Systematic k-of-n erasure coding over GF(256).

The coded value backend (``ProtocolConfig.value_coding = "coded"``)
stripes every written value into ``k`` data fragments plus ``n - k``
parity fragments, one fragment per ring member; any ``k`` of the ``n``
fragments reconstruct the value byte-identically, and any ``k - 1`` are
information-theoretically insufficient.  This is the value-dissemination
scheme of coded atomic memory (CASGC): *tags* stay fully replicated —
they are what the protocol orders and the checker validates — while
*values*, the bandwidth- and storage-dominant part, travel and rest as
fragments of ``len(value)/k`` bytes each.

The code is a classic systematic Reed-Solomon construction:

* arithmetic is GF(2^8) with the AES-adjacent primitive polynomial
  ``x^8 + x^4 + x^3 + x^2 + 1`` (0x11d), log/antilog tables built at
  import;
* the ``n x k`` generator matrix is a Vandermonde matrix normalised by
  the inverse of its top ``k x k`` block, so the top ``k`` rows are the
  identity (data fragments are verbatim stripes — reads that hold all
  data fragments decode by concatenation) and *any* ``k`` rows remain
  invertible (the MDS property);
* for the single-parity geometry ``k = n - 1`` the parity row is all
  ones, so encode/decode degenerate to plain XOR — no table lookups on
  that fast path.

Byte-level hot loops use ``bytes.translate`` against per-coefficient
256-byte multiplication tables and big-integer XOR, which is as close to
SIMD as pure python gets.

The value length is carried in a 4-byte prefix inside the striped
payload (fragments are zero-padded to equal length), so ``decode`` needs
no out-of-band length and fragments of the same write are always
``stripe_size(len(value), k)`` bytes.
"""

from __future__ import annotations

import struct
from functools import lru_cache

from repro.errors import ProtocolError


class CodingError(ProtocolError):
    """A fragment set cannot be decoded (too few fragments, bad shape)."""


# ----------------------------------------------------------------------
# GF(256) arithmetic
# ----------------------------------------------------------------------

_GF_POLY = 0x11D

_EXP = [0] * 512
_LOG = [0] * 256
_x = 1
for _i in range(255):
    _EXP[_i] = _x
    _LOG[_x] = _i
    _x <<= 1
    if _x & 0x100:
        _x ^= _GF_POLY
for _i in range(255, 512):
    _EXP[_i] = _EXP[_i - 255]
del _x, _i


def gf_mul(a: int, b: int) -> int:
    """Product of two field elements."""
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


def gf_inv(a: int) -> int:
    """Multiplicative inverse; ``a`` must be non-zero."""
    if a == 0:
        raise CodingError("zero has no inverse in GF(256)")
    return _EXP[255 - _LOG[a]]


#: ``_MUL_TABLES[c]`` maps every byte ``x`` to ``c * x`` — one
#: ``bytes.translate`` multiplies a whole fragment by a coefficient.
_MUL_TABLES = tuple(bytes(gf_mul(c, x) for x in range(256)) for c in range(256))


def _xor_bytes(a: bytes, b: bytes) -> bytes:
    return (int.from_bytes(a, "big") ^ int.from_bytes(b, "big")).to_bytes(
        len(a), "big"
    )


def _mul_bytes(coeff: int, data: bytes) -> bytes:
    if coeff == 0:
        return bytes(len(data))
    if coeff == 1:
        return data
    return data.translate(_MUL_TABLES[coeff])


# ----------------------------------------------------------------------
# Generator matrix
# ----------------------------------------------------------------------


def _mat_mul(a: list[list[int]], b: list[list[int]]) -> list[list[int]]:
    cols = len(b[0])
    out = []
    for row in a:
        acc = [0] * cols
        for coeff, brow in zip(row, b):
            if coeff:
                for j in range(cols):
                    acc[j] ^= gf_mul(coeff, brow[j])
        out.append(acc)
    return out


def _mat_invert(matrix: list[list[int]]) -> list[list[int]]:
    """Gauss-Jordan inverse of a square matrix over GF(256)."""
    k = len(matrix)
    aug = [
        list(row) + [1 if i == j else 0 for j in range(k)]
        for i, row in enumerate(matrix)
    ]
    for col in range(k):
        pivot = next((r for r in range(col, k) if aug[r][col]), None)
        if pivot is None:
            raise CodingError("singular fragment matrix")
        aug[col], aug[pivot] = aug[pivot], aug[col]
        inv_pivot = gf_inv(aug[col][col])
        aug[col] = [gf_mul(inv_pivot, x) for x in aug[col]]
        for row in range(k):
            if row != col and aug[row][col]:
                factor = aug[row][col]
                aug[row] = [
                    x ^ gf_mul(factor, y) for x, y in zip(aug[row], aug[col])
                ]
    return [row[k:] for row in aug]


@lru_cache(maxsize=None)
def coding_matrix(k: int, n: int) -> tuple[tuple[int, ...], ...]:
    """The systematic ``n x k`` generator matrix for a ``(k, n)`` code.

    Rows ``0..k-1`` are the identity; any ``k`` rows are invertible.
    """
    if not 1 <= k <= n:
        raise CodingError(f"invalid code geometry k={k}, n={n}")
    if n > 255:
        raise CodingError(f"GF(256) supports at most 255 fragments, got n={n}")
    if n == k + 1:
        # Single parity: identity + all-ones (plain XOR), still MDS.
        rows = [[1 if j == i else 0 for j in range(k)] for i in range(k)]
        rows.append([1] * k)
        return tuple(tuple(row) for row in rows)
    # Evaluation points alpha^i are distinct for n <= 255; any k rows of
    # the Vandermonde matrix over distinct points are invertible, and
    # normalising by the top block's inverse preserves that while making
    # the data rows the identity.
    vandermonde = [
        [_EXP[(i * j) % 255] for j in range(k)] for i in range(n)
    ]
    top_inv = _mat_invert([list(row) for row in vandermonde[:k]])
    systematic = _mat_mul(vandermonde, top_inv)
    return tuple(tuple(row) for row in systematic)


# ----------------------------------------------------------------------
# Encode / decode
# ----------------------------------------------------------------------

_LEN_PREFIX = struct.Struct(">I")


def stripe_size(value_len: int, k: int) -> int:
    """Fragment length for a value of ``value_len`` bytes under ``k``."""
    raw = _LEN_PREFIX.size + value_len
    return (raw + k - 1) // k


def encode(value: bytes, k: int, n: int) -> list[bytes]:
    """Stripe ``value`` into ``n`` fragments, any ``k`` of which decode."""
    matrix = coding_matrix(k, n)
    stripe = stripe_size(len(value), k)
    raw = _LEN_PREFIX.pack(len(value)) + value
    raw += bytes(k * stripe - len(raw))
    shards = [raw[i * stripe : (i + 1) * stripe] for i in range(k)]
    if n == k:
        return shards
    if n == k + 1:
        parity = shards[0]
        for shard in shards[1:]:
            parity = _xor_bytes(parity, shard)
        return shards + [parity]
    fragments = list(shards)
    for row in matrix[k:]:
        acc = bytes(stripe)
        for coeff, shard in zip(row, shards):
            if coeff:
                acc = _xor_bytes(acc, _mul_bytes(coeff, shard))
        fragments.append(acc)
    return fragments


def decode(fragments: dict[int, bytes], k: int, n: int) -> bytes:
    """Reconstruct the value from any ``k`` of the ``n`` fragments.

    ``fragments`` maps fragment index to fragment bytes; extras beyond
    ``k`` are ignored.  Raises :class:`CodingError` when fewer than
    ``k`` fragments are supplied or the set is malformed.
    """
    if len(fragments) < k:
        raise CodingError(
            f"need {k} fragments to decode, got {len(fragments)}"
        )
    chosen = sorted(fragments)[:k]
    if any(index < 0 or index >= n for index in chosen):
        raise CodingError(f"fragment index out of range for n={n}: {chosen}")
    stripe = len(fragments[chosen[0]])
    if any(len(fragments[index]) != stripe for index in chosen):
        raise CodingError("fragments of one write must share a length")
    if chosen == list(range(k)):
        shards = [fragments[i] for i in range(k)]
    else:
        matrix = coding_matrix(k, n)
        sub = [list(matrix[index]) for index in chosen]
        inverse = _mat_invert(sub)
        shards = []
        for row in inverse:
            acc = bytes(stripe)
            for coeff, index in zip(row, chosen):
                if coeff:
                    acc = _xor_bytes(acc, _mul_bytes(coeff, fragments[index]))
            shards.append(acc)
    raw = b"".join(shards)
    (value_len,) = _LEN_PREFIX.unpack_from(raw, 0)
    if value_len > len(raw) - _LEN_PREFIX.size:
        raise CodingError(
            f"declared value length {value_len} exceeds striped payload"
        )
    return raw[_LEN_PREFIX.size : _LEN_PREFIX.size + value_len]


# ----------------------------------------------------------------------
# Fragment-set blobs (reconfiguration transfer format)
# ----------------------------------------------------------------------
#
# Reconfiguration tokens and commits carry *sets* of fragments in their
# ``value``/pending-entry byte fields: each server on the circle unions
# in the fragments it holds, and the commit's accumulated set is what
# lets a rejoiner re-derive its own fragment from any k peers (the
# RADON-style repair).  The blob is a flat sequence of
# ``(index, length, fragment)`` records.

_BLOB_ENTRY = struct.Struct(">II")


def pack_fragments(fragments: dict[int, bytes]) -> bytes:
    """Serialise a fragment set; the empty set packs to ``b""``."""
    parts = []
    for index in sorted(fragments):
        fragment = fragments[index]
        parts.append(_BLOB_ENTRY.pack(index, len(fragment)))
        parts.append(fragment)
    return b"".join(parts)


def unpack_fragments(blob: bytes) -> dict[int, bytes]:
    """Inverse of :func:`pack_fragments`; raises on malformed blobs."""
    fragments: dict[int, bytes] = {}
    offset = 0
    while offset < len(blob):
        if offset + _BLOB_ENTRY.size > len(blob):
            raise CodingError("truncated fragment blob header")
        index, length = _BLOB_ENTRY.unpack_from(blob, offset)
        offset += _BLOB_ENTRY.size
        if offset + length > len(blob):
            raise CodingError("truncated fragment blob entry")
        fragments[index] = blob[offset : offset + length]
        offset += length
    return fragments
