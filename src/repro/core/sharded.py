"""Block store: many independent registers over one cluster — elastically.

The paper's introduction: "Distributed storage systems combine multiple
of these read/write objects, each storing its share of data, as building
blocks for a single large storage system."  :class:`BlockStore` is that
layer — ``num_blocks`` independent atomic registers, one
:class:`~repro.core.server.ServerProtocol` instance per block per server,
multiplexed over the same simulated machines and NICs.

Every ring and client-request message is wrapped in a
:class:`ShardEnvelope` carrying the block index; each server's ring link
round-robins across the blocks' protocol instances, so blocks share the
wire fairly.  Because blocks are independent registers, per-block
operations retain the single-register atomicity guarantees.

The sharded hosts participate fully in the cluster's fault machinery:
each block's protocol persists a durable snapshot, a crashed server
restarts from the per-block stores and rejoins every block's ring
(:meth:`ShardedServerHost.restart`), and under ``fd="heartbeat"`` every
block runs the epoch-guarded quorum-installed view discipline —
suspicion, stale-epoch fencing and reconfiguration tokens all travel in
:class:`ShardEnvelope`\\ s like any other ring traffic.

Elastic mode (``placement`` given) replaces the implicit "every server
hosts every block" map with an explicit versioned
:class:`~repro.core.placement.PlacementTable` over fixed disjoint
*rings* of servers, and adds the control plane a skewed workload needs:

* hosts consult the table — a request for a block not placed here gets
  a :class:`~repro.core.placement.PlacementRedirect` instead of silent
  service, and ring frames for un-hosted blocks are dropped and counted;
* a :class:`Rebalancer` samples per-block load, runs the pure
  :func:`~repro.core.placement.plan_rebalance` policy, and executes live
  migrations: freeze client traffic for the block, drain the source ring
  to quiescence, ship one epoch-stamped snapshot to every destination
  member (nonce-guarded against duplicates and aborted attempts), then
  cut the placement over and redirect the parked clients;
* :class:`ShardClientHost` caches per-block placement entries and
  chases redirects (version-guarded, budget-bounded) so a stale binding
  heals in one round trip instead of timing out.

Elastic clusters require the perfect failure detector and replicated
values: within a ring, crash recovery is the existing epoch machinery;
*between* rings, the only state transfer is the drained-snapshot
handoff, which the destination adopts with
:meth:`~repro.core.server.ServerProtocol.from_transfer`.  Any
destination-member crash, loss of the last source copy, or timeout
aborts the attempt — the table is only mutated *after* every
destination member holds the state, so aborting is always safe and
clients never observe two serving placements.  See docs/sharding.md
for the full protocol and the linearizability argument.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.durable import MemorySnapshotStore
from repro.core.messages import OpId, payload_size
from repro.core.placement import (
    PLACEMENT_STALE_REASON,
    BlockTransfer,
    MigrationPlan,
    PlacementRedirect,
    PlacementTable,
    plan_rebalance,
)
from repro.core.ring import RingView
from repro.core.server import ServerProtocol
from repro.errors import (
    ConfigurationError,
    PlacementStaleError,
    StorageUnavailableError,
)
from repro.runtime.interface import Reply
from repro.runtime.sim_net import ClientHost, HostBase, OutLoop, SimCluster
from repro.sim.counters import (
    MIGRATION_ABORTED,
    MIGRATION_BYTES,
    MIGRATION_COMPLETED,
    MIGRATION_SPLITS,
    MIGRATION_STARTED,
    SHARD_BLOCK_BYTES,
    SHARD_BLOCK_OPS,
    SHARD_PARKED,
    SHARD_QUEUE_DEPTH,
    SHARD_REDIRECTS,
    SHARD_STALE_DROPPED,
)

#: Redirect chases a client grants one operation before giving up with
#: :data:`PLACEMENT_STALE_REASON`.  Each chase is one placement hop; a
#: healthy system needs exactly one per migration that raced the
#: operation, so exhausting eight means the client's view of the table
#: cannot converge (e.g. the table points at hosts that no longer serve
#: the block) and failing fast beats retrying forever.
REDIRECT_BUDGET = 8

#: Cadence of the migration drain poll — well under a ring round trip,
#: so a drained source is noticed promptly without busy-spinning the
#: scheduler.
_DRAIN_POLL = 0.002


@dataclass(frozen=True)
class ShardEnvelope:
    """Wraps a protocol message with its block index."""

    reg: int
    inner: Any

    def payload_bytes(self) -> int:
        return 4 + payload_size(self.inner)


class ShardedServerHost(HostBase):
    """One machine hosting a register protocol instance per block.

    Without a ``placement`` every block lives here over the cluster-wide
    ring.  With one, this host builds protocol instances only for the
    blocks placed on its ring, answers requests for anything else with a
    placement redirect, and lets the rebalancer install and evict blocks
    live.
    """

    def __init__(
        self,
        cluster: SimCluster,
        server_id: int,
        num_blocks: int,
        placement: Optional[PlacementTable] = None,
    ):
        super().__init__(cluster, f"s{server_id}")
        self.server_id = server_id
        self._placement = placement
        if placement is None:
            hosted = tuple(range(num_blocks))
        else:
            hosted = placement.blocks_of(server_id)
        #: Per-block durable snapshot stores — this machine's "disk".
        #: They live on the host (not the protocols) because the host
        #: object models the machine across crash/restart cycles: the
        #: protocol instances are volatile and rebuilt by :meth:`restart`,
        #: the stores survive.
        self._stores: dict[int, MemorySnapshotStore] = {
            reg: MemorySnapshotStore() for reg in sorted(hosted)
        }
        self.protos: dict[int, ServerProtocol] = {
            reg: ServerProtocol(
                server_id,
                self._block_ring(reg),
                cluster.config.protocol,
                initial_value=cluster.config.initial_value,
                durable=self._stores[reg],
            )
            for reg in sorted(hosted)
        }
        #: Cumulative per-block client-op and byte tallies, read as
        #: deltas by the rebalancer's sampling tick.  Never reset — not
        #: even across restarts — so the deltas stay non-negative.
        self.block_ops: dict[int, int] = {}
        self.block_bytes: dict[int, int] = {}
        self._ring_rr = 0
        self._reply_queue: deque = deque()
        #: Generation of the running rejoin-announcement pump, if any
        #: (see :meth:`SimCluster.begin_rejoin`).
        self._rejoin_pump_gen: Optional[int] = None
        #: Last-mirrored protocol stats, for trace-counter deltas.
        self._mirrored_stats: dict[str, int] = {}
        nics = cluster.topo.nics[self.name]
        if cluster.config.topology == "dual":
            self.nic_ring = nics["srv"]
            self.nic_client = nics["cli"]
            self._loops.append(OutLoop(self, self.nic_ring, [self._ring_source]))
            self._loops.append(OutLoop(self, self.nic_client, [self._reply_source]))
        else:
            nic = nics["lan"]
            self.nic_ring = nic
            self.nic_client = nic
            self._loops.append(OutLoop(self, nic, [self._ring_source, self._reply_source]))

    def _block_ring(self, reg: int) -> RingView:
        """The view a fresh protocol instance for ``reg`` starts in: the
        cluster-wide ring without a placement, the block's placed ring
        (all members alive, epoch 0) with one."""
        if self._placement is None:
            return self.cluster.ring
        return RingView(self._placement.servers_of(reg), frozenset(), 0)

    def all_protos(self) -> list[ServerProtocol]:
        """Every block's protocol instance (cluster machinery iterates
        these for rejoin pumps, reconcile timers and stat mirroring)."""
        return list(self.protos.values())

    # -- inbound ------------------------------------------------------

    def receive_ring(self, envelope: ShardEnvelope, sender=None) -> None:
        if not self.alive:
            return
        proto = self.protos.get(envelope.reg)
        if proto is None:
            # Ring traffic for a block this host does not serve: a frame
            # from a superseded placement that survived in the fabric,
            # or a rejoin announcement round-robined to a sponsor
            # outside the block's ring.  There is no instance to mutate;
            # it dies here, counted.
            self.env.trace.count(SHARD_STALE_DROPPED)
            return
        self._post(proto.on_ring_message(envelope.inner, sender))
        self.cluster.after_protocol_step(self)

    def receive_client(self, client_id: int, envelope: ShardEnvelope) -> None:
        if not self.alive:
            return
        reg = envelope.reg
        proto = self.protos.get(reg)
        if proto is None:
            if self._placement is not None:
                # The client's binding is stale: answer with the
                # authoritative placement entry instead of serving (or
                # silently dropping) the mis-routed request.
                self._redirect(client_id, envelope)
            else:
                self.env.trace.count(SHARD_STALE_DROPPED)
            return
        rebalancer = self.cluster.rebalancer
        if rebalancer is not None and rebalancer.frozen(reg):
            # The block is mid-migration: park the request with the
            # control plane.  At cutover the client is redirected to the
            # new ring; on abort the request is re-delivered here.
            rebalancer.park(self.server_id, client_id, envelope)
            return
        self.block_ops[reg] = self.block_ops.get(reg, 0) + 1
        request_bytes = payload_size(envelope.inner)
        self.block_bytes[reg] = self.block_bytes.get(reg, 0) + request_bytes
        self.env.trace.count(SHARD_BLOCK_OPS)
        self.env.trace.count(SHARD_BLOCK_BYTES, request_bytes)
        self._post(proto.on_client_message(client_id, envelope.inner))
        # Leased reads complete with zero ring traffic; without this the
        # lease stat mirror would wait for a ring receipt that may never
        # come (see ServerHost.receive_client).
        self.cluster.after_protocol_step(self)

    def _redirect(self, client_id: int, envelope: ShardEnvelope) -> None:
        """Reply with the authoritative placement entry for the block
        (rides the normal reply path, so it is wire-charged and races
        real replies honestly)."""
        version, servers = self._placement.entry(envelope.reg)
        redirect = PlacementRedirect(
            op=envelope.inner.op, block=envelope.reg, version=version, servers=servers
        )
        self.env.trace.count(SHARD_REDIRECTS)
        self._post([Reply(client_id, redirect)])

    def crash(self) -> None:
        """Crash, stamping the cluster-wide crash order first: elastic
        crash recovery compares stamps to decide which member of a fully
        crashed ring holds the freshest copy (see :meth:`_resume_alone`)."""
        if self._alive:
            self.cluster.note_crash(self.server_id)
        super().crash()

    def notify_crash(self, crashed_id: int) -> None:
        if not self.alive:
            return
        for proto in self.protos.values():
            if crashed_id in proto.ring.members:
                self._post(proto.on_server_crash(crashed_id))

    def notify_suspect(self, peer: int) -> None:
        """Imperfect-detector suspicion (may be wrong): every block's
        register pauses behind the same server-level suspicion."""
        if not self.alive:
            return
        for proto in self.protos.values():
            self._post(proto.on_suspect(peer))
        self.cluster.after_protocol_step(self)

    def notify_unsuspect(self, peer: int) -> None:
        """A suspected peer's heartbeat arrived: suspicion withdrawn."""
        if not self.alive:
            return
        for proto in self.protos.values():
            self._post(proto.on_unsuspect(peer))
        self.cluster.after_protocol_step(self)

    # -- elastic placement hooks (rebalancer-driven) -------------------

    def install_block(self, reg: int, proto: ServerProtocol, store) -> None:
        """Adopt a migrated block at cutover: the staged protocol (built
        by :meth:`ServerProtocol.from_transfer`) starts serving and its
        store becomes part of this machine's disk."""
        self._stores[reg] = store
        self.protos[reg] = proto
        self.kick()

    def drop_block(self, reg: int) -> None:
        """Evict a block this host no longer serves — protocol *and*
        store: keeping the superseded snapshot would let a later restart
        resurrect a stale copy of a block that lives elsewhere now.
        Safe on dead hosts (the rebalancer sweeps source members whether
        or not they are up)."""
        self.protos.pop(reg, None)
        self._stores.pop(reg, None)

    def queue_depth(self) -> int:
        """Instantaneous backlog across hosted blocks (pending writes
        plus queued client writes), sampled by the rebalancer."""
        return sum(
            len(proto.pending) + len(proto.write_queue)
            for proto in self.protos.values()
        )

    # -- restart (crash recovery) --------------------------------------

    def restart(self) -> None:
        """Restart this server from its per-block durable snapshots.

        Mirrors :meth:`ServerHost.restart`: volatile state — the protocol
        instances, the reply queue, NIC queues (purged at crash) — is
        gone; each block's protocol is rebuilt from its snapshot store,
        the reliable channels re-open (a restart is a new connection on
        every link) and one rejoin pump drives every still-rejoining
        block until reconfiguration commits fold the server back in.

        With a placement, the hosted set is recomputed from the
        *current* table: blocks migrated away while this server was down
        are dropped (their local snapshots belong to a superseded
        placement), and per-block aloneness is judged against the
        block's own ring, not the whole cluster.
        """
        if self._alive:
            return
        self.cluster.reopen_server(self.server_id)
        super().restart()
        self._reply_queue.clear()
        self._ring_rr = 0
        self._rejoin_pump_gen = None
        self._mirrored_stats = {}
        if self._placement is None:
            alone = self.cluster.restart_resumes_alone(self.server_id)
            self.protos = {
                reg: ServerProtocol.restore(
                    self.server_id,
                    range(self.cluster.config.num_servers),
                    store.load(),
                    self.cluster.config.protocol,
                    durable=store,
                    initial_value=self.cluster.config.initial_value,
                    alone=alone,
                    generation=self.restarts,
                )
                for reg, store in self._stores.items()
            }
        else:
            hosted = set(self._placement.blocks_of(self.server_id))
            for reg in sorted(set(self._stores) - hosted):
                del self._stores[reg]
                self.env.trace.count(SHARD_STALE_DROPPED)
            self.protos = {}
            for reg in sorted(hosted):
                store = self._stores.setdefault(reg, MemorySnapshotStore())
                members = self._placement.servers_of(reg)
                alone = self._resume_alone(reg, members)
                self.protos[reg] = ServerProtocol.restore(
                    self.server_id,
                    members,
                    store.load(),
                    self.cluster.config.protocol,
                    durable=store,
                    initial_value=self.cluster.config.initial_value,
                    alone=alone,
                    generation=self.restarts,
                )
        if self.cluster.hb is not None:
            self.cluster.hb.reset_server(self.server_id)
        self.cluster.begin_rejoin(self)
        self.kick()

    def _resume_alone(self, reg: int, members) -> bool:
        """Whether this restarting server may serve ``reg`` without a
        rejoin.

        ``cluster.restart_resumes_alone`` answers this for the whole
        cluster; with per-block rings the question is per block, and
        "no other member alive" is *not* sufficient: when every member
        of a 2-member ring crashes, only the member that crashed *last*
        saw every completed write (a write circulates all alive view
        members, so the longest-lived member's snapshot is the freshest).
        A member that crashed earlier resuming alone would serve — and
        the drained-snapshot migration path would propagate — a stale
        copy of the block.

        The rule: a live peer that is actually serving the block means a
        normal rejoin (it has the authoritative state).  Otherwise every
        other member is dead or itself mid-rejoin, i.e. frozen at its
        own last crash — this server may resume alone only if it crashed
        after all of them.  Liveness note: the last-crashed member must
        eventually restart for the block to make progress, which is
        inherent to this recovery model (it holds the only complete
        copy).
        """
        stamps = self.cluster.crash_stamps
        mine = stamps.get(self.server_id, 0)
        for sid in members:
            if sid == self.server_id:
                continue
            host = self.cluster.servers[sid]
            if host.alive:
                proto = host.protos.get(reg)
                if proto is not None and not proto.rejoining:
                    return False  # live serving peer: rejoin from it
                # Alive but itself rejoining (or not yet hosting the
                # block): no fresher than its last crash; fall through
                # to the stamp comparison.
            if stamps.get(sid, 0) > mine:
                return False  # peer crashed after us: it holds fresher state
        return True

    # -- outbound -------------------------------------------------------

    @property
    def ring_batch_limit(self) -> int:
        """Batch only on a dedicated ring NIC (see the unsharded host):
        on a shared port a k-message frame would out-share client
        replies k-fold in the frame-granular round-robin."""
        if self.nic_ring is self.nic_client:
            return 1
        return self.cluster.batch_limit

    def _ring_source(self):
        """Round-robin the ring link across blocks with pending work.

        Directed out-of-ring-order traffic (rejoin announcements,
        stale-epoch notices, view-proposal tokens) takes priority within
        a block's slot, exactly as on the unsharded host — without it a
        restarted sharded server could never announce itself.

        The hosted set is no longer contiguous once blocks migrate, so
        the round-robin walks the *sorted keys* of ``protos`` — it is
        the slot index, not the block index, that advances.
        """
        keys = sorted(self.protos)
        if not keys:
            return None
        slots = len(keys)
        for offset in range(slots):
            index = (self._ring_rr + offset) % slots
            reg = keys[index]
            proto = self.protos[reg]
            directed = proto.next_directed_message()
            if directed is not None:
                destination, message = directed
                self._ring_rr = (index + 1) % slots
                return (f"s{destination}", ShardEnvelope(reg, message), "ring")
            limit = self.ring_batch_limit
            if limit > 1:
                # Batch within one block's slot only: blocks hold
                # independent ring views, so their successors may
                # diverge and a cross-block frame could mix
                # destinations.  Fairness across blocks is unchanged —
                # the slot still advances by one block per frame.
                batch = proto.next_ring_batch(limit)
                if batch:
                    self._ring_rr = (index + 1) % slots
                    wrapped = [ShardEnvelope(reg, m) for m in batch]
                    payload = wrapped[0] if len(wrapped) == 1 else wrapped
                    return (f"s{proto.successor}", payload, "ring")
                continue
            message = proto.next_ring_message()
            if message is not None:
                self._ring_rr = (index + 1) % slots
                return (f"s{proto.successor}", ShardEnvelope(reg, message), "ring")
        return None

    def _reply_source(self):
        # Iterative on purpose: a burst of replies addressed to departed
        # clients must be skipped in a loop — one recursive call per
        # stale entry blew the stack on large backlogs.
        while self._reply_queue:
            reply = self._reply_queue.popleft()
            machine = self.cluster.client_name(reply.client)
            if machine is not None:
                return (machine, reply.message, "reply")
        return None

    def _post(self, replies) -> None:
        self._reply_queue.extend(replies)
        self.kick()


@dataclass
class _Migration:
    """State of the single in-flight migration attempt."""

    plan: MigrationPlan
    nonce: int
    #: Placement version the block carries once cutover commits.
    version: int
    started: float
    #: Client envelopes parked at source members while the block is
    #: frozen: ``(server_id, client_id, envelope)``.
    parked: list = field(default_factory=list)
    #: Destination member -> staged ``(protocol, store)``, installed
    #: only at cutover.  Staged state is volatile: an abort discards it
    #: and a destination crash loses it implicitly.
    staged: dict = field(default_factory=dict)


class Rebalancer:
    """Elastic control plane: samples load, plans and executes migrations.

    One migration runs at a time.  The protocol, in order:

    1. **Freeze** — :meth:`frozen` makes source hosts park new client
       requests for the block (ring traffic keeps flowing: in-flight
       writes must finish).  The freeze lives *here*, not on the hosts,
       so a source-host restart mid-migration cannot silently unfreeze.
    2. **Drain** — poll until every alive source member's instance is
       :meth:`~repro.core.server.ServerProtocol.quiescent`.
    3. **Transfer** — snapshot the max-tag alive source member and ship
       one :class:`BlockTransfer` per destination member through the
       nemesis-routed fabric (wire-charged; duplicates and post-abort
       stragglers fail the nonce check and are dropped).
    4. **Stage** — each arriving transfer builds the destination's
       instance via :meth:`ServerProtocol.from_transfer`, *not yet
       serving*.
    5. **Cutover** — once every destination member is staged: mutate the
       placement table, install the staged instances, drop the block
       from every source member (store included), redirect the parked
       clients to the new ring.

    A destination-member crash, loss of the last source copy, or the
    attempt timeout **aborts**: staged state is discarded, the block
    unfreezes and parked requests are re-delivered — the table was never
    touched, so the source ring simply resumes serving.

    The sampling tick also emits the ``shard.queue_depth`` gauge, and
    stops rescheduling itself past ``horizon`` so a finished simulation
    can go idle (an in-flight migration still runs to completion or
    abort).
    """

    def __init__(
        self,
        cluster: SimCluster,
        placement: PlacementTable,
        *,
        interval: float = 0.05,
        first_delay: Optional[float] = None,
        horizon: float = 30.0,
        migration_timeout: float = 0.5,
        imbalance: float = 2.0,
        min_load: float = 1.0,
        split_fraction: float = 0.5,
    ):
        if interval <= 0:
            raise ConfigurationError("rebalancer interval must be > 0")
        if migration_timeout <= 0:
            raise ConfigurationError("migration_timeout must be > 0")
        self.cluster = cluster
        self.env = cluster.env
        self.placement = placement
        self.interval = interval
        self.horizon = horizon
        self.migration_timeout = migration_timeout
        self.imbalance = imbalance
        self.min_load = min_load
        self.split_fraction = split_fraction
        #: Migration outcome tallies (tests and the bench record read
        #: these; the trace counters are the cross-run evidence).
        self.completed = 0
        self.aborted = 0
        self.splits = 0
        self._active: Optional[_Migration] = None
        self._nonce = 0
        #: Last-sampled cumulative per-block op totals, for load deltas.
        self._sampled: dict[int, int] = {}
        for host in cluster.servers.values():
            host.on_crash(self._on_server_crash)
        self.env.scheduler.schedule(
            interval if first_delay is None else first_delay, self._tick
        )

    # -- host-facing queries -------------------------------------------

    def frozen(self, reg: int) -> bool:
        """Whether client traffic for ``reg`` must park (mid-migration)."""
        return self._active is not None and self._active.plan.block == reg

    def park(self, server_id: int, client_id: int, envelope: ShardEnvelope) -> None:
        self._active.parked.append((server_id, client_id, envelope))
        self.env.trace.count(SHARD_PARKED)

    # -- sampling tick --------------------------------------------------

    def _tick(self) -> None:
        if self._active is None:
            loads = self._sample()
            depth = sum(
                host.queue_depth()
                for _sid, host in sorted(self.cluster.servers.items())
                if host.alive
            )
            if depth:
                self.env.trace.count(SHARD_QUEUE_DEPTH, depth)
            plan = plan_rebalance(
                loads,
                self.placement,
                imbalance=self.imbalance,
                min_load=self.min_load,
                split_fraction=self.split_fraction,
            )
            if plan is not None:
                self._start(plan)
        if self.env.now < self.horizon:
            self.env.scheduler.schedule(self.interval, self._tick)

    def _sample(self) -> dict[int, float]:
        """Per-block load since the last sample: delta of the hosts'
        cumulative op counts (dead hosts included — their totals are
        frozen, not lost, so deltas stay non-negative)."""
        totals: dict[int, int] = {}
        for _sid, host in sorted(self.cluster.servers.items()):
            for reg, ops in host.block_ops.items():
                totals[reg] = totals.get(reg, 0) + ops
        loads: dict[int, float] = {}
        for reg in sorted(self.placement.blocks):
            cumulative = totals.get(reg, 0)
            loads[reg] = float(cumulative - self._sampled.get(reg, 0))
            self._sampled[reg] = cumulative
        return loads

    # -- migration state machine ---------------------------------------

    def _start(self, plan: MigrationPlan) -> None:
        servers = self.cluster.servers
        if not all(servers[sid].alive for sid in self.placement.rings[plan.dest]):
            # Migrating onto a ring with a dead member would abort the
            # moment the crash listener looked; don't start.
            return
        if not any(servers[sid].alive for sid in self.placement.rings[plan.source]):
            return  # nobody to drain or snapshot
        self._nonce += 1
        self._active = _Migration(
            plan=plan,
            nonce=self._nonce,
            version=self.placement.versions[plan.block] + 1,
            started=self.env.now,
        )
        self.env.trace.count(MIGRATION_STARTED)
        if plan.split:
            self.splits += 1
            self.env.trace.count(MIGRATION_SPLITS)
        self.env.scheduler.schedule(self.migration_timeout, self._expire, self._nonce)
        self._poll_drain(self._nonce)

    def _expire(self, nonce: int) -> None:
        if self._active is not None and self._active.nonce == nonce:
            self._abort()

    def _poll_drain(self, nonce: int) -> None:
        active = self._active
        if active is None or active.nonce != nonce:
            return
        block = active.plan.block
        holders: list[tuple] = []
        for sid in self.placement.rings[active.plan.source]:
            host = self.cluster.servers[sid]
            if not host.alive:
                continue
            proto = host.protos.get(block)
            if proto is None:
                continue
            if not proto.quiescent():
                # Still in flight (or rejoining): check again shortly;
                # the attempt timeout bounds how long we wait.
                self.env.scheduler.schedule(_DRAIN_POLL, self._poll_drain, nonce)
                return
            holders.append((proto.tag, -sid, proto))
        if not holders:
            self._abort()
            return
        # Max tag wins; ties break toward the lowest server id.  Every
        # quiescent member has an empty pending set, so the max-tag copy
        # is the complete committed state.
        _tag, _key, source_proto = max(holders)
        self._transfer(source_proto)

    def _transfer(self, proto: ServerProtocol) -> None:
        active = self._active
        snapshot = proto.snapshot()
        source_name = f"s{proto.server_id}"
        for dst in self.placement.rings[active.plan.dest]:
            transfer = BlockTransfer(
                block=active.plan.block,
                nonce=active.nonce,
                source=proto.server_id,
                snapshot=snapshot,
                version=active.version,
            )
            size = transfer.payload_bytes()
            self.env.trace.count(MIGRATION_BYTES, size)
            src_nic, dst_nic, network = self.cluster.topo.nic_for(
                source_name, f"s{dst}"
            )
            network.unicast(
                src_nic,
                dst_nic,
                size,
                transfer,
                lambda message, dst=dst: self._on_transfer(dst, message),
            )

    def _on_transfer(self, dst: int, transfer: BlockTransfer) -> None:
        active = self._active
        if (
            active is None
            or transfer.nonce != active.nonce
            or transfer.block != active.plan.block
        ):
            # A straggler from an aborted attempt, or a nemesis
            # duplicate that outlived its migration: never installed.
            self.env.trace.count(SHARD_STALE_DROPPED)
            return
        if dst in active.staged:
            self.env.trace.count(SHARD_STALE_DROPPED)  # nemesis duplicate
            return
        host = self.cluster.servers[dst]
        if not host.alive:
            return  # the crash listener is aborting this attempt
        store = MemorySnapshotStore()
        staged = ServerProtocol.from_transfer(
            dst,
            self.placement.rings[active.plan.dest],
            transfer.snapshot,
            self.cluster.config.protocol,
            durable=store,
            initial_value=self.cluster.config.initial_value,
            generation=host.restarts,
        )
        active.staged[dst] = (staged, store)
        if len(active.staged) == len(self.placement.rings[active.plan.dest]):
            self._cutover()

    def _cutover(self) -> None:
        active = self._active
        plan = active.plan
        # Order matters: the table moves first, so the redirects below
        # (and any request racing them) read the new entry; the source
        # members drop the block before any redirected request could
        # land on one and be mis-served.
        self.placement.move(plan.block, plan.dest)
        for sid in self.placement.rings[plan.source]:
            self.cluster.servers[sid].drop_block(plan.block)
        for dst in sorted(active.staged):
            staged, store = active.staged[dst]
            self.cluster.servers[dst].install_block(plan.block, staged, store)
        self._active = None
        self.completed += 1
        self.env.trace.count(MIGRATION_COMPLETED)
        for server_id, client_id, envelope in active.parked:
            host = self.cluster.servers.get(server_id)
            if host is not None and host.alive:
                host._redirect(client_id, envelope)

    def _abort(self) -> None:
        active = self._active
        if active is None:
            return
        # Staged instances and their stores are volatile — dropping the
        # reference is the whole cleanup.  The placement table was never
        # touched, so the source ring resumes serving as if the attempt
        # never happened.
        self._active = None
        self.aborted += 1
        self.env.trace.count(MIGRATION_ABORTED)
        for server_id, client_id, envelope in active.parked:
            host = self.cluster.servers.get(server_id)
            if host is not None and host.alive:
                host.receive_client(client_id, envelope)

    def _on_server_crash(self, process) -> None:
        active = self._active
        if active is None:
            return
        sid = int(process.name[1:])
        if sid in self.placement.rings[active.plan.dest]:
            # A destination member died: its staged copy (volatile) is
            # gone, so the destination ring can never fully stage.
            self._abort()
            return
        source = self.placement.rings[active.plan.source]
        if sid in source and not any(
            self.cluster.servers[m].alive for m in source
        ):
            self._abort()  # the last source copy is gone


class ShardClientHost(ClientHost):
    """A client machine whose logical clients target a block per op.

    The block index is pinned **per operation** when it starts
    (:meth:`_bind_block`), so a timeout retransmit re-wraps with the
    originating operation's block even if this machine has since issued
    operations against other blocks.  (The original implementation kept
    one machine-wide "current block" read again at retransmit time,
    which routed a delayed retry into whatever block a concurrent
    logical client had switched to — corrupting a neighbouring
    register; see the regression test in
    ``tests/integration/test_sharded.py``.)

    On an elastic cluster the host additionally keeps a per-block
    placement cache: requests route onto the cached ring's members (so
    retries walk the *block's* ring, not the whole cluster), and a
    :class:`PlacementRedirect` updates the cache — only forward, by
    version — and reissues the in-flight request.  A redirect chase
    past :data:`REDIRECT_BUDGET` fails the operation with
    :data:`PLACEMENT_STALE_REASON`.
    """

    def __init__(self, cluster, client_id, servers, config):
        super().__init__(cluster, client_id, servers, config)
        #: Block for the *next* operation, per logical client — consumed
        #: by :meth:`_bind_block` the moment the operation starts.
        self._pending_block: dict[int, int] = {}
        #: In-flight operation -> its pinned block.
        self._op_blocks: dict[OpId, int] = {}
        #: Last bound op per logical client (each logical client has at
        #: most one in flight, so binding a new op retires the old
        #: entry — the map stays bounded by the client count).
        self._last_op: dict[int, OpId] = {}
        #: Block -> cached ``(version, members)`` placement entry.
        #: Seeded from the table at first touch, then moved only forward
        #: by redirects carrying a strictly newer version.
        self._placement_cache: dict[int, tuple[int, tuple[int, ...]]] = {}
        #: Redirect chases per in-flight operation (budget enforcement).
        self._redirects: dict[OpId, int] = {}

    def write_block(
        self, reg: int, value: bytes, callback: Callable, client_id: Optional[int] = None
    ):
        self._pending_block[self._logical(client_id)] = reg
        return self.write(value, callback, client_id=client_id)

    def read_block(self, reg: int, callback: Callable, client_id: Optional[int] = None):
        self._pending_block[self._logical(client_id)] = reg
        return self.read(callback, client_id=client_id)

    def abort_op(self, client_id: Optional[int] = None):
        op = super().abort_op(client_id)
        if op is not None:
            self._op_blocks.pop(op, None)
            self._redirects.pop(op, None)
            if self._last_op.get(op.client) == op:
                del self._last_op[op.client]
        return op

    def _logical(self, client_id: Optional[int]) -> int:
        return self.client_id if client_id is None else client_id

    def _bind_block(self, op: OpId) -> int:
        reg = self._pending_block.pop(op.client, 0)
        previous = self._last_op.get(op.client)
        if previous is not None:
            self._op_blocks.pop(previous, None)
            self._redirects.pop(previous, None)
        self._last_op[op.client] = op
        self._op_blocks[op] = reg
        return reg

    def _wrap_request(self, message):
        return ShardEnvelope(self._op_blocks[message.op], message)

    # -- elastic placement routing -------------------------------------

    def _request_destination(self, server: int, message) -> str:
        placement = self.cluster.placement
        if placement is None:
            return super()._request_destination(server, message)
        reg = self._op_blocks.get(message.op)
        if reg is None:
            return super()._request_destination(server, message)
        entry = self._placement_cache.get(reg)
        if entry is None:
            # First touch: consult the placement service once.  From
            # here this machine's view of the block ages until a
            # redirect refreshes it — which is what makes the redirect
            # path real rather than decorative.
            entry = placement.entry(reg)
            self._placement_cache[reg] = entry
        _version, members = entry
        # The protocol walks its full server list on retries; fold that
        # walk onto the block's ring so every retry lands on a member.
        position = self.servers.index(server)
        return f"s{members[position % len(members)]}"

    def on_reply_delivered(self, message) -> None:
        if isinstance(message, PlacementRedirect):
            self._on_redirect(message)
            return
        super().on_reply_delivered(message)

    def _on_redirect(self, message: PlacementRedirect) -> None:
        if not self.alive:
            return
        proto = self.protos.get(message.op.client)
        if proto is None or proto.outstanding != message.op:
            return  # redirect for a superseded operation; ignore
        cached = self._placement_cache.get(message.block)
        if cached is None or message.version > cached[0]:
            # Version-guarded: a redirect that raced an even later
            # migration must not roll the cache backwards.
            self._placement_cache[message.block] = (
                message.version,
                tuple(message.servers),
            )
        chased = self._redirects.get(message.op, 0) + 1
        self._redirects[message.op] = chased
        if chased > REDIRECT_BUDGET:
            self._redirects.pop(message.op, None)
            self._execute(proto, proto.fail_current(PLACEMENT_STALE_REASON))
            return
        self._execute(proto, proto.reissue())


def add_shard_client(
    cluster: SimCluster, home_server: Optional[int] = None
) -> ShardClientHost:
    """Attach a new sharded client machine to the client network.

    :meth:`SimCluster.add_client` with a :class:`ShardClientHost`;
    ``home_server`` binds the machine to a server and retries walk the
    ring from there.
    """
    return cluster.add_client(home_server=home_server, host_cls=ShardClientHost)


def build_elastic_cluster(
    num_servers: int,
    num_blocks: int,
    rings: list,
    seed: int = 0,
    *,
    pack: bool = False,
    rebalance: bool = True,
    rebalance_interval: float = 0.05,
    rebalance_first_delay: Optional[float] = None,
    horizon: float = 30.0,
    migration_timeout: float = 0.5,
    imbalance: float = 2.0,
    min_load: float = 1.0,
    split_fraction: float = 0.5,
    **kwargs,
) -> SimCluster:
    """Build a sharded cluster with explicit placement over ``rings``.

    ``rings`` is a list of disjoint member tuples (e.g. ``[(0, 1),
    (2, 3)]``); blocks start spread contiguously across them, or all on
    ring 0 with ``pack=True`` (the "capacity added, nothing moved yet"
    starting point the elastic benchmark measures against).  With
    ``rebalance`` a :class:`Rebalancer` is attached and live migration
    runs; without it the placement is static but still explicit —
    clients route by the table and stale bindings still redirect.

    Elastic clusters are perfect-detector, replicated-value only: the
    heartbeat detector's epoch machinery manages membership *within* a
    ring and is untouched, but the cross-ring snapshot handoff assumes
    crash facts, and erasure coding pins ``coding_n`` to the whole
    cluster size, which per-ring views break.
    """
    if num_blocks < 1:
        raise ConfigurationError("num_blocks must be >= 1")
    if len(rings) < 2:
        raise ConfigurationError(
            "an elastic cluster needs at least two rings to move blocks between"
        )
    members = [sid for ring in rings for sid in ring]
    if any(sid < 0 or sid >= num_servers for sid in members):
        raise ConfigurationError(
            f"ring members must be in [0, {num_servers}); got {sorted(members)}"
        )
    if kwargs.get("fd", "perfect") != "perfect":
        raise ConfigurationError(
            "elastic placement requires the perfect failure detector"
        )
    protocol = kwargs.get("protocol")
    if protocol is not None and protocol.value_coding != "replicated":
        raise ConfigurationError(
            "elastic placement requires replicated values (coded fragments "
            "pin coding_n to the whole cluster)"
        )
    placement = PlacementTable.initial(num_blocks, rings, pack=pack)

    def factory(cluster: SimCluster, server_id: int) -> ShardedServerHost:
        return ShardedServerHost(cluster, server_id, num_blocks, placement=placement)

    cluster = SimCluster.build(
        num_servers=num_servers, seed=seed, host_factory=factory, **kwargs
    )
    cluster.placement = placement
    if rebalance:
        cluster.rebalancer = Rebalancer(
            cluster,
            placement,
            interval=rebalance_interval,
            first_delay=rebalance_first_delay,
            horizon=horizon,
            migration_timeout=migration_timeout,
            imbalance=imbalance,
            min_load=min_load,
            split_fraction=split_fraction,
        )
    return cluster


class BlockStore:
    """Synchronous facade over a sharded cluster.

    Example::

        store = BlockStore.build(num_servers=4, num_blocks=16)
        store.write_block(3, b"block three")
        assert store.read_block(3) == b"block three"

    With ``rings`` the store is elastic: blocks are placed by an
    explicit table and (with ``rebalance``) migrate between rings under
    load.  A client that cannot converge on a block's placement raises
    :class:`~repro.errors.PlacementStaleError`.
    """

    def __init__(self, cluster: SimCluster, num_blocks: int):
        self.cluster = cluster
        self.num_blocks = num_blocks
        self._client = add_shard_client(cluster)

    @classmethod
    def build(
        cls,
        num_servers: int,
        num_blocks: int,
        seed: int = 0,
        rings: Optional[list] = None,
        rebalance: bool = True,
        **kwargs,
    ) -> "BlockStore":
        if num_blocks < 1:
            raise ConfigurationError("num_blocks must be >= 1")
        if rings is not None:
            cluster = build_elastic_cluster(
                num_servers, num_blocks, rings, seed=seed, rebalance=rebalance, **kwargs
            )
            return cls(cluster, num_blocks)

        def factory(cluster: SimCluster, server_id: int) -> ShardedServerHost:
            return ShardedServerHost(cluster, server_id, num_blocks)

        cluster = SimCluster.build(
            num_servers=num_servers, seed=seed, host_factory=factory, **kwargs
        )
        return cls(cluster, num_blocks)

    def _check_block(self, index: int) -> None:
        if not 0 <= index < self.num_blocks:
            raise ConfigurationError(
                f"block {index} out of range [0, {self.num_blocks})"
            )

    def write_block(self, index: int, data: bytes) -> None:
        """Write one block; linearizable per block."""
        self._check_block(index)
        result = self._run(lambda cb: self._client.write_block(index, data, cb))
        if not result.ok:
            self._fail(f"write_block({index})", result.error)

    def read_block(self, index: int) -> bytes:
        """Read one block; linearizable per block."""
        self._check_block(index)
        result = self._run(lambda cb: self._client.read_block(index, cb))
        if not result.ok:
            self._fail(f"read_block({index})", result.error)
        return result.value

    @staticmethod
    def _fail(context: str, error: Optional[str]) -> None:
        if error == PLACEMENT_STALE_REASON:
            raise PlacementStaleError(f"{context}: {error}")
        raise StorageUnavailableError(f"{context}: {error}")

    def _run(self, start):
        done: list = []
        start(done.append)
        scheduler = self.cluster.env.scheduler
        while not done:
            if not scheduler.step():
                # Same leak class as AtomicStorage._run: reset the
                # half-open op so the handle stays usable after failure.
                self._client.abort_op()
                raise StorageUnavailableError("simulation idle before completion")
        return done[0]
