"""Block store: many independent registers over one cluster.

The paper's introduction: "Distributed storage systems combine multiple
of these read/write objects, each storing its share of data, as building
blocks for a single large storage system."  :class:`BlockStore` is that
layer — ``num_blocks`` independent atomic registers, one
:class:`~repro.core.server.ServerProtocol` instance per block per server,
multiplexed over the same simulated machines and NICs.

Every ring and client-request message is wrapped in a
:class:`ShardEnvelope` carrying the block index; each server's ring link
round-robins across the blocks' protocol instances, so blocks share the
wire fairly.  Because blocks are independent registers, per-block
operations retain the single-register atomicity guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.core.messages import payload_size
from repro.core.server import ServerProtocol
from repro.errors import ConfigurationError, StorageUnavailableError
from repro.runtime.sim_net import ClientHost, HostBase, OutLoop, SimCluster


@dataclass(frozen=True)
class ShardEnvelope:
    """Wraps a protocol message with its block index."""

    reg: int
    inner: Any

    def payload_bytes(self) -> int:
        return 4 + payload_size(self.inner)


class ShardedServerHost(HostBase):
    """One machine hosting a register protocol instance per block."""

    def __init__(self, cluster: SimCluster, server_id: int, num_blocks: int):
        super().__init__(cluster, f"s{server_id}")
        self.server_id = server_id
        self.protos: dict[int, ServerProtocol] = {
            reg: ServerProtocol(
                server_id,
                cluster.ring,
                cluster.config.protocol,
                initial_value=cluster.config.initial_value,
            )
            for reg in range(num_blocks)
        }
        self._ring_rr = 0
        from collections import deque

        self._reply_queue = deque()
        nics = cluster.topo.nics[self.name]
        if cluster.config.topology == "dual":
            self.nic_ring = nics["srv"]
            self.nic_client = nics["cli"]
            self._loops.append(OutLoop(self, self.nic_ring, [self._ring_source]))
            self._loops.append(OutLoop(self, self.nic_client, [self._reply_source]))
        else:
            nic = nics["lan"]
            self.nic_ring = nic
            self.nic_client = nic
            self._loops.append(OutLoop(self, nic, [self._ring_source, self._reply_source]))

    # -- inbound ------------------------------------------------------

    def receive_ring(self, envelope: ShardEnvelope, sender=None) -> None:
        if not self.alive:
            return
        proto = self.protos[envelope.reg]
        self._post(proto.on_ring_message(envelope.inner, sender))

    def receive_client(self, client_id: int, envelope: ShardEnvelope) -> None:
        if not self.alive:
            return
        proto = self.protos[envelope.reg]
        self._post(proto.on_client_message(client_id, envelope.inner))

    def notify_crash(self, crashed_id: int) -> None:
        if not self.alive:
            return
        for proto in self.protos.values():
            self._post(proto.on_server_crash(crashed_id))

    # -- outbound -------------------------------------------------------

    def _ring_source(self):
        """Round-robin the ring link across blocks with pending work."""
        num_blocks = len(self.protos)
        for offset in range(num_blocks):
            reg = (self._ring_rr + offset) % num_blocks
            proto = self.protos[reg]
            message = proto.next_ring_message()
            if message is not None:
                self._ring_rr = (reg + 1) % num_blocks
                return (f"s{proto.successor}", ShardEnvelope(reg, message), "ring")
        return None

    def _reply_source(self):
        if not self._reply_queue:
            return None
        reply = self._reply_queue.popleft()
        machine = self.cluster.client_name(reply.client)
        if machine is None:
            return self._reply_source()
        return (machine, reply.message, "reply")

    def _post(self, replies) -> None:
        self._reply_queue.extend(replies)
        self.kick()


class ShardClientHost(ClientHost):
    """A client machine that targets a specific block per operation."""

    def __init__(self, cluster, client_id, servers, config):
        super().__init__(cluster, client_id, servers, config)
        self._current_reg = 0

    def write_block(
        self, reg: int, value: bytes, callback: Callable, client_id: Optional[int] = None
    ):
        self._current_reg = reg
        return self.write(value, callback, client_id=client_id)

    def read_block(self, reg: int, callback: Callable, client_id: Optional[int] = None):
        self._current_reg = reg
        return self.read(callback, client_id=client_id)

    def _wrap_request(self, message):
        return ShardEnvelope(self._current_reg, message)


class BlockStore:
    """Synchronous facade over a sharded cluster.

    Example::

        store = BlockStore.build(num_servers=4, num_blocks=16)
        store.write_block(3, b"block three")
        assert store.read_block(3) == b"block three"
    """

    def __init__(self, cluster: SimCluster, num_blocks: int):
        self.cluster = cluster
        self.num_blocks = num_blocks
        self._client = self._make_client()

    @classmethod
    def build(
        cls, num_servers: int, num_blocks: int, seed: int = 0, **kwargs
    ) -> "BlockStore":
        if num_blocks < 1:
            raise ConfigurationError("num_blocks must be >= 1")

        def factory(cluster: SimCluster, server_id: int) -> ShardedServerHost:
            return ShardedServerHost(cluster, server_id, num_blocks)

        cluster = SimCluster.build(
            num_servers=num_servers, seed=seed, host_factory=factory, **kwargs
        )
        return cls(cluster, num_blocks)

    def _make_client(self) -> ShardClientHost:
        cluster = self.cluster
        client_id = cluster._next_client_id
        cluster._next_client_id += 1
        name = f"c{client_id}"
        nets = ["cli"] if cluster.config.topology == "dual" else ["lan"]
        cluster.topo.add_process(name, nets, cluster.config.bandwidth_bps)
        host = ShardClientHost(
            cluster, client_id, sorted(cluster.servers), cluster.config.protocol
        )
        cluster.clients[client_id] = host
        cluster._host_by_client_id[client_id] = host
        return host

    def _check_block(self, index: int) -> None:
        if not 0 <= index < self.num_blocks:
            raise ConfigurationError(
                f"block {index} out of range [0, {self.num_blocks})"
            )

    def write_block(self, index: int, data: bytes) -> None:
        """Write one block; linearizable per block."""
        self._check_block(index)
        result = self._run(lambda cb: self._client.write_block(index, data, cb))
        if not result.ok:
            raise StorageUnavailableError(f"write_block({index}): {result.error}")

    def read_block(self, index: int) -> bytes:
        """Read one block; linearizable per block."""
        self._check_block(index)
        result = self._run(lambda cb: self._client.read_block(index, cb))
        if not result.ok:
            raise StorageUnavailableError(f"read_block({index}): {result.error}")
        return result.value

    def _run(self, start):
        done: list = []
        start(done.append)
        scheduler = self.cluster.env.scheduler
        while not done:
            if not scheduler.step():
                # Same leak class as AtomicStorage._run: reset the
                # half-open op so the handle stays usable after failure.
                self._client.abort_op()
                raise StorageUnavailableError("simulation idle before completion")
        return done[0]
