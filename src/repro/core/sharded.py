"""Block store: many independent registers over one cluster.

The paper's introduction: "Distributed storage systems combine multiple
of these read/write objects, each storing its share of data, as building
blocks for a single large storage system."  :class:`BlockStore` is that
layer — ``num_blocks`` independent atomic registers, one
:class:`~repro.core.server.ServerProtocol` instance per block per server,
multiplexed over the same simulated machines and NICs.

Every ring and client-request message is wrapped in a
:class:`ShardEnvelope` carrying the block index; each server's ring link
round-robins across the blocks' protocol instances, so blocks share the
wire fairly.  Because blocks are independent registers, per-block
operations retain the single-register atomicity guarantees.

The sharded hosts participate fully in the cluster's fault machinery:
each block's protocol persists a durable snapshot, a crashed server
restarts from the per-block stores and rejoins every block's ring
(:meth:`ShardedServerHost.restart`), and under ``fd="heartbeat"`` every
block runs the epoch-guarded quorum-installed view discipline —
suspicion, stale-epoch fencing and reconfiguration tokens all travel in
:class:`ShardEnvelope`\\ s like any other ring traffic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.core.durable import MemorySnapshotStore
from repro.core.messages import OpId, payload_size
from repro.core.server import ServerProtocol
from repro.errors import ConfigurationError, StorageUnavailableError
from repro.runtime.sim_net import ClientHost, HostBase, OutLoop, SimCluster


@dataclass(frozen=True)
class ShardEnvelope:
    """Wraps a protocol message with its block index."""

    reg: int
    inner: Any

    def payload_bytes(self) -> int:
        return 4 + payload_size(self.inner)


class ShardedServerHost(HostBase):
    """One machine hosting a register protocol instance per block."""

    def __init__(self, cluster: SimCluster, server_id: int, num_blocks: int):
        super().__init__(cluster, f"s{server_id}")
        self.server_id = server_id
        #: Per-block durable snapshot stores — this machine's "disk".
        #: They live on the host (not the protocols) because the host
        #: object models the machine across crash/restart cycles: the
        #: protocol instances are volatile and rebuilt by :meth:`restart`,
        #: the stores survive.
        self._stores: dict[int, MemorySnapshotStore] = {
            reg: MemorySnapshotStore() for reg in range(num_blocks)
        }
        self.protos: dict[int, ServerProtocol] = {
            reg: ServerProtocol(
                server_id,
                cluster.ring,
                cluster.config.protocol,
                initial_value=cluster.config.initial_value,
                durable=self._stores[reg],
            )
            for reg in range(num_blocks)
        }
        self._ring_rr = 0
        self._reply_queue: deque = deque()
        #: Generation of the running rejoin-announcement pump, if any
        #: (see :meth:`SimCluster.begin_rejoin`).
        self._rejoin_pump_gen: Optional[int] = None
        #: Last-mirrored protocol stats, for trace-counter deltas.
        self._mirrored_stats: dict[str, int] = {}
        nics = cluster.topo.nics[self.name]
        if cluster.config.topology == "dual":
            self.nic_ring = nics["srv"]
            self.nic_client = nics["cli"]
            self._loops.append(OutLoop(self, self.nic_ring, [self._ring_source]))
            self._loops.append(OutLoop(self, self.nic_client, [self._reply_source]))
        else:
            nic = nics["lan"]
            self.nic_ring = nic
            self.nic_client = nic
            self._loops.append(OutLoop(self, nic, [self._ring_source, self._reply_source]))

    def all_protos(self) -> list[ServerProtocol]:
        """Every block's protocol instance (cluster machinery iterates
        these for rejoin pumps, reconcile timers and stat mirroring)."""
        return list(self.protos.values())

    # -- inbound ------------------------------------------------------

    def receive_ring(self, envelope: ShardEnvelope, sender=None) -> None:
        if not self.alive:
            return
        proto = self.protos[envelope.reg]
        self._post(proto.on_ring_message(envelope.inner, sender))
        self.cluster.after_protocol_step(self)

    def receive_client(self, client_id: int, envelope: ShardEnvelope) -> None:
        if not self.alive:
            return
        proto = self.protos[envelope.reg]
        self._post(proto.on_client_message(client_id, envelope.inner))
        # Leased reads complete with zero ring traffic; without this the
        # lease stat mirror would wait for a ring receipt that may never
        # come (see ServerHost.receive_client).
        self.cluster.after_protocol_step(self)

    def notify_crash(self, crashed_id: int) -> None:
        if not self.alive:
            return
        for proto in self.protos.values():
            self._post(proto.on_server_crash(crashed_id))

    def notify_suspect(self, peer: int) -> None:
        """Imperfect-detector suspicion (may be wrong): every block's
        register pauses behind the same server-level suspicion."""
        if not self.alive:
            return
        for proto in self.protos.values():
            self._post(proto.on_suspect(peer))
        self.cluster.after_protocol_step(self)

    def notify_unsuspect(self, peer: int) -> None:
        """A suspected peer's heartbeat arrived: suspicion withdrawn."""
        if not self.alive:
            return
        for proto in self.protos.values():
            self._post(proto.on_unsuspect(peer))
        self.cluster.after_protocol_step(self)

    # -- restart (crash recovery) --------------------------------------

    def restart(self) -> None:
        """Restart this server from its per-block durable snapshots.

        Mirrors :meth:`ServerHost.restart`: volatile state — the protocol
        instances, the reply queue, NIC queues (purged at crash) — is
        gone; each block's protocol is rebuilt from its snapshot store,
        the reliable channels re-open (a restart is a new connection on
        every link) and one rejoin pump drives every still-rejoining
        block until reconfiguration commits fold the server back in.
        """
        if self._alive:
            return
        self.cluster.reopen_server(self.server_id)
        super().restart()
        self._reply_queue.clear()
        self._ring_rr = 0
        self._rejoin_pump_gen = None
        self._mirrored_stats = {}
        alone = self.cluster.restart_resumes_alone(self.server_id)
        self.protos = {
            reg: ServerProtocol.restore(
                self.server_id,
                range(self.cluster.config.num_servers),
                store.load(),
                self.cluster.config.protocol,
                durable=store,
                initial_value=self.cluster.config.initial_value,
                alone=alone,
                generation=self.restarts,
            )
            for reg, store in self._stores.items()
        }
        if self.cluster.hb is not None:
            self.cluster.hb.reset_server(self.server_id)
        self.cluster.begin_rejoin(self)
        self.kick()

    # -- outbound -------------------------------------------------------

    @property
    def ring_batch_limit(self) -> int:
        """Batch only on a dedicated ring NIC (see the unsharded host):
        on a shared port a k-message frame would out-share client
        replies k-fold in the frame-granular round-robin."""
        if self.nic_ring is self.nic_client:
            return 1
        return self.cluster.batch_limit

    def _ring_source(self):
        """Round-robin the ring link across blocks with pending work.

        Directed out-of-ring-order traffic (rejoin announcements,
        stale-epoch notices, view-proposal tokens) takes priority within
        a block's slot, exactly as on the unsharded host — without it a
        restarted sharded server could never announce itself.
        """
        num_blocks = len(self.protos)
        for offset in range(num_blocks):
            reg = (self._ring_rr + offset) % num_blocks
            proto = self.protos[reg]
            directed = proto.next_directed_message()
            if directed is not None:
                destination, message = directed
                self._ring_rr = (reg + 1) % num_blocks
                return (f"s{destination}", ShardEnvelope(reg, message), "ring")
            limit = self.ring_batch_limit
            if limit > 1:
                # Batch within one block's slot only: blocks hold
                # independent ring views, so their successors may
                # diverge and a cross-block frame could mix
                # destinations.  Fairness across blocks is unchanged —
                # the slot still advances by one block per frame.
                batch = proto.next_ring_batch(limit)
                if batch:
                    self._ring_rr = (reg + 1) % num_blocks
                    wrapped = [ShardEnvelope(reg, m) for m in batch]
                    payload = wrapped[0] if len(wrapped) == 1 else wrapped
                    return (f"s{proto.successor}", payload, "ring")
                continue
            message = proto.next_ring_message()
            if message is not None:
                self._ring_rr = (reg + 1) % num_blocks
                return (f"s{proto.successor}", ShardEnvelope(reg, message), "ring")
        return None

    def _reply_source(self):
        # Iterative on purpose: a burst of replies addressed to departed
        # clients must be skipped in a loop — one recursive call per
        # stale entry blew the stack on large backlogs.
        while self._reply_queue:
            reply = self._reply_queue.popleft()
            machine = self.cluster.client_name(reply.client)
            if machine is not None:
                return (machine, reply.message, "reply")
        return None

    def _post(self, replies) -> None:
        self._reply_queue.extend(replies)
        self.kick()


class ShardClientHost(ClientHost):
    """A client machine whose logical clients target a block per op.

    The block index is pinned **per operation** when it starts
    (:meth:`_bind_block`), so a timeout retransmit re-wraps with the
    originating operation's block even if this machine has since issued
    operations against other blocks.  (The original implementation kept
    one machine-wide "current block" read again at retransmit time,
    which routed a delayed retry into whatever block a concurrent
    logical client had switched to — corrupting a neighbouring
    register; see the regression test in
    ``tests/integration/test_sharded.py``.)
    """

    def __init__(self, cluster, client_id, servers, config):
        super().__init__(cluster, client_id, servers, config)
        #: Block for the *next* operation, per logical client — consumed
        #: by :meth:`_bind_block` the moment the operation starts.
        self._pending_block: dict[int, int] = {}
        #: In-flight operation -> its pinned block.
        self._op_blocks: dict[OpId, int] = {}
        #: Last bound op per logical client (each logical client has at
        #: most one in flight, so binding a new op retires the old
        #: entry — the map stays bounded by the client count).
        self._last_op: dict[int, OpId] = {}

    def write_block(
        self, reg: int, value: bytes, callback: Callable, client_id: Optional[int] = None
    ):
        self._pending_block[self._logical(client_id)] = reg
        return self.write(value, callback, client_id=client_id)

    def read_block(self, reg: int, callback: Callable, client_id: Optional[int] = None):
        self._pending_block[self._logical(client_id)] = reg
        return self.read(callback, client_id=client_id)

    def abort_op(self, client_id: Optional[int] = None):
        op = super().abort_op(client_id)
        if op is not None:
            self._op_blocks.pop(op, None)
            if self._last_op.get(op.client) == op:
                del self._last_op[op.client]
        return op

    def _logical(self, client_id: Optional[int]) -> int:
        return self.client_id if client_id is None else client_id

    def _bind_block(self, op: OpId) -> int:
        reg = self._pending_block.pop(op.client, 0)
        previous = self._last_op.get(op.client)
        if previous is not None:
            self._op_blocks.pop(previous, None)
        self._last_op[op.client] = op
        self._op_blocks[op] = reg
        return reg

    def _wrap_request(self, message):
        return ShardEnvelope(self._op_blocks[message.op], message)


def add_shard_client(
    cluster: SimCluster, home_server: Optional[int] = None
) -> ShardClientHost:
    """Attach a new sharded client machine to the client network.

    :meth:`SimCluster.add_client` with a :class:`ShardClientHost`;
    ``home_server`` binds the machine to a server and retries walk the
    ring from there.
    """
    return cluster.add_client(home_server=home_server, host_cls=ShardClientHost)


class BlockStore:
    """Synchronous facade over a sharded cluster.

    Example::

        store = BlockStore.build(num_servers=4, num_blocks=16)
        store.write_block(3, b"block three")
        assert store.read_block(3) == b"block three"
    """

    def __init__(self, cluster: SimCluster, num_blocks: int):
        self.cluster = cluster
        self.num_blocks = num_blocks
        self._client = add_shard_client(cluster)

    @classmethod
    def build(
        cls, num_servers: int, num_blocks: int, seed: int = 0, **kwargs
    ) -> "BlockStore":
        if num_blocks < 1:
            raise ConfigurationError("num_blocks must be >= 1")

        def factory(cluster: SimCluster, server_id: int) -> ShardedServerHost:
            return ShardedServerHost(cluster, server_id, num_blocks)

        cluster = SimCluster.build(
            num_servers=num_servers, seed=seed, host_factory=factory, **kwargs
        )
        return cls(cluster, num_blocks)

    def _check_block(self, index: int) -> None:
        if not 0 <= index < self.num_blocks:
            raise ConfigurationError(
                f"block {index} out of range [0, {self.num_blocks})"
            )

    def write_block(self, index: int, data: bytes) -> None:
        """Write one block; linearizable per block."""
        self._check_block(index)
        result = self._run(lambda cb: self._client.write_block(index, data, cb))
        if not result.ok:
            raise StorageUnavailableError(f"write_block({index}): {result.error}")

    def read_block(self, index: int) -> bytes:
        """Read one block; linearizable per block."""
        self._check_block(index)
        result = self._run(lambda cb: self._client.read_block(index, cb))
        if not result.ok:
            raise StorageUnavailableError(f"read_block({index}): {result.error}")
        return result.value

    def _run(self, start):
        done: list = []
        start(done.append)
        scheduler = self.cluster.env.scheduler
        while not done:
            if not scheduler.step():
                # Same leak class as AtomicStorage._run: reset the
                # half-open op so the handle stays usable after failure.
                self._client.abort_op()
                raise StorageUnavailableError("simulation idle before completion")
        return done[0]
