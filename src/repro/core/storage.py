"""Blocking public API over a simulated cluster.

:class:`AtomicStorage` is the entry point a downstream user sees first: a
synchronous multi-writer multi-reader atomic register.  Each call drives
the cluster's discrete-event loop until the operation completes, so code
reads exactly like it would against a real storage service::

    from repro import AtomicStorage, SimCluster

    cluster = SimCluster.build(num_servers=5)
    storage = AtomicStorage.over(cluster)
    storage.write(b"v1")
    assert storage.read() == b"v1"

Multiple handles over the same cluster act as independent clients, which
is how the examples demonstrate concurrent readers/writers and failover.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import StorageUnavailableError


class AtomicStorage:
    """A synchronous client handle onto the replicated atomic register."""

    def __init__(self, cluster, client) -> None:
        self.cluster = cluster
        self.client = client

    @classmethod
    def over(cls, cluster, home_server: Optional[int] = None) -> "AtomicStorage":
        """Create a new client on ``cluster`` and wrap it.

        ``home_server`` binds the handle to a server, as the paper binds
        client machines to servers; by default the first server is used.
        """
        client = cluster.add_client(home_server=home_server)
        return cls(cluster, client)

    def write(self, value: bytes) -> None:
        """Write ``value``; returns when the write is acknowledged.

        Raises :class:`~repro.errors.StorageUnavailableError` when the
        client exhausts its retries (e.g. every server crashed).
        """
        if not isinstance(value, bytes):
            raise TypeError(f"values are bytes, got {type(value).__name__}")
        result = self._run(lambda cb: self.client.write(value, cb))
        if not result.ok:
            raise StorageUnavailableError(f"write failed: {result.error}")

    def read(self) -> bytes:
        """Read the register's current value (linearizable)."""
        result = self._run(lambda cb: self.client.read(cb))
        if not result.ok:
            raise StorageUnavailableError(f"read failed: {result.error}")
        return result.value

    def _run(self, start):
        done: list = []
        start(done.append)
        scheduler = self.cluster.env.scheduler
        while not done:
            if not scheduler.step():
                # Abandon the half-open operation before raising: the
                # client protocol would otherwise keep it outstanding
                # forever, so the next read/write on this handle would
                # start from stale in-flight state instead of fresh.
                self.client.abort_op()
                raise StorageUnavailableError(
                    "simulation went idle before the operation completed"
                )
        return done[0]
