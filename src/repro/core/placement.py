"""Explicit, versioned block placement for the elastic sharded store.

PR 5's ``BlockStore`` mapped every block onto *the* ring implicitly: one
cluster-wide ring, every server hosting every block.  That identity map
cannot express the thing a skewed workload needs — moving a hot block
onto spare capacity — so this module replaces it with data:

* :class:`PlacementTable` — ring id -> member servers, block -> ring,
  plus a **version per block** and a global version.  Every placement
  change bumps both, which is what lets a server detect (and a client
  chase) a stale binding instead of silently serving the wrong ring —
  the PR 5 mis-routing class, now structural.
* :func:`plan_rebalance` — the pure policy: given per-block load
  samples, decide which block to migrate (or whether a hot block earns a
  *dedicated* placement, the "split" decision).  Deterministic: sorted
  iteration, no RNG, no clocks — the rebalancer in
  :mod:`repro.core.sharded` just executes what this returns.
* :class:`PlacementRedirect` / :class:`BlockTransfer` — the two wire
  messages migration adds.  They live here rather than in
  :mod:`repro.core.messages` because they are runtime-routed control
  traffic, not ring-protocol payloads: the codec never sees them, but
  both implement ``payload_bytes()`` so the simulated wire charges them
  like everything else.

A block never has two simultaneously-serving placements.  A *split*
means the hot block ends up alone on its ring (its cold co-residents
are migrated away), not that two rings answer for it — that invariant,
plus per-block histories and the epoch-stamped snapshot handoff, is the
linearizability argument (docs/sharding.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.durable import ServerSnapshot
from repro.core.messages import OpId
from repro.errors import ConfigurationError

#: Failure reason reported by a client that exhausted its redirect
#: budget; the ``BlockStore`` maps it to :class:`PlacementStaleError`.
PLACEMENT_STALE_REASON = "placement stale"


@dataclass(frozen=True)
class PlacementRedirect:
    """Server -> client: "this block is not placed here any more".

    Carries the authoritative placement entry so the client can retarget
    its retry immediately instead of walking dead bindings until the
    timeout fires.  ``version`` is the *block's* placement version — the
    client only overwrites a cached entry with a newer one, so a redirect
    that raced a later migration cannot roll the cache backwards.
    """

    op: OpId
    block: int
    version: int
    servers: tuple[int, ...]

    def payload_bytes(self) -> int:
        # op (client + seq) + block + version + member list.
        return 8 + 4 + 4 + 4 * len(self.servers)


@dataclass(frozen=True)
class BlockTransfer:
    """Migration state handoff: one destination member's copy.

    Sent by the rebalancer from the drained source member to every
    member of the destination ring, outside the ring protocol (the
    destination is not part of the block's ring yet).  ``nonce``
    identifies the migration attempt: a transfer that survives in the
    fabric past an abort — or is duplicated by the nemesis — fails the
    nonce check at delivery and is dropped, never installed.
    """

    block: int
    nonce: int
    source: int
    snapshot: Optional[ServerSnapshot]
    #: Placement version the block will carry once cutover commits.
    version: int

    def payload_bytes(self) -> int:
        if self.snapshot is None:
            return 24
        value = len(self.snapshot.value)
        entries = (
            len(self.snapshot.watermark)
            + len(self.snapshot.completed_ops)
            + len(self.snapshot.completed_tags)
        )
        return 24 + value + 12 * entries


@dataclass(frozen=True)
class MigrationPlan:
    """One rebalancing decision: move ``block`` from ``source`` ring to
    ``dest`` ring.  ``split`` marks the decision as a hot-block split:
    the move exists to leave the hottest block alone on its ring."""

    block: int
    source: int
    dest: int
    split: bool = False


@dataclass
class PlacementTable:
    """Versioned block -> ring map over fixed, disjoint server rings.

    Rings are static server groups (reconfiguration *within* a ring —
    crashes, rejoins — stays the epoch machinery's job); elasticity is
    blocks moving between rings.  The table is the control plane's
    single source of truth: server hosts consult it to answer "do I
    still host this block?", clients cache per-block entries and chase
    :class:`PlacementRedirect` replies when their cache goes stale.
    """

    rings: dict[int, tuple[int, ...]]
    blocks: dict[int, int]
    versions: dict[int, int] = field(default_factory=dict)
    version: int = 0

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for ring_id in sorted(self.rings):
            members = self.rings[ring_id]
            if not members:
                raise ConfigurationError(f"ring {ring_id} has no members")
            overlap = seen & set(members)
            if overlap:
                raise ConfigurationError(
                    f"rings must be disjoint; servers {sorted(overlap)} appear twice"
                )
            seen |= set(members)
        for block in sorted(self.blocks):
            ring_id = self.blocks[block]
            if ring_id not in self.rings:
                raise ConfigurationError(
                    f"block {block} placed on unknown ring {ring_id}"
                )
            self.versions.setdefault(block, 0)

    # -- construction ---------------------------------------------------

    @classmethod
    def initial(
        cls, num_blocks: int, rings: list[tuple[int, ...]], *, pack: bool = False
    ) -> "PlacementTable":
        """Contiguous initial placement: block ``b`` on ring
        ``b * len(rings) // num_blocks`` — or, with ``pack=True``, every
        block on ring 0 (the "capacity was added but nothing moved yet"
        starting point the elastic benchmarks measure against)."""
        if num_blocks < 1:
            raise ConfigurationError(f"num_blocks must be >= 1, got {num_blocks}")
        if not rings:
            raise ConfigurationError("at least one ring is required")
        ring_map = {ring_id: tuple(members) for ring_id, members in enumerate(rings)}
        if pack:
            block_map = {block: 0 for block in range(num_blocks)}
        else:
            block_map = {
                block: min(block * len(rings) // num_blocks, len(rings) - 1)
                for block in range(num_blocks)
            }
        return cls(rings=ring_map, blocks=block_map)

    # -- queries --------------------------------------------------------

    def ring_of(self, block: int) -> int:
        return self.blocks[block]

    def servers_of(self, block: int) -> tuple[int, ...]:
        return self.rings[self.blocks[block]]

    def entry(self, block: int) -> tuple[int, tuple[int, ...]]:
        """The client-cacheable ``(version, members)`` pair for a block."""
        return self.versions[block], self.servers_of(block)

    def blocks_on(self, ring_id: int) -> tuple[int, ...]:
        return tuple(
            block for block in sorted(self.blocks) if self.blocks[block] == ring_id
        )

    def blocks_of(self, server_id: int) -> tuple[int, ...]:
        """Blocks currently placed on rings containing ``server_id``."""
        owned = {
            ring_id for ring_id, members in self.rings.items() if server_id in members
        }
        return tuple(
            block for block in sorted(self.blocks) if self.blocks[block] in owned
        )

    # -- mutation -------------------------------------------------------

    def move(self, block: int, ring_id: int) -> None:
        """Commit a migration: re-place ``block`` and bump versions.

        Called exactly once per successful cutover — after the
        destination ring holds the transferred state — never while the
        transfer is still in flight (an aborted migration leaves the
        table untouched, which is why aborting is always safe)."""
        if ring_id not in self.rings:
            raise ConfigurationError(f"unknown ring {ring_id}")
        if self.blocks[block] == ring_id:
            raise ConfigurationError(f"block {block} is already on ring {ring_id}")
        self.blocks[block] = ring_id
        self.versions[block] += 1
        self.version += 1


def plan_rebalance(
    loads: dict[int, float],
    table: PlacementTable,
    *,
    imbalance: float = 2.0,
    min_load: float = 1.0,
    split_fraction: float = 0.5,
) -> Optional[MigrationPlan]:
    """Pick at most one migration from interval load samples.

    ``loads`` maps block -> load observed over the last interval (the
    rebalancer feeds ops; any monotone measure works).  The policy:

    1. Aggregate per ring.  If the hottest ring carries less than
       ``imbalance`` times the coldest (or under ``min_load`` total),
       do nothing — noise must not cause migration churn.
    2. Otherwise shed load from the hottest ring that *can* shed (a
       lone-block ring is already as placed as it can be; the next ring
       down is considered) onto the coldest ring.  If the hottest
       *block* on the shedding ring accounts for more than
       ``split_fraction`` of its ring's load **and** has co-resident
       blocks, migrate the hottest *co-resident* away instead — the
       split decision: the dominant block earns a dedicated ring one
       eviction at a time, because moving the dominant block itself
       would just relocate the hotspot.
    3. Plain imbalance moves the hottest block whose move strictly
       improves the pair — ``max(hot', cold')`` drops below the current
       hot load — so rebalancing converges instead of ping-ponging.

    Pure and deterministic (sorted iteration, ties broken by lowest id):
    unit-testable without a cluster, replayable from a trace.
    """
    if len(table.rings) < 2:
        return None
    ring_loads = {ring_id: 0.0 for ring_id in table.rings}
    for block in sorted(loads):
        if block in table.blocks:
            ring_loads[table.ring_of(block)] += loads[block]
    cold_ring = min(sorted(ring_loads), key=lambda rid: ring_loads[rid])
    cold_load = ring_loads[cold_ring]
    hottest_first = sorted(ring_loads, key=lambda rid: (-ring_loads[rid], rid))
    for hot_ring in hottest_first:
        if hot_ring == cold_ring:
            break
        hot_load = ring_loads[hot_ring]
        if hot_load < min_load or hot_load < imbalance * max(cold_load, min_load / 2):
            break  # rings below this one are colder still
        residents = table.blocks_on(hot_ring)
        if len(residents) < 2:
            continue  # a lone block is already as placed as it can be
        by_load = sorted(residents, key=lambda block: (-loads.get(block, 0.0), block))
        hottest = by_load[0]
        if loads.get(hottest, 0.0) > split_fraction * hot_load:
            # Split: evict the hottest co-resident, leaving the dominant
            # block closer to a dedicated placement.
            return MigrationPlan(
                block=by_load[1], source=hot_ring, dest=cold_ring, split=True
            )
        for block in by_load:
            moved = loads.get(block, 0.0)
            if max(cold_load + moved, hot_load - moved) < hot_load - 1e-9:
                return MigrationPlan(block=block, source=hot_ring, dest=cold_ring)
    return None
