"""Protocol messages and their wire-size accounting.

Two message families exist:

* **client messages** — ``ClientWrite``/``ClientRead`` requests and their
  ``WriteAck``/``ReadAck`` replies, exchanged between clients and the one
  server they contact;
* **ring messages** — ``PreWrite`` (the value-carrying first phase),
  ``Commit`` (the second phase; carries only tags because every server
  already stored the value during the pre-write, which is the
  "piggybacked write messages" optimisation of Section 4.2),
  ``StateSync`` (predecessor-to-new-successor state push after a crash,
  pseudocode line 88) and the ``ReconfigToken``/``ReconfigCommit`` pair
  that merges server state after a membership change.

Every ring message carries a ``commits`` tuple: commit tags piggybacked on
whatever message happens to be leaving next (Section 4.2's key throughput
optimisation — commits almost never consume their own wire slot).

``payload_size`` returns the number of application bytes each message
occupies; the simulator charges NICs with these sizes, and the asyncio
codec produces encodings of exactly these sizes (checked by tests), so the
simulator and the real transport agree on cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.tags import Tag

#: Bytes charged per tag on the wire (8-byte ts + 4-byte server id).
TAG_WIRE_BYTES = 12

#: Fixed header charged per client-op identification (client id + seq).
OP_ID_WIRE_BYTES = 12

#: Small fixed cost for message type/bookkeeping fields.
BASE_WIRE_BYTES = 8


@dataclass(frozen=True)
class OpId:
    """Globally unique client operation identifier (client id, sequence)."""

    client: int
    seq: int

    def __repr__(self) -> str:
        return f"Op({self.client}.{self.seq})"


# ----------------------------------------------------------------------
# Client <-> server messages
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ClientWrite:
    """``<write, v>`` from a client to any server (pseudocode line 2)."""

    op: OpId
    value: bytes


@dataclass(frozen=True)
class WriteAck:
    """``<write_ack>`` completing a write (pseudocode line 50).

    ``tag`` is the tag the write committed under; it is ``None`` only on
    the deduplicated-retry path where the original tag is no longer
    known.  Carrying it lets the analysis layer run the fast tag-based
    atomicity check on benchmark-sized histories.
    """

    op: OpId
    tag: Optional[Tag] = None


@dataclass(frozen=True)
class ClientRead:
    """``<read>`` from a client to any server (pseudocode line 7).

    ``session`` is the largest tag the client has observed complete (its
    own writes' commit tags and prior reads' tags).  A server serving
    the read from a lease-held local copy must cover this tag — the
    client's session order is visible even if the server's local state
    lags behind other servers it talked to earlier.  ``None`` means the
    client has no session history (or predates the lease path); servers
    treat it as "any state covers it".
    """

    op: OpId
    session: Optional[Tag] = None


@dataclass(frozen=True)
class ReadAck:
    """``<read_ack, v>`` completing a read (pseudocode line 78/82)."""

    op: OpId
    value: bytes
    tag: Tag


# ----------------------------------------------------------------------
# Ring messages (server -> successor only)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PreWrite:
    """First phase of a write: disseminates (tag, value) around the ring.

    ``origin`` is the initiating server's id (== ``tag.server_id`` for
    normal writes).  ``op`` identifies the client operation so that every
    server can deduplicate retried client writes.  ``epoch`` stamps the
    sender's installed ring view; under the imperfect failure detector a
    receiver rejects traffic from any other epoch, which is what stops a
    wrongly-suspected-but-alive server's stale writes from re-entering
    the ring after a partition heals.
    """

    tag: Tag
    value: bytes
    op: OpId
    commits: tuple[Tag, ...] = ()
    epoch: int = 0

    @property
    def origin(self) -> int:
        return self.tag.server_id


@dataclass(frozen=True)
class Commit:
    """Second phase: commit notifications, by tag only.

    A standalone ``Commit`` is sent when commit tags are queued but no
    other ring message is about to leave; otherwise the tags ride in the
    ``commits`` field of another message.  ``epoch`` stamps the sender's
    installed view (see :class:`PreWrite`).
    """

    commits: tuple[Tag, ...]
    epoch: int = 0


@dataclass(frozen=True)
class StateSync:
    """Predecessor pushes its full register state to a new successor
    after splicing the ring around a crashed server (pseudocode line 88).
    ``epoch`` stamps the sender's installed view (see :class:`PreWrite`).
    """

    tag: Tag
    value: bytes
    commits: tuple[Tag, ...] = ()
    epoch: int = 0


@dataclass(frozen=True)
class PendingEntry:
    """One pending (uncommitted) write carried by reconfiguration messages."""

    tag: Tag
    value: bytes
    op: OpId


@dataclass(frozen=True)
class ReconfigToken:
    """State-merge token circulated once around the new ring after a
    membership change (a crash, or a crashed server rejoining).

    The coordinator (the crashed server's alive predecessor, or the
    rejoining server's sponsor) initiates the token; every server merges
    its own state into it and forwards it.  ``nonce`` uniquely
    identifies one reconfiguration attempt so that a token orphaned by
    its coordinator's own crash dies after one circle instead of
    circulating forever.  ``revived`` lists servers this
    reconfiguration folds *back into* the ring (crash recovery); every
    receiver splices them in before merging, so the token and its
    commit traverse the grown ring — including the rejoiner, which is
    how the rejoiner catches up.
    """

    nonce: int
    epoch: int
    coordinator: int
    dead: tuple[int, ...]
    tag: Tag
    value: bytes
    pending: tuple[PendingEntry, ...]
    completed_ops: tuple[tuple[int, int], ...]  # (client, max completed seq)
    revived: tuple[int, ...] = ()
    #: The commit tag behind each client's max completed seq, where the
    #: merging servers know it: (client, tag) pairs.  Carried so a server
    #: that learns of a completion only through the merge can still ack a
    #: retried duplicate *with* the real committed tag — an untagged ack
    #: would leave a hole in the tag coverage the benchmark-scale checker
    #: gates on.
    completed_tags: tuple[tuple[int, Tag], ...] = ()


@dataclass(frozen=True)
class ReconfigCommit:
    """Second ring traversal: install the merged state and resume."""

    nonce: int
    epoch: int
    coordinator: int
    dead: tuple[int, ...]
    tag: Tag
    value: bytes
    pending: tuple[PendingEntry, ...]
    completed_ops: tuple[tuple[int, int], ...]
    revived: tuple[int, ...] = ()
    completed_tags: tuple[tuple[int, Tag], ...] = ()


@dataclass(frozen=True)
class RejoinRequest:
    """A restarted server announcing itself to a live sponsor.

    Sent outside the ring order (the rejoiner is not part of anyone's
    ring yet).  The sponsor folds the rejoiner back in by coordinating a
    reconfiguration whose token carries ``revived=(server_id,)``.
    ``generation`` is the rejoiner's restart count — informational (it
    lets traces distinguish announcements across repeated restarts); the
    request itself is idempotent and retried until the rejoiner is
    resumed by a reconfiguration commit.  ``epoch`` stamps the last view
    the rejoiner had installed: the sponsor's fold-in token necessarily
    carries a higher epoch, and a request claiming an epoch *above* the
    sponsor's own is dropped (a confused rejoiner cannot drag the ring
    backwards).
    """

    server_id: int
    generation: int = 0
    epoch: int = 0


@dataclass(frozen=True)
class ReadFence:
    """One full ring circulation proving the origin's epoch is live.

    The fallback read path when a server cannot serve locally (no valid
    lease, or the lease epoch lags the installed view): the origin
    enqueues a fence and serves the read only once the fence returns.
    Every hop applies the same epoch guard as data traffic, so a fence
    completing a circle proves the origin's installed view was the
    ring's view for the whole circulation — a server partitioned out of
    a newer epoch can never complete one, which is what makes the
    fallback safe where an unconditional local read would not be.
    ``nonce`` identifies the fence so the origin can match the returning
    token to its waiting reads; fences carry no data (state moved during
    the writes' own circulations).
    """

    nonce: int
    origin: int
    epoch: int = 0


@dataclass(frozen=True)
class FragmentStore:
    """Directed delivery of one server's value fragment (coded backend).

    Under ``value_coding="coded"`` the initiating server stripes the
    value with :mod:`repro.core.coding` and sends each ring member the
    single fragment that member will store, while the ring circulates a
    *value-less* :class:`PreWrite` as the ordering/commit circle.  A
    receiver holds the pre-write until its fragment arrives (and only
    then forwards it), so a completed circle keeps its original meaning:
    every alive server durably stores its share of the value.  ``index``
    is the receiver's fragment index — its position in the (immutable)
    member tuple.  ``epoch`` stamps the sender's installed view exactly
    like all ring data traffic.
    """

    tag: Tag
    op: OpId
    index: int
    fragment: bytes
    epoch: int = 0


@dataclass(frozen=True)
class FragmentFetch:
    """Request for a peer's fragment of the value committed at ``tag``.

    A coded read that cannot be served from the reconstruction cache
    pulls ``k - 1`` peer fragments (its own fragment is the k-th),
    decodes, and replies with the whole value.  ``nonce`` matches the
    replies to the requesting read batch.
    """

    nonce: int
    tag: Tag
    requester: int
    epoch: int = 0


@dataclass(frozen=True)
class FragmentReply:
    """A peer's answer to :class:`FragmentFetch`.

    ``index`` is the replier's fragment index, or ``-1`` when the peer
    holds no fragment for the requested tag (``fragment`` is then
    empty); the requester keeps waiting for other peers.  Fragments are
    content-addressed by ``(tag, index)`` — a reply can be stale in
    epoch but never wrong in bytes.
    """

    nonce: int
    tag: Tag
    index: int
    fragment: bytes
    epoch: int = 0


@dataclass(frozen=True)
class StaleEpochNotice:
    """Tells a stale sender that the ring has moved on without it.

    Sent outside the ring order by a server that rejected epoch-stale
    traffic (or an epoch-stale reconfiguration attempt).  ``epoch`` is
    the *sender's* installed epoch; a receiver whose own epoch is lower
    knows it was excluded from a view it never saw — it must stop
    serving and rejoin through a sponsor, exactly like a restarted
    server.  The notice is advisory: losing it only delays the rejoin
    (the excluded server's own stalled traffic re-triggers it).
    """

    epoch: int
    sender: int


@dataclass(frozen=True)
class Heartbeat:
    """Liveness beacon for the imperfect failure detector.

    Exchanged between every pair of servers outside the ring order and
    outside the reliable session layer — a retransmitted heartbeat would
    defeat its purpose as a freshness signal.
    """

    server_id: int


@dataclass(frozen=True)
class LeaseGrant:
    """Grantor ``grantor`` extends ``holder``'s read lease under ``epoch``.

    Rides the heartbeat channel (outside the reliable session layer, for
    the same freshness reason), and is only *sent* while the grantor
    currently trusts the holder and shares its installed epoch.  The
    holder's lease is valid while it holds a fresh grant from every
    other alive member of its installed view — see
    :class:`repro.fd.heartbeat.ReadLease`.

    Freshness is measured from ``sent_at`` — the *grantor's* clock at
    send time — not from receipt: a grant held in a partition (TCP
    buffering) and flushed at heal must arrive already-expired, or a
    holder cut off from the ring would revive a lease its grantor wrote
    off an epoch ago.  Cross-clock comparison is sound because the
    deployment declares ``clock_drift_bound`` and the epoch wait-out
    charges twice it.
    """

    grantor: int
    epoch: int = 0
    sent_at: float = 0.0


@dataclass(frozen=True)
class LeaseRevoke:
    """Grantor ``grantor`` withdraws its lease grant early.

    Best-effort latency optimisation: a grantor that newly suspects a
    holder (or installs a view excluding it) revokes so the holder stops
    serving locally before its grant would have expired.  Safety never
    rests on delivery — an undelivered revoke just means the holder
    serves until ``lease_duration`` runs out, which the epoch wait-out
    already accounts for.
    """

    grantor: int
    epoch: int = 0


RingMessage = Union[
    PreWrite,
    Commit,
    StateSync,
    ReconfigToken,
    ReconfigCommit,
    RejoinRequest,
    StaleEpochNotice,
    ReadFence,
    FragmentStore,
    FragmentFetch,
    FragmentReply,
]
ClientMessage = Union[ClientWrite, ClientRead]
ServerReply = Union[WriteAck, ReadAck]
Message = Union[RingMessage, ClientMessage, ServerReply]


def payload_size(message: Message) -> int:
    """Application-level payload bytes of ``message``.

    The simulator charges NICs with this size (plus the wire model's
    framing); the binary codec produces encodings of this exact size, so
    simulated and real transports agree.
    """
    if isinstance(message, ClientWrite):
        return BASE_WIRE_BYTES + OP_ID_WIRE_BYTES + len(message.value)
    if isinstance(message, WriteAck):
        return BASE_WIRE_BYTES + OP_ID_WIRE_BYTES + TAG_WIRE_BYTES
    if isinstance(message, ClientRead):
        return BASE_WIRE_BYTES + OP_ID_WIRE_BYTES + TAG_WIRE_BYTES  # session tag
    if isinstance(message, ReadAck):
        return BASE_WIRE_BYTES + OP_ID_WIRE_BYTES + TAG_WIRE_BYTES + len(message.value)
    if isinstance(message, PreWrite):
        return (
            BASE_WIRE_BYTES
            + TAG_WIRE_BYTES
            + OP_ID_WIRE_BYTES
            + 8  # epoch stamp
            + 4  # piggybacked-commit count
            + len(message.value)
            + TAG_WIRE_BYTES * len(message.commits)
        )
    if isinstance(message, Commit):
        return BASE_WIRE_BYTES + 8 + TAG_WIRE_BYTES * len(message.commits)
    if isinstance(message, StateSync):
        return (
            BASE_WIRE_BYTES
            + TAG_WIRE_BYTES
            + 8  # epoch stamp
            + 4  # piggybacked-commit count
            + len(message.value)
            + TAG_WIRE_BYTES * len(message.commits)
        )
    if isinstance(message, (ReconfigToken, ReconfigCommit)):
        pending_bytes = sum(
            TAG_WIRE_BYTES + OP_ID_WIRE_BYTES + 4 + len(entry.value)
            for entry in message.pending
        )
        return (
            BASE_WIRE_BYTES
            + 8  # nonce
            + 8  # epoch
            + 4  # coordinator
            + 4  # dead count
            + 4 * len(message.dead)
            + 4  # revived count
            + 4 * len(message.revived)
            + TAG_WIRE_BYTES
            + 4  # value length
            + len(message.value)
            + 4  # pending count
            + pending_bytes
            + 4  # completed-ops count
            + OP_ID_WIRE_BYTES * len(message.completed_ops)
            + 4  # completed-tags count
            + (8 + TAG_WIRE_BYTES) * len(message.completed_tags)
        )
    if isinstance(message, RejoinRequest):
        return BASE_WIRE_BYTES + 4 + 4 + 8  # server id + generation + epoch
    if isinstance(message, StaleEpochNotice):
        return BASE_WIRE_BYTES + 8 + 4  # epoch + sender id
    if isinstance(message, ReadFence):
        return BASE_WIRE_BYTES + 8 + 4 + 8  # nonce + origin + epoch
    if isinstance(message, FragmentStore):
        return (
            BASE_WIRE_BYTES
            + TAG_WIRE_BYTES
            + OP_ID_WIRE_BYTES
            + 4  # fragment index
            + 8  # epoch stamp
            + len(message.fragment)
        )
    if isinstance(message, FragmentFetch):
        return BASE_WIRE_BYTES + 8 + TAG_WIRE_BYTES + 4 + 8  # nonce+tag+requester+epoch
    if isinstance(message, FragmentReply):
        return (
            BASE_WIRE_BYTES
            + 8  # nonce
            + TAG_WIRE_BYTES
            + 4  # fragment index (-1: miss)
            + 8  # epoch stamp
            + len(message.fragment)
        )
    if isinstance(message, Heartbeat):
        return BASE_WIRE_BYTES + 4  # server id
    if isinstance(message, LeaseGrant):
        return BASE_WIRE_BYTES + 4 + 8 + 8  # grantor + epoch + sent_at
    if isinstance(message, LeaseRevoke):
        return BASE_WIRE_BYTES + 4 + 8  # grantor + epoch
    raise TypeError(f"unknown message type: {type(message).__name__}")
