"""Protocol messages and their wire-size accounting.

Two message families exist:

* **client messages** — ``ClientWrite``/``ClientRead`` requests and their
  ``WriteAck``/``ReadAck`` replies, exchanged between clients and the one
  server they contact;
* **ring messages** — ``PreWrite`` (the value-carrying first phase),
  ``Commit`` (the second phase; carries only tags because every server
  already stored the value during the pre-write, which is the
  "piggybacked write messages" optimisation of Section 4.2),
  ``StateSync`` (predecessor-to-new-successor state push after a crash,
  pseudocode line 88) and the ``ReconfigToken``/``ReconfigCommit`` pair
  that merges server state after a membership change.

Every ring message carries a ``commits`` tuple: commit tags piggybacked on
whatever message happens to be leaving next (Section 4.2's key throughput
optimisation — commits almost never consume their own wire slot).

``payload_size`` returns the number of application bytes each message
occupies; the simulator charges NICs with these sizes, and the asyncio
codec produces encodings of exactly these sizes (checked by tests), so the
simulator and the real transport agree on cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.tags import Tag

#: Bytes charged per tag on the wire (8-byte ts + 4-byte server id).
TAG_WIRE_BYTES = 12

#: Fixed header charged per client-op identification (client id + seq).
OP_ID_WIRE_BYTES = 12

#: Small fixed cost for message type/bookkeeping fields.
BASE_WIRE_BYTES = 8


@dataclass(frozen=True)
class OpId:
    """Globally unique client operation identifier (client id, sequence)."""

    client: int
    seq: int

    def __repr__(self) -> str:
        return f"Op({self.client}.{self.seq})"


# ----------------------------------------------------------------------
# Client <-> server messages
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ClientWrite:
    """``<write, v>`` from a client to any server (pseudocode line 2)."""

    op: OpId
    value: bytes


@dataclass(frozen=True)
class WriteAck:
    """``<write_ack>`` completing a write (pseudocode line 50).

    ``tag`` is the tag the write committed under; it is ``None`` only on
    the deduplicated-retry path where the original tag is no longer
    known.  Carrying it lets the analysis layer run the fast tag-based
    atomicity check on benchmark-sized histories.
    """

    op: OpId
    tag: Optional[Tag] = None


@dataclass(frozen=True)
class ClientRead:
    """``<read>`` from a client to any server (pseudocode line 7)."""

    op: OpId


@dataclass(frozen=True)
class ReadAck:
    """``<read_ack, v>`` completing a read (pseudocode line 78/82)."""

    op: OpId
    value: bytes
    tag: Tag


# ----------------------------------------------------------------------
# Ring messages (server -> successor only)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PreWrite:
    """First phase of a write: disseminates (tag, value) around the ring.

    ``origin`` is the initiating server's id (== ``tag.server_id`` for
    normal writes).  ``op`` identifies the client operation so that every
    server can deduplicate retried client writes.  ``epoch`` stamps the
    sender's installed ring view; under the imperfect failure detector a
    receiver rejects traffic from any other epoch, which is what stops a
    wrongly-suspected-but-alive server's stale writes from re-entering
    the ring after a partition heals.
    """

    tag: Tag
    value: bytes
    op: OpId
    commits: tuple[Tag, ...] = ()
    epoch: int = 0

    @property
    def origin(self) -> int:
        return self.tag.server_id


@dataclass(frozen=True)
class Commit:
    """Second phase: commit notifications, by tag only.

    A standalone ``Commit`` is sent when commit tags are queued but no
    other ring message is about to leave; otherwise the tags ride in the
    ``commits`` field of another message.  ``epoch`` stamps the sender's
    installed view (see :class:`PreWrite`).
    """

    commits: tuple[Tag, ...]
    epoch: int = 0


@dataclass(frozen=True)
class StateSync:
    """Predecessor pushes its full register state to a new successor
    after splicing the ring around a crashed server (pseudocode line 88).
    ``epoch`` stamps the sender's installed view (see :class:`PreWrite`).
    """

    tag: Tag
    value: bytes
    commits: tuple[Tag, ...] = ()
    epoch: int = 0


@dataclass(frozen=True)
class PendingEntry:
    """One pending (uncommitted) write carried by reconfiguration messages."""

    tag: Tag
    value: bytes
    op: OpId


@dataclass(frozen=True)
class ReconfigToken:
    """State-merge token circulated once around the new ring after a
    membership change (a crash, or a crashed server rejoining).

    The coordinator (the crashed server's alive predecessor, or the
    rejoining server's sponsor) initiates the token; every server merges
    its own state into it and forwards it.  ``nonce`` uniquely
    identifies one reconfiguration attempt so that a token orphaned by
    its coordinator's own crash dies after one circle instead of
    circulating forever.  ``revived`` lists servers this
    reconfiguration folds *back into* the ring (crash recovery); every
    receiver splices them in before merging, so the token and its
    commit traverse the grown ring — including the rejoiner, which is
    how the rejoiner catches up.
    """

    nonce: int
    epoch: int
    coordinator: int
    dead: tuple[int, ...]
    tag: Tag
    value: bytes
    pending: tuple[PendingEntry, ...]
    completed_ops: tuple[tuple[int, int], ...]  # (client, max completed seq)
    revived: tuple[int, ...] = ()
    #: The commit tag behind each client's max completed seq, where the
    #: merging servers know it: (client, tag) pairs.  Carried so a server
    #: that learns of a completion only through the merge can still ack a
    #: retried duplicate *with* the real committed tag — an untagged ack
    #: would leave a hole in the tag coverage the benchmark-scale checker
    #: gates on.
    completed_tags: tuple[tuple[int, Tag], ...] = ()


@dataclass(frozen=True)
class ReconfigCommit:
    """Second ring traversal: install the merged state and resume."""

    nonce: int
    epoch: int
    coordinator: int
    dead: tuple[int, ...]
    tag: Tag
    value: bytes
    pending: tuple[PendingEntry, ...]
    completed_ops: tuple[tuple[int, int], ...]
    revived: tuple[int, ...] = ()
    completed_tags: tuple[tuple[int, Tag], ...] = ()


@dataclass(frozen=True)
class RejoinRequest:
    """A restarted server announcing itself to a live sponsor.

    Sent outside the ring order (the rejoiner is not part of anyone's
    ring yet).  The sponsor folds the rejoiner back in by coordinating a
    reconfiguration whose token carries ``revived=(server_id,)``.
    ``generation`` is the rejoiner's restart count — informational (it
    lets traces distinguish announcements across repeated restarts); the
    request itself is idempotent and retried until the rejoiner is
    resumed by a reconfiguration commit.  ``epoch`` stamps the last view
    the rejoiner had installed: the sponsor's fold-in token necessarily
    carries a higher epoch, and a request claiming an epoch *above* the
    sponsor's own is dropped (a confused rejoiner cannot drag the ring
    backwards).
    """

    server_id: int
    generation: int = 0
    epoch: int = 0


@dataclass(frozen=True)
class StaleEpochNotice:
    """Tells a stale sender that the ring has moved on without it.

    Sent outside the ring order by a server that rejected epoch-stale
    traffic (or an epoch-stale reconfiguration attempt).  ``epoch`` is
    the *sender's* installed epoch; a receiver whose own epoch is lower
    knows it was excluded from a view it never saw — it must stop
    serving and rejoin through a sponsor, exactly like a restarted
    server.  The notice is advisory: losing it only delays the rejoin
    (the excluded server's own stalled traffic re-triggers it).
    """

    epoch: int
    sender: int


@dataclass(frozen=True)
class Heartbeat:
    """Liveness beacon for the imperfect failure detector.

    Exchanged between every pair of servers outside the ring order and
    outside the reliable session layer — a retransmitted heartbeat would
    defeat its purpose as a freshness signal.
    """

    server_id: int


RingMessage = Union[
    PreWrite,
    Commit,
    StateSync,
    ReconfigToken,
    ReconfigCommit,
    RejoinRequest,
    StaleEpochNotice,
]
ClientMessage = Union[ClientWrite, ClientRead]
ServerReply = Union[WriteAck, ReadAck]
Message = Union[RingMessage, ClientMessage, ServerReply]


def payload_size(message: Message) -> int:
    """Application-level payload bytes of ``message``.

    The simulator charges NICs with this size (plus the wire model's
    framing); the binary codec produces encodings of this exact size, so
    simulated and real transports agree.
    """
    if isinstance(message, ClientWrite):
        return BASE_WIRE_BYTES + OP_ID_WIRE_BYTES + len(message.value)
    if isinstance(message, WriteAck):
        return BASE_WIRE_BYTES + OP_ID_WIRE_BYTES + TAG_WIRE_BYTES
    if isinstance(message, ClientRead):
        return BASE_WIRE_BYTES + OP_ID_WIRE_BYTES
    if isinstance(message, ReadAck):
        return BASE_WIRE_BYTES + OP_ID_WIRE_BYTES + TAG_WIRE_BYTES + len(message.value)
    if isinstance(message, PreWrite):
        return (
            BASE_WIRE_BYTES
            + TAG_WIRE_BYTES
            + OP_ID_WIRE_BYTES
            + 8  # epoch stamp
            + 4  # piggybacked-commit count
            + len(message.value)
            + TAG_WIRE_BYTES * len(message.commits)
        )
    if isinstance(message, Commit):
        return BASE_WIRE_BYTES + 8 + TAG_WIRE_BYTES * len(message.commits)
    if isinstance(message, StateSync):
        return (
            BASE_WIRE_BYTES
            + TAG_WIRE_BYTES
            + 8  # epoch stamp
            + 4  # piggybacked-commit count
            + len(message.value)
            + TAG_WIRE_BYTES * len(message.commits)
        )
    if isinstance(message, (ReconfigToken, ReconfigCommit)):
        pending_bytes = sum(
            TAG_WIRE_BYTES + OP_ID_WIRE_BYTES + 4 + len(entry.value)
            for entry in message.pending
        )
        return (
            BASE_WIRE_BYTES
            + 8  # nonce
            + 8  # epoch
            + 4  # coordinator
            + 4  # dead count
            + 4 * len(message.dead)
            + 4  # revived count
            + 4 * len(message.revived)
            + TAG_WIRE_BYTES
            + 4  # value length
            + len(message.value)
            + 4  # pending count
            + pending_bytes
            + 4  # completed-ops count
            + OP_ID_WIRE_BYTES * len(message.completed_ops)
            + 4  # completed-tags count
            + (8 + TAG_WIRE_BYTES) * len(message.completed_tags)
        )
    if isinstance(message, RejoinRequest):
        return BASE_WIRE_BYTES + 4 + 4 + 8  # server id + generation + epoch
    if isinstance(message, StaleEpochNotice):
        return BASE_WIRE_BYTES + 8 + 4  # epoch + sender id
    if isinstance(message, Heartbeat):
        return BASE_WIRE_BYTES + 4  # server id
    raise TypeError(f"unknown message type: {type(message).__name__}")
