"""The client state machine (sans-I/O).

Per the paper: "Clients send Read and Write requests to any server in S.
If the server contacted by the client crashes, the client re-issues the
request to another server.  Clients do not directly detect the failure of
a server, but when their request times out, they simply re-send it to
another server."

A :class:`ClientProtocol` performs one operation at a time (registers are
sequential objects); the workload layer runs many client instances to
generate load.  Retries reuse the same :class:`~repro.core.messages.OpId`
so that servers can deduplicate a write whose ack was lost in a crash.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import ProtocolConfig
from repro.core.messages import ClientRead, ClientWrite, OpId, ReadAck, WriteAck
from repro.core.tags import Tag
from repro.errors import ProtocolError
from repro.runtime.interface import (
    CancelTimer,
    Complete,
    Effect,
    Fail,
    SendTo,
    SetTimer,
)


class ClientProtocol:
    """One logical storage client.

    Parameters
    ----------
    client_id:
        Globally unique client identifier.
    servers:
        Server ids the client may contact, in preference order; the first
        is its "home" server (the paper binds client machines to servers),
        and retries walk the list round-robin.
    config:
        Protocol tunables (timeout, retry budget).
    """

    def __init__(
        self,
        client_id: int,
        servers: list[int],
        config: Optional[ProtocolConfig] = None,
    ):
        if not servers:
            raise ProtocolError("a client needs at least one server")
        self.client_id = client_id
        self.servers = list(servers)
        self.config = (config or ProtocolConfig()).validate()

        self._seq = 0
        self._server_index = 0
        self._outstanding: Optional[OpId] = None
        self._kind: Optional[str] = None
        self._message = None
        self._retries = 0
        #: Largest tag observed across this client's completed ops.  Sent
        #: with reads so a lease-holding server only serves locally when
        #: its state covers everything this client has already seen.
        self._session: Optional[Tag] = None

        # Statistics.
        self.stats_ops_completed = 0
        self.stats_retries = 0

    @property
    def busy(self) -> bool:
        """Whether an operation is in flight."""
        return self._outstanding is not None

    @property
    def outstanding(self) -> Optional[OpId]:
        """The in-flight op id, if any (runtimes match replies against it)."""
        return self._outstanding

    @property
    def current_server(self) -> int:
        return self.servers[self._server_index % len(self.servers)]

    # ------------------------------------------------------------------
    # Invocations
    # ------------------------------------------------------------------

    def start_write(self, value: bytes) -> tuple[OpId, list[Effect]]:
        """Begin a write; returns the op id and the effects to execute."""
        op = self._begin("write")
        self._message = ClientWrite(op, value)
        return op, self._issue()

    def start_read(self) -> tuple[OpId, list[Effect]]:
        """Begin a read; returns the op id and the effects to execute."""
        op = self._begin("read")
        self._message = ClientRead(op, self._session)
        return op, self._issue()

    # ------------------------------------------------------------------
    # Inputs
    # ------------------------------------------------------------------

    def on_reply(self, message) -> list[Effect]:
        """Handle a server reply (ack for the outstanding operation)."""
        if self._outstanding is None or message.op != self._outstanding:
            return []  # stale reply from a retried server; ignore
        op = self._outstanding
        kind = self._kind
        self._outstanding = None
        self._kind = None
        self._message = None
        self._retries = 0
        self.stats_ops_completed += 1
        if isinstance(message, WriteAck):
            self._advance_session(message.tag)
            return [CancelTimer(op.seq), Complete(op, kind="write", tag=message.tag)]
        if isinstance(message, ReadAck):
            self._advance_session(message.tag)
            return [
                CancelTimer(op.seq),
                Complete(op, kind="read", value=message.value, tag=message.tag),
            ]
        raise ProtocolError(f"unexpected reply: {message!r}")

    def on_timeout(self, timer_id: int) -> list[Effect]:
        """Retry the outstanding operation at the next server."""
        if self._outstanding is None or timer_id != self._outstanding.seq:
            return []  # stale timer
        if self._retries >= self.config.client_max_retries:
            # Reset the *whole* op state, exactly as the ack path does:
            # a stale _kind would mislabel the next operation's failure,
            # and leftover _retries would shorten its retry budget.  The
            # CancelTimer disarms any runtime that re-arms timers around
            # delivery (the timer that fired here is already gone, but
            # runtimes treat cancel-unarmed as a no-op).
            op = self._outstanding
            self._outstanding = None
            self._kind = None
            self._message = None
            self._retries = 0
            return [CancelTimer(op.seq), Fail(op, reason="retries exhausted")]
        self._retries += 1
        self.stats_retries += 1
        self._server_index += 1
        return self._issue()

    def reissue(self) -> list[Effect]:
        """Re-send the outstanding operation immediately.

        Used by the sharded runtime when a :class:`PlacementRedirect`
        arrives: the operation is fine, only its destination was stale,
        so it goes straight back out (the host maps the send onto the
        block's refreshed placement) without burning a retry or waiting
        for the timeout.  The re-armed timer replaces the old one.
        """
        if self._outstanding is None:
            return []  # redirect raced the completion; nothing to resend
        return self._issue()

    def fail_current(self, reason: str) -> list[Effect]:
        """Fail the outstanding operation without waiting for timeouts.

        For runtime-detected dead ends (e.g. a placement-redirect budget
        exhausted): further retries would only chase the same stale
        state.  Resets the full op state exactly as retry exhaustion
        does, so the handle is immediately reusable.
        """
        if self._outstanding is None:
            return []
        op = self._outstanding
        self._outstanding = None
        self._kind = None
        self._message = None
        self._retries = 0
        return [CancelTimer(op.seq), Fail(op, reason=reason)]

    def abandon(self) -> Optional[OpId]:
        """Forget the in-flight operation without completing it.

        The runtime calls this when it gives up on an operation for
        reasons the protocol cannot see (e.g. the simulation went idle
        with the operation half-open).  Resetting the full op state here
        keeps the handle reusable: a later ``start_read``/``start_write``
        must begin from scratch, not from a stale ``_kind``/``_retries``
        or a phantom outstanding op.  Returns the abandoned op id (for
        timer/callback cleanup), or ``None`` if nothing was in flight.
        """
        op = self._outstanding
        self._outstanding = None
        self._kind = None
        self._message = None
        self._retries = 0
        return op

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _advance_session(self, tag: Optional[Tag]) -> None:
        if tag is not None and (self._session is None or tag > self._session):
            self._session = tag

    def _begin(self, kind: str) -> OpId:
        if self._outstanding is not None:
            raise ProtocolError(
                f"client {self.client_id} already has {self._outstanding} in flight"
            )
        op = OpId(self.client_id, self._seq)
        self._seq += 1
        self._outstanding = op
        self._kind = kind
        self._retries = 0
        return op

    def _issue(self) -> list[Effect]:
        assert self._outstanding is not None
        return [
            SendTo(self.current_server, self._message),
            SetTimer(self._outstanding.seq, self.config.client_timeout),
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ClientProtocol {self.client_id} outstanding={self._outstanding}>"
