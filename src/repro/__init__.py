"""Reproduction of *A High Throughput Atomic Storage Algorithm* (ICDCS 2007).

This package implements the ring-based atomic storage algorithm of
Guerraoui, Kostic, Levy and Quema, together with every substrate the paper
depends on:

``repro.sim``
    A deterministic discrete-event cluster simulator with rate-limited
    full-duplex NICs.  It stands in for the paper's 24-node cluster with
    100 Mbit/s fast-ethernet interfaces.

``repro.rounds``
    The synchronous round-based model of the paper's Section 2 (compute,
    send/broadcast, receive at most one message per round), used for the
    analytical evaluation (Figure 1 and Section 4).

``repro.core``
    The paper's contribution: a multi-writer multi-reader atomic register
    with local reads, a two-phase (pre-write / write) ring dissemination
    for writes, a fairness scheduler, and crash handling driven by a
    perfect failure detector.

``repro.baselines``
    The comparison points discussed by the paper: an ABD-style
    majority-quorum register, chain replication, a total-order-broadcast
    based register, and a naive write-all register that exhibits the
    read-inversion anomaly.

``repro.analysis``
    History recording, linearizability checking and throughput/latency
    statistics.

``repro.workload`` / ``repro.bench``
    Client emulation and the experiment harness that regenerates every
    figure of the paper's evaluation.

The top level re-exports the most commonly used entry points so that a
downstream user can write::

    from repro import SimCluster, AtomicStorage

    cluster = SimCluster.build(num_servers=5, seed=7)
    storage = AtomicStorage.over(cluster)
"""

from repro._version import __version__
from repro.core.config import ProtocolConfig
from repro.core.storage import AtomicStorage
from repro.core.tags import Tag
from repro.runtime.sim_net import SimCluster

__all__ = [
    "__version__",
    "AtomicStorage",
    "ProtocolConfig",
    "SimCluster",
    "Tag",
]
