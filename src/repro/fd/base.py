"""Failure-detector interface."""

from __future__ import annotations

from typing import Callable, Protocol


class FailureDetector(Protocol):
    """Minimal contract every detector implements.

    A detector monitors a fixed set of processes and invokes registered
    listeners exactly once per detected crash.  Perfect detectors
    additionally guarantee *strong accuracy* (no process is suspected
    before it crashes) and *strong completeness* (every crash is
    eventually detected by every correct process).
    """

    def subscribe(self, listener: Callable[[int], None]) -> None:
        """Register ``listener(crashed_id)``; called once per crash."""
        ...

    def suspected(self) -> frozenset[int]:
        """The set of processes currently suspected (crashed)."""
        ...
