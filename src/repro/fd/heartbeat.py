"""Heartbeat bookkeeping for timeout-based failure detection.

The asyncio runtime detects ring-neighbour crashes through TCP connection
breaks (the paper's primary mechanism); :class:`HeartbeatTracker`
complements it for peers we hold no connection to.  It is sans-I/O — the
caller feeds heartbeats and clock readings, the tracker reports suspects
— so the same logic is testable without a loop and usable from asyncio
and from the simulator alike.

Two operating modes:

* **perfect** (``imperfect=False``, the default): under the paper's
  synchrony assumption (bounded message delay ``d`` and heartbeat period
  ``p``), a timeout of ``p + d`` yields a *perfect* detector — no false
  suspicion, every crash detected within one timeout.  Suspicion is
  final: a late heartbeat from a suspect is ignored.
* **imperfect** (``imperfect=True``): the timeout is a heuristic, not a
  bound.  A suspected peer whose heartbeat arrives late is *un-suspected*
  (:meth:`heard_from` returns ``True`` at that transition), which is the
  signal the epoch-guarded reconfiguration layer uses to fold a wrongly
  suspected server back into the ring.

Membership is updatable (:meth:`add_peer` / :meth:`remove_peer`) so a
tracker can follow reconfigured views instead of silently ignoring
heartbeats from peers it was never told about — ``heard_from`` for an
unknown peer is still a no-op (returning ``False``), but callers that
grow the ring can now keep the tracker honest.

Suspicion uses a strict threshold: a peer is suspected when
``now - last_heard > timeout``; at exactly ``now - last_heard == timeout``
it is still trusted (the timeout is the *allowed* silence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class HeartbeatConfig:
    """Timing knobs for a heartbeat-based (imperfect) failure detector.

    Attributes
    ----------
    period:
        Interval between heartbeats sent to each peer.
    timeout:
        Silence after which a peer is suspected.  A heuristic, not a
        bound: wrong suspicion is *expected* under partitions, pauses
        and loss, and costs liveness only (see docs/reconfiguration.md).
    check_interval:
        Cadence at which the runtime polls :meth:`HeartbeatTracker.check`.
    propose_grace:
        Delay between a suspicion changing and the server acting on it
        by proposing a new ring view.  Covers the skew between the two
        sides of a partition noticing each other's silence: a wrongly
        suspected server has paused (its own detector fired) before the
        surviving side installs the view that excludes it.  Must exceed
        ``period + check_interval`` plus delivery jitter.
    lease_duration:
        How long one :class:`~repro.core.messages.LeaseGrant` stays
        fresh, measured against the holder's clock from the grant's
        grantor-stamped send time.  Grants ride every heartbeat, so a
        stable ring renews well within the duration; the duration only
        binds when grants stop arriving.  Must satisfy
        ``lease_duration + 2*clock_drift_bound < timeout`` *strictly*:
        a grantor stops granting the moment it stops hearing the holder,
        so the holder's last grant expires (even under worst-case drift,
        measured on the grantor's clock) before the grantor's suspicion
        can install a view excluding the holder — the lease dies before
        the epoch that would conflict with it can act.
    clock_drift_bound:
        Declared bound on the absolute offset between any two servers'
        clocks.  The lease math charges ``2 *`` this bound (holder fast
        and grantor slow, or vice versa).  The nemesis ``clock_skew``
        fault injects offsets up to this bound to attack the arithmetic.
    grant_leases:
        Whether this detector hands out read leases at all.  Off, every
        read falls back to ring circulation (the measured baseline for
        the leased read win); lease *validity checking* stays on so the
        protocol path is identical, just never taken.
    """

    period: float = 0.02
    timeout: float = 0.12
    check_interval: float = 0.01
    propose_grace: float = 0.06
    lease_duration: float = 0.08
    clock_drift_bound: float = 0.01
    grant_leases: bool = True

    def validate(self) -> "HeartbeatConfig":
        for name in ("period", "timeout", "check_interval", "propose_grace"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"heartbeat {name} must be > 0")
        if self.timeout <= self.period:
            raise ConfigurationError(
                "heartbeat timeout must exceed the period "
                f"(timeout={self.timeout}, period={self.period})"
            )
        if self.propose_grace < self.period + self.check_interval:
            raise ConfigurationError(
                "propose_grace must cover at least one period + check "
                f"interval of suspicion skew (got {self.propose_grace})"
            )
        if self.lease_duration <= 0:
            raise ConfigurationError("lease_duration must be > 0")
        if self.clock_drift_bound < 0:
            raise ConfigurationError("clock_drift_bound must be >= 0")
        if self.lease_duration <= self.period:
            raise ConfigurationError(
                "lease_duration must exceed the heartbeat period or every "
                f"grant expires before its renewal (got {self.lease_duration})"
            )
        if not self.lease_duration + 2 * self.clock_drift_bound < self.timeout:
            raise ConfigurationError(
                "lease_duration + 2*clock_drift_bound must be strictly below "
                f"the suspicion timeout (got {self.lease_duration} + "
                f"2*{self.clock_drift_bound} vs timeout={self.timeout}): a "
                "lease must provably die before the suspicion that would "
                "exclude its holder can fire"
            )
        return self

    def waitout(self) -> float:
        """Old-epoch lease wait-out applied at view install.

        A server that installs a view excluding members must wait this
        long before initiating new-epoch writes: any lease grant it (or
        any other new-view member) issued under the old epoch — sent at
        the latest at install time — has expired on every holder's
        clock, worst-case drift included.
        """
        return self.lease_duration + 2 * self.clock_drift_bound


class HeartbeatTracker:
    """Tracks last-heard times and derives suspicions."""

    def __init__(
        self,
        peers: Iterable[int],
        timeout: float,
        now: float = 0.0,
        *,
        imperfect: bool = False,
    ):
        if timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        self.timeout = timeout
        self.imperfect = imperfect
        self._last_heard: dict[int, float] = {peer: now for peer in peers}
        self._suspected: set[int] = set()

    def heard_from(self, peer: int, now: float) -> bool:
        """Record a heartbeat (or any message) from ``peer``.

        Returns ``True`` exactly when this arrival *un-suspects* the
        peer — possible only in imperfect mode; a perfect detector never
        un-suspects, and an unknown peer is ignored either way.
        """
        if peer not in self._last_heard:
            return False
        if peer in self._suspected:
            if not self.imperfect:
                return False  # perfect detectors never un-suspect
            self._suspected.discard(peer)
            self._last_heard[peer] = max(self._last_heard[peer], now)
            return True
        self._last_heard[peer] = max(self._last_heard[peer], now)
        return False

    def check(self, now: float) -> list[int]:
        """Return peers newly suspected as of ``now``.

        The threshold is strict: silence of exactly ``timeout`` is still
        within the allowance; suspicion begins strictly beyond it.
        """
        newly = []
        for peer, last in self._last_heard.items():
            if peer not in self._suspected and now - last > self.timeout:
                self._suspected.add(peer)
                newly.append(peer)
        return newly

    def add_peer(self, peer: int, now: float) -> None:
        """Start monitoring ``peer``, with its silence clock at ``now``.

        Adding an already-known peer is a no-op (its last-heard time and
        suspicion state are preserved), so callers can idempotently
        resync membership from a reconfigured view.
        """
        if peer not in self._last_heard:
            self._last_heard[peer] = now

    def remove_peer(self, peer: int) -> None:
        """Stop monitoring ``peer`` (removed from the ring for good).

        Removing an unknown peer is a no-op.  A removed peer is also
        dropped from the suspected set, so re-adding it later starts
        from a clean slate.
        """
        self._last_heard.pop(peer, None)
        self._suspected.discard(peer)

    def suspected(self) -> frozenset[int]:
        return frozenset(self._suspected)

    @property
    def peers(self) -> frozenset[int]:
        return frozenset(self._last_heard)


class ReadLease:
    """Holder-side read-lease validity, sans-I/O.

    A server's lease is valid when it holds a *fresh* grant — one whose
    grantor-stamped send time lies within ``duration`` of the holder's
    clock (sound across machines because the deployment declares a
    clock-drift bound, and the epoch wait-out charges twice it; measured
    from *send* rather than receipt so a grant buffered in a partition
    and flushed at heal arrives already-expired) — from **every**
    required grantor (the other alive members of its installed view),
    all stamped with the holder's current epoch.  The conjunction is the
    point: one
    grantor falling silent (crash, partition, or having moved to a new
    epoch) kills the lease within ``duration`` even if the rest of the
    ring keeps granting, so a holder cut off from *any* member stops
    serving locally before that member's suspicion can act on it.

    Freshness uses the same strictness convention as
    :class:`HeartbeatTracker`: a grant aged exactly ``duration`` is
    still fresh; strictly beyond, it has expired.  An empty required
    set (a single-server ring) is vacuously valid at any epoch — there
    is no one whose suspicion could conflict.

    Lease state is deliberately *not* part of any durable snapshot: a
    restarted server starts with :meth:`reset` state and re-earns grants
    only after rejoining, so stale pre-crash grants can never revive.
    """

    def __init__(self, duration: float):
        if duration <= 0:
            raise ValueError(f"lease duration must be > 0, got {duration}")
        self.duration = duration
        self._required: frozenset[int] = frozenset()
        #: grantor -> (epoch, holder-clock receipt time) of the latest grant.
        self._grants: dict[int, tuple[int, float]] = {}

    def set_required(self, grantors: Iterable[int]) -> None:
        """Declare the grantor set the lease needs (view change).

        Grants already held from grantors leaving the set are dropped —
        a stale grant from a server no longer in the view must not be
        able to satisfy a *future* view that re-includes it.
        """
        self._required = frozenset(grantors)
        for grantor in [g for g in self._grants if g not in self._required]:
            del self._grants[grantor]

    def grant(self, grantor: int, epoch: int, now: float) -> bool:
        """Record a grant timestamped ``now`` (the grantor's clock at
        send time); returns ``True`` if it *newly* covers the grantor
        (first grant, a changed epoch, or renewal of an expired grant)
        rather than refreshing a live one."""
        if grantor not in self._required:
            return False
        previous = self._grants.get(grantor)
        self._grants[grantor] = (epoch, now)
        if previous is None:
            return True
        old_epoch, old_at = previous
        return old_epoch != epoch or now - old_at > self.duration

    def revoke(self, grantor: int) -> None:
        """Drop ``grantor``'s grant immediately (explicit revocation)."""
        self._grants.pop(grantor, None)

    def reset(self) -> None:
        """Forget every grant (restart, pause, or defensive view install)."""
        self._grants.clear()

    def valid(self, now: float, epoch: int) -> bool:
        """Whether the lease covers serving a local read right now."""
        for grantor in sorted(self._required):
            held = self._grants.get(grantor)
            if held is None:
                return False
            grant_epoch, granted_at = held
            if grant_epoch != epoch or now - granted_at > self.duration:
                return False
        return True

    def expires_at(self, epoch: int) -> Optional[float]:
        """Earliest holder-clock time the currently-held grants stop
        covering ``epoch`` — for scheduling an expiry check — or
        ``None`` if the lease is not even potentially valid (a required
        grant missing or stamped with another epoch)."""
        deadlines: list[float] = []
        for grantor in sorted(self._required):
            held = self._grants.get(grantor)
            if held is None or held[0] != epoch:
                return None
            deadlines.append(held[1] + self.duration)
        return min(deadlines) if deadlines else None
