"""Heartbeat bookkeeping for timeout-based failure detection.

The asyncio runtime detects ring-neighbour crashes through TCP connection
breaks (the paper's primary mechanism); :class:`HeartbeatTracker`
complements it for peers we hold no connection to.  It is sans-I/O — the
caller feeds heartbeats and clock readings, the tracker reports suspects
— so the same logic is testable without a loop and usable from asyncio.

Under the paper's synchrony assumption (bounded message delay ``d`` and
heartbeat period ``p``), a timeout of ``p + d`` yields a *perfect*
detector: no false suspicion, every crash detected within one timeout.
"""

from __future__ import annotations

from typing import Iterable


class HeartbeatTracker:
    """Tracks last-heard times and derives suspicions."""

    def __init__(self, peers: Iterable[int], timeout: float, now: float = 0.0):
        if timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        self.timeout = timeout
        self._last_heard: dict[int, float] = {peer: now for peer in peers}
        self._suspected: set[int] = set()

    def heard_from(self, peer: int, now: float) -> None:
        """Record a heartbeat (or any message) from ``peer``."""
        if peer in self._suspected:
            return  # perfect detectors never un-suspect
        if peer in self._last_heard:
            self._last_heard[peer] = max(self._last_heard[peer], now)

    def check(self, now: float) -> list[int]:
        """Return peers newly suspected as of ``now``."""
        newly = []
        for peer, last in self._last_heard.items():
            if peer not in self._suspected and now - last > self.timeout:
                self._suspected.add(peer)
                newly.append(peer)
        return newly

    def suspected(self) -> frozenset[int]:
        return frozenset(self._suspected)

    @property
    def peers(self) -> frozenset[int]:
        return frozenset(self._last_heard)
