"""Heartbeat bookkeeping for timeout-based failure detection.

The asyncio runtime detects ring-neighbour crashes through TCP connection
breaks (the paper's primary mechanism); :class:`HeartbeatTracker`
complements it for peers we hold no connection to.  It is sans-I/O — the
caller feeds heartbeats and clock readings, the tracker reports suspects
— so the same logic is testable without a loop and usable from asyncio
and from the simulator alike.

Two operating modes:

* **perfect** (``imperfect=False``, the default): under the paper's
  synchrony assumption (bounded message delay ``d`` and heartbeat period
  ``p``), a timeout of ``p + d`` yields a *perfect* detector — no false
  suspicion, every crash detected within one timeout.  Suspicion is
  final: a late heartbeat from a suspect is ignored.
* **imperfect** (``imperfect=True``): the timeout is a heuristic, not a
  bound.  A suspected peer whose heartbeat arrives late is *un-suspected*
  (:meth:`heard_from` returns ``True`` at that transition), which is the
  signal the epoch-guarded reconfiguration layer uses to fold a wrongly
  suspected server back into the ring.

Membership is updatable (:meth:`add_peer` / :meth:`remove_peer`) so a
tracker can follow reconfigured views instead of silently ignoring
heartbeats from peers it was never told about — ``heard_from`` for an
unknown peer is still a no-op (returning ``False``), but callers that
grow the ring can now keep the tracker honest.

Suspicion uses a strict threshold: a peer is suspected when
``now - last_heard > timeout``; at exactly ``now - last_heard == timeout``
it is still trusted (the timeout is the *allowed* silence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class HeartbeatConfig:
    """Timing knobs for a heartbeat-based (imperfect) failure detector.

    Attributes
    ----------
    period:
        Interval between heartbeats sent to each peer.
    timeout:
        Silence after which a peer is suspected.  A heuristic, not a
        bound: wrong suspicion is *expected* under partitions, pauses
        and loss, and costs liveness only (see docs/reconfiguration.md).
    check_interval:
        Cadence at which the runtime polls :meth:`HeartbeatTracker.check`.
    propose_grace:
        Delay between a suspicion changing and the server acting on it
        by proposing a new ring view.  Covers the skew between the two
        sides of a partition noticing each other's silence: a wrongly
        suspected server has paused (its own detector fired) before the
        surviving side installs the view that excludes it.  Must exceed
        ``period + check_interval`` plus delivery jitter.
    """

    period: float = 0.02
    timeout: float = 0.12
    check_interval: float = 0.01
    propose_grace: float = 0.06

    def validate(self) -> "HeartbeatConfig":
        for name in ("period", "timeout", "check_interval", "propose_grace"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"heartbeat {name} must be > 0")
        if self.timeout <= self.period:
            raise ConfigurationError(
                "heartbeat timeout must exceed the period "
                f"(timeout={self.timeout}, period={self.period})"
            )
        if self.propose_grace < self.period + self.check_interval:
            raise ConfigurationError(
                "propose_grace must cover at least one period + check "
                f"interval of suspicion skew (got {self.propose_grace})"
            )
        return self


class HeartbeatTracker:
    """Tracks last-heard times and derives suspicions."""

    def __init__(
        self,
        peers: Iterable[int],
        timeout: float,
        now: float = 0.0,
        *,
        imperfect: bool = False,
    ):
        if timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        self.timeout = timeout
        self.imperfect = imperfect
        self._last_heard: dict[int, float] = {peer: now for peer in peers}
        self._suspected: set[int] = set()

    def heard_from(self, peer: int, now: float) -> bool:
        """Record a heartbeat (or any message) from ``peer``.

        Returns ``True`` exactly when this arrival *un-suspects* the
        peer — possible only in imperfect mode; a perfect detector never
        un-suspects, and an unknown peer is ignored either way.
        """
        if peer not in self._last_heard:
            return False
        if peer in self._suspected:
            if not self.imperfect:
                return False  # perfect detectors never un-suspect
            self._suspected.discard(peer)
            self._last_heard[peer] = max(self._last_heard[peer], now)
            return True
        self._last_heard[peer] = max(self._last_heard[peer], now)
        return False

    def check(self, now: float) -> list[int]:
        """Return peers newly suspected as of ``now``.

        The threshold is strict: silence of exactly ``timeout`` is still
        within the allowance; suspicion begins strictly beyond it.
        """
        newly = []
        for peer, last in self._last_heard.items():
            if peer not in self._suspected and now - last > self.timeout:
                self._suspected.add(peer)
                newly.append(peer)
        return newly

    def add_peer(self, peer: int, now: float) -> None:
        """Start monitoring ``peer``, with its silence clock at ``now``.

        Adding an already-known peer is a no-op (its last-heard time and
        suspicion state are preserved), so callers can idempotently
        resync membership from a reconfigured view.
        """
        if peer not in self._last_heard:
            self._last_heard[peer] = now

    def remove_peer(self, peer: int) -> None:
        """Stop monitoring ``peer`` (removed from the ring for good).

        Removing an unknown peer is a no-op.  A removed peer is also
        dropped from the suspected set, so re-adding it later starts
        from a clean slate.
        """
        self._last_heard.pop(peer, None)
        self._suspected.discard(peer)

    def suspected(self) -> frozenset[int]:
        return frozenset(self._suspected)

    @property
    def peers(self) -> frozenset[int]:
        return frozenset(self._last_heard)
