"""Failure detection.

The paper assumes a *perfect* failure detector (P, Chandra–Toueg): in a
homogeneous cluster with fine-tuned TCP, a broken ring connection means
the peer crashed ("it is reasonable to assume that when a TCP connection
fails, the server on the other side of the connection failed").

* :mod:`repro.fd.base` — the detector interface;
* :mod:`repro.fd.perfect` — an oracle-backed perfect detector used by
  the simulator (crash events are known to the simulation);
* :mod:`repro.fd.heartbeat` — a heartbeat timeout tracker, usable two
  ways: as a perfect detector under the synchrony assumption (timeout
  exceeding the worst heartbeat delay, no un-suspect), or as the
  *imperfect* detector (``imperfect=True``) behind the epoch-guarded
  reconfiguration mode, where a wrong suspicion is expected, survivable
  and reversed by a late heartbeat.  Both runtimes wire it in behind
  their ``fd="heartbeat"`` option; :class:`HeartbeatConfig` holds the
  timing knobs.
"""

from repro.fd.base import FailureDetector
from repro.fd.heartbeat import HeartbeatConfig, HeartbeatTracker
from repro.fd.perfect import PerfectFailureDetector

__all__ = [
    "FailureDetector",
    "HeartbeatConfig",
    "HeartbeatTracker",
    "PerfectFailureDetector",
]
