"""Failure detection.

The paper assumes a *perfect* failure detector (P, Chandra–Toueg): in a
homogeneous cluster with fine-tuned TCP, a broken ring connection means
the peer crashed ("it is reasonable to assume that when a TCP connection
fails, the server on the other side of the connection failed").

* :mod:`repro.fd.base` — the detector interface;
* :mod:`repro.fd.perfect` — an oracle-backed perfect detector used by
  the simulator (crash events are known to the simulation);
* :mod:`repro.fd.heartbeat` — a heartbeat timeout detector for the
  asyncio runtime, perfect under the synchrony assumption (no false
  suspicions when the timeout exceeds the worst heartbeat delay).
"""

from repro.fd.base import FailureDetector
from repro.fd.heartbeat import HeartbeatTracker
from repro.fd.perfect import PerfectFailureDetector

__all__ = ["FailureDetector", "HeartbeatTracker", "PerfectFailureDetector"]
