"""Oracle-backed perfect failure detector for the simulator.

Crash events are simulation facts, so the detector simply relays them
after a configurable detection delay — the time a real cluster needs to
observe the TCP connection reset.  Strong accuracy and completeness are
trivially satisfied, matching the model assumed by the paper.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.counters import FD_DETECTIONS, FD_RECOVERIES
from repro.sim.env import SimEnv


class PerfectFailureDetector:
    """Relays known crash events to listeners after ``detection_delay``."""

    def __init__(self, env: SimEnv, detection_delay: float):
        self.env = env
        self.detection_delay = detection_delay
        self._listeners: list[Callable[[int], None]] = []
        self._suspected: set[int] = set()

    def subscribe(self, listener: Callable[[int], None]) -> None:
        self._listeners.append(listener)

    def suspected(self) -> frozenset[int]:
        return frozenset(self._suspected)

    def report_crash(self, crashed_id: int) -> None:
        """Called by the simulation when a process actually crashes."""
        if crashed_id in self._suspected:
            return
        self._suspected.add(crashed_id)
        self.env.scheduler.schedule(self.detection_delay, self._notify, crashed_id)

    def report_recovery(self, server_id: int) -> None:
        """Called when a crashed server restarts (crash recovery).

        Clears the suspicion so a *second* crash of the same server is
        detected and relayed again.  Recovery itself is not broadcast by
        the detector — survivors learn of a rejoin from the
        reconfiguration the rejoiner's sponsor coordinates, just as a
        real cluster learns it from a fresh inbound connection rather
        than from the failure detector.
        """
        if server_id in self._suspected:
            self._suspected.discard(server_id)
            self.env.trace.count(FD_RECOVERIES)

    def _notify(self, crashed_id: int) -> None:
        self.env.trace.count(FD_DETECTIONS)
        for listener in list(self._listeners):
            listener(crashed_id)
