"""Linearizability (atomicity) checkers for read/write register histories.

Atomicity [Herlihy & Wing] — the paper's correctness property — requires
every operation to appear to take effect at one instant between its
invocation and its response.  Three checkers are provided:

``check_register_history``
    A fast value-based checker for histories with **unique written
    values**.  It reduces atomicity to a sequencing problem over value
    *clusters* (a write plus all reads returning its value) and solves it
    with a memoised greedy search that is near-linear on well-behaved
    histories.  Used by every integration and property test.

``check_register_history_slow``
    The classic Wing–Gong exhaustive search with memoisation, usable for
    small histories.  Property tests cross-validate the fast checker
    against it on random histories.

``check_tagged_history``
    An O(n log n) checker that additionally trusts the protocol's tags
    (every read/write in our runtimes records the tag of the value it
    saw/wrote).  Used on the multi-million-operation benchmark runs where
    the value-based search would be too slow.

The reduction used by the fast checker: let each value ``v`` have a
cluster ``C(v)``.  The write's linearization point must lie in
``[b(v), e(v)]`` with ``b(v) = start(W(v))`` and ``e(v) = min(end of ops
in C(v))``; a read of ``v`` can be placed iff the *next* write point in
the linearization does not precede the read's invocation.  Hence the
history is atomic iff the values can be sequenced with points
``p_1 <= p_2 <= ...``, ``p_i in [b_i, e_i]``, and
``p_{i+1} >= max(start of reads of v_i)``.  Real-time order between any
two operations is then automatically respected because every operation is
placed inside its own interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

from repro.analysis.history import History, Operation
from repro.errors import HistoryError

#: Result of a check: ``(ok, explanation)``.
CheckResult = tuple[bool, str]

_INF = math.inf


@dataclass(frozen=True)
class _Cluster:
    """A value's write interval plus its reads' constraints."""

    value: bytes
    b: float  # earliest write point (write invocation)
    e: float  # latest write point (min end over cluster ops)
    m: float  # latest read invocation (next write point must be >= m)


def _build_clusters(history: History, initial: bytes) -> tuple[list[_Cluster], str]:
    """Group operations into per-value clusters; returns (clusters, err)."""
    writes: dict[bytes, Operation] = {}
    for write in history.writes():
        if write.value in writes:
            raise HistoryError(
                "the value-based checker requires unique written values "
                f"(duplicate: {write.value!r})"
            )
        if write.value == initial:
            raise HistoryError("a write of the initial value is ambiguous")
        writes[write.value] = write

    reads_by_value: dict[bytes, list[Operation]] = {}
    for read in history.reads():
        if not read.complete:
            continue  # an open read constrains nothing
        reads_by_value.setdefault(read.value, []).append(read)

    clusters = []
    for value, read_list in reads_by_value.items():
        if value == initial:
            continue  # handled by the virtual initial write
        if value not in writes:
            return [], f"read returned {value!r} which was never written"
        write = writes[value]
        ends = [r.end for r in read_list]
        if write.complete:
            ends.append(write.end)
        e = min(ends)
        if e < write.start:
            return [], (
                f"read of {value!r} completed before its write was invoked"
            )
        m = max(r.start for r in read_list)
        clusters.append(_Cluster(value, write.start, e, m))

    for value, write in writes.items():
        if value in reads_by_value:
            continue
        if not write.complete:
            continue  # unread open write: may simply never take effect
        clusters.append(_Cluster(value, write.start, write.end, -_INF))

    # Reads of the initial value: the virtual initial write sits at -inf;
    # the first real write point must not precede any such read's start.
    initial_m = -_INF
    for read in reads_by_value.get(initial, []):
        initial_m = max(initial_m, read.start)
    if initial_m > -_INF:
        clusters.insert(0, _Cluster(initial, -_INF, -_INF, initial_m))
    return clusters, ""


def check_register_history(history: History, initial: bytes = b"") -> CheckResult:
    """Fast atomicity check for unique-value register histories.

    The value clusters are first split into time-independent *segments*:
    sweeping clusters by their write-interval start ``b``, a split is
    placed wherever no extended interval ``[b, max(e, m)]`` crosses.
    Segments can be sequenced independently (every later cluster's
    placement floor dominates any bound a prior segment could export),
    which keeps the per-segment search to the handful of genuinely
    concurrent clusters.  Within a segment a DFS with monotone-bound
    memoisation finds a sequencing; histories from concurrent runs have
    segment sizes on the order of the client count, so the check stays
    near-linear.
    """
    clusters, err = _build_clusters(history, initial)
    if err:
        return False, err
    real = [c for c in clusters if c.value != initial]
    virtual = [c for c in clusters if c.value == initial]
    base_bound = virtual[0].m if virtual else -_INF

    # Split into independent segments on the extended-interval sweep.
    ordered = sorted(real, key=lambda c: (c.b, c.e))
    segments: list[list[_Cluster]] = []
    current: list[_Cluster] = []
    current_end = base_bound
    for cluster in ordered:
        if current and cluster.b >= current_end:
            segments.append(current)
            current = []
            current_end = -_INF
        current.append(cluster)
        current_end = max(current_end, cluster.e, cluster.m)
    if current:
        segments.append(current)

    entering = base_bound
    for segment in segments:
        if not _sequence_segment(segment, entering):
            return False, "no valid sequencing of write points exists"
        entering = -_INF  # later segments are dominated by their own b's
    return True, "linearizable"


#: DFS step budget per segment; generous (segments are client-count
#: sized) but bounds pathological inputs instead of hanging.
_SEGMENT_STEP_BUDGET = 2_000_000


def _sequence_segment(segment: list[_Cluster], base_bound: float) -> bool:
    """Can the segment's clusters be sequenced from ``base_bound``?"""
    order = sorted(range(len(segment)), key=lambda i: (segment[i].e, segment[i].b))
    # Minimal bound known to make a remaining-set infeasible: bounds
    # only ever make things harder, so failing at b implies failing at
    # every b' >= b.
    failed_at: dict[frozenset, float] = {}
    steps = [0]

    def search(remaining: frozenset, bound: float) -> bool:
        if not remaining:
            return True
        known = failed_at.get(remaining)
        if known is not None and bound >= known:
            return False
        steps[0] += 1
        if steps[0] > _SEGMENT_STEP_BUDGET:
            raise HistoryError(
                "linearizability search exceeded its step budget "
                f"(segment of {len(segment)} clusters)"
            )
        for index in order:
            if index not in remaining:
                continue
            cluster = segment[index]
            point = max(bound, cluster.b)
            if point > cluster.e:
                continue
            if search(remaining - {index}, max(point, cluster.m)):
                return True
        previous = failed_at.get(remaining, _INF)
        failed_at[remaining] = min(previous, bound)
        return False

    return search(frozenset(range(len(segment))), base_bound)


def check_register_history_slow(history: History, initial: bytes = b"") -> CheckResult:
    """Wing–Gong exhaustive linearizability check (small histories only).

    Open operations are handled by allowing them to linearize at any
    point after invocation or — for writes no read depends on — not at
    all.
    """
    operations = [op for op in history.operations if op.kind in ("read", "write")]
    if len(operations) > 22:
        raise HistoryError(
            f"slow checker invoked on {len(operations)} operations; "
            "use check_register_history for histories this large"
        )
    n = len(operations)
    ends = [op.end if op.end is not None else _INF for op in operations]

    @lru_cache(maxsize=None)
    def explore(done: frozenset, value: bytes) -> bool:
        if len(done) == n:
            return True
        # Earliest end among not-yet-linearized ops: anything invoked
        # after it cannot be linearized next (real-time order).
        horizon = min((ends[i] for i in range(n) if i not in done), default=_INF)
        for i in range(n):
            if i in done:
                continue
            op = operations[i]
            if op.start > horizon:
                continue
            if op.kind == "read" and op.value != value:
                continue
            next_value = op.value if op.kind == "write" else value
            if explore(done | {i}, next_value):
                return True
        # Open writes may also never take effect; model by allowing them
        # to be skipped when nothing read their value.
        for i in range(n):
            if i in done:
                continue
            op = operations[i]
            if op.kind == "write" and not op.complete:
                read_values = {
                    r.value for r in operations if r.kind == "read" and r.complete
                }
                if op.value not in read_values and explore(done | {i}, value):
                    return True
        return False

    ok = explore(frozenset(), initial)
    explore.cache_clear()
    return (True, "linearizable") if ok else (False, "no linearization found")


def check_tagged_history(
    history: History, require_full_coverage: bool = False
) -> CheckResult:
    """O(n log n) atomicity check using recorded protocol tags.

    Every completed operation must carry a ``tag`` attribute recorded by
    the runtime (reads: the tag returned with the value; writes: the tag
    the write committed under).  The check verifies that the tag order is
    a valid linearization:

    * if ``a`` precedes ``b`` in real time, then ``tag(a) <= tag(b)``,
      strictly when ``b`` is a write (tags are unique per write);
    * all operations sharing a tag observe the same value.

    Completed operations without a tag are skipped — they carry no
    evidence either way — which makes the check *vacuous* against a
    runtime that simply forgot to record tags.  Gates that rely on this
    checker must pass ``require_full_coverage=True``: any completed
    untagged operation then fails the check outright, and the
    explanation reports the coverage either way.
    """
    completed = [op for op in history.operations if op.complete]
    tagged = [op for op in completed if op.tag is not None]
    coverage = f"{len(tagged)}/{len(completed)} completed ops tagged"
    if require_full_coverage and len(tagged) < len(completed):
        return False, (
            f"tag coverage incomplete ({coverage}): an untagged operation "
            "proves nothing and must not pass the gate vacuously"
        )
    by_tag: dict = {}
    writes_by_tag: dict = {}
    for op in tagged:
        by_tag.setdefault(op.tag, set()).add(op.value)
        if op.kind == "write":
            if op.tag in writes_by_tag:
                return False, f"two writes committed under tag {op.tag}"
            writes_by_tag[op.tag] = op
    for tag, values in by_tag.items():
        if len(values) > 1:
            return False, f"operations with tag {tag} observed {len(values)} values"

    ordered = sorted(tagged, key=lambda op: op.start)
    events = sorted(tagged, key=lambda op: op.end)
    max_tag_ended = None
    # Sweep: every op that ended before this op started must not have
    # observed a larger tag; and a write's own tag must not have been
    # observed before the write started.
    j = 0
    for op in ordered:
        while j < len(events) and events[j].end < op.start:
            if max_tag_ended is None or events[j].tag > max_tag_ended:
                max_tag_ended = events[j].tag
            j += 1
        if max_tag_ended is None:
            continue
        if max_tag_ended > op.tag:
            return False, (
                f"operation starting at {op.start:.6f} observed tag {op.tag} "
                f"after an earlier-completed operation observed {max_tag_ended}"
            )
        if op.kind == "write" and max_tag_ended == op.tag:
            return False, (
                f"write tag {op.tag} was observed before the write started"
            )
    return True, f"linearizable (tag order; {coverage})"
