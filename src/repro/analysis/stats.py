"""Throughput and latency statistics for experiment runs.

The paper reports throughput in Mbit/s of *payload* (values read or
written per second times value size) and latency in milliseconds, each
averaged over at least three runs.  This module provides those exact
aggregations plus the usual percentiles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


def mbit_per_s(payload_bytes: float, seconds: float) -> float:
    """Convert a byte count over a duration to Mbit/s (paper's unit)."""
    if seconds <= 0:
        raise ValueError(f"duration must be > 0, got {seconds}")
    return payload_bytes * 8.0 / seconds / 1e6


@dataclass(frozen=True)
class ThroughputSample:
    """Throughput measured over one window of one run."""

    operations: int
    payload_bytes: int
    seconds: float

    @property
    def ops_per_s(self) -> float:
        # Guard like mbit_per_s: a zero-duration window must raise the
        # same ValueError, not leak a bare ZeroDivisionError.
        if self.seconds <= 0:
            raise ValueError(f"duration must be > 0, got {self.seconds}")
        return self.operations / self.seconds

    @property
    def mbit_per_s(self) -> float:
        return mbit_per_s(self.payload_bytes, self.seconds)


@dataclass(frozen=True)
class LatencyStats:
    """Latency summary over a set of completed operations (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @staticmethod
    def from_samples(samples: Sequence[float]) -> "LatencyStats":
        if not samples:
            return LatencyStats(0, math.nan, math.nan, math.nan, math.nan, math.nan)
        ordered = sorted(samples)
        return LatencyStats(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            p50=percentile(ordered, 50.0),
            p95=percentile(ordered, 95.0),
            p99=percentile(ordered, 99.0),
            max=ordered[-1],
        )

    @property
    def mean_ms(self) -> float:
        return self.mean * 1e3


def percentile(ordered: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile of an already-sorted sequence."""
    if not ordered:
        raise ValueError("no samples")
    if not 0 <= pct <= 100:
        raise ValueError(f"percentile out of range: {pct}")
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[rank - 1]


def mean(values: Iterable[float]) -> float:
    """Plain mean; raises on empty input."""
    items = list(values)
    if not items:
        raise ValueError("no samples")
    return sum(items) / len(items)


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float]:
    """Least-squares fit ``y = slope * x + intercept``.

    Used by benchmark assertions to verify the paper's linear-scaling
    claims (e.g. read throughput vs number of servers, write latency vs
    number of servers).
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two paired samples")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("degenerate x values")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    return slope, mean_y - slope * mean_x


def r_squared(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Coefficient of determination of the least-squares line."""
    slope, intercept = linear_fit(xs, ys)
    mean_y = sum(ys) / len(ys)
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    ss_res = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
    if ss_tot == 0:
        return 1.0
    return 1.0 - ss_res / ss_tot
