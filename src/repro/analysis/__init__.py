"""History recording, linearizability checking and statistics.

* :mod:`repro.analysis.history` — records operation invocation/response
  events from live runs;
* :mod:`repro.analysis.linearizability` — checks a recorded history
  against the atomic-register specification (the paper's correctness
  property), with both an exponential reference checker (Wing–Gong) and a
  fast register-specific checker (Gibbons–Korach style);
* :mod:`repro.analysis.stats` — throughput/latency aggregation used by
  the benchmark harness, including the paper's repeated-run averaging.
"""

from repro.analysis.history import History, Operation
from repro.analysis.linearizability import (
    check_register_history,
    check_register_history_slow,
    check_tagged_history,
)
from repro.analysis.stats import LatencyStats, ThroughputSample, mbit_per_s

__all__ = [
    "History",
    "LatencyStats",
    "Operation",
    "ThroughputSample",
    "check_register_history",
    "check_register_history_slow",
    "check_tagged_history",
    "mbit_per_s",
]
