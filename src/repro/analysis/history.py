"""Operation histories for linearizability checking.

A :class:`History` collects invocation and response events from a live
run (simulated or real).  Each completed operation becomes an
:class:`Operation` with its real-time interval; operations that never
completed (client crashed, run ended) remain *open* and are treated by
the checker as "may or may not have taken effect", which is the standard
treatment for crashed writers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import HistoryError


@dataclass(frozen=True)
class Operation:
    """One completed (or open) operation.

    ``value`` is the written value for writes and the returned value for
    reads.  ``end`` is ``None`` for operations that never completed.
    ``tag`` is the protocol tag observed by the operation when the
    runtime recorded one (used by the fast tag-based checker).
    ``block`` is the block (register) key for multi-register runs — the
    sharded store records one so the history can be partitioned and
    checked per block; single-register runs leave it ``None``.
    """

    client: int
    kind: str  # "read" | "write"
    value: Optional[bytes]
    start: float
    end: Optional[float]
    tag: Optional[object] = None
    block: Optional[int] = None

    @property
    def complete(self) -> bool:
        return self.end is not None

    def overlaps(self, other: "Operation") -> bool:
        """Whether the two operations' real-time intervals overlap."""
        if self.end is not None and self.end < other.start:
            return False
        if other.end is not None and other.end < self.start:
            return False
        return True


class History:
    """Collects invocation/response pairs keyed by (client, op)."""

    def __init__(self) -> None:
        self._open: dict[tuple, tuple] = {}
        self.operations: list[Operation] = []

    def invoke(self, time: float, client: int, op, kind: str, value, block=None) -> None:
        """Record an invocation.  ``op`` must be unique per client.

        ``block`` keys the operation to a register in multi-register
        runs (see :meth:`split_by_block`).
        """
        key = (client, op)
        if key in self._open:
            raise HistoryError(f"duplicate invocation for {key}")
        self._open[key] = (time, kind, value, client, block)

    def respond(self, time: float, client: int, op, value, tag=None) -> None:
        """Record the matching response.

        For writes the recorded value is the one captured at invocation;
        for reads it is the value returned by the storage.
        """
        key = (client, op)
        if key not in self._open:
            raise HistoryError(f"response without invocation for {key}")
        start, kind, written, _client, block = self._open.pop(key)
        recorded = written if kind == "write" else value
        self.operations.append(
            Operation(client, kind, recorded, start, time, tag, block)
        )

    def close(self) -> None:
        """Convert still-open invocations into open operations."""
        for (client, _op), (start, kind, value, _c, block) in self._open.items():
            self.operations.append(
                Operation(client, kind, value, start, None, None, block)
            )
        self._open.clear()

    def split_by_block(self) -> dict[Optional[int], "History"]:
        """Partition the history by block key.

        Every operation lands in exactly one bucket — the block it was
        pinned to at invocation, or ``None`` for operations recorded
        without one.  Blocks are independent registers, so each bucket
        is a complete register history checkable on its own.
        """
        buckets: dict[Optional[int], History] = {}
        for op in self.operations:
            buckets.setdefault(op.block, History()).operations.append(op)
        return buckets

    def completed(self) -> list[Operation]:
        return [op for op in self.operations if op.complete]

    def writes(self) -> list[Operation]:
        return [op for op in self.operations if op.kind == "write"]

    def reads(self) -> list[Operation]:
        return [op for op in self.operations if op.kind == "read"]

    def __len__(self) -> int:
        return len(self.operations)

    @staticmethod
    def of(operations: Iterable[Operation]) -> "History":
        """Build a history directly from operations (tests)."""
        history = History()
        history.operations = list(operations)
        return history
