"""Exception hierarchy shared across the package.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch the whole family with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """An invalid parameter combination was supplied by the caller."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class ProtocolError(ReproError):
    """A protocol state machine received an input it cannot process."""


class CrashedProcessError(ReproError):
    """An operation was attempted on a crashed process."""


class StorageUnavailableError(ReproError):
    """A client exhausted its retries without completing an operation."""


class PlacementStaleError(StorageUnavailableError):
    """A client chased placement redirects past its budget.

    Raised by the sharded :class:`~repro.core.sharded.BlockStore` when an
    operation keeps landing on servers that no longer host its block —
    the placement table moved faster than the client could follow.  A
    subclass of :class:`StorageUnavailableError` so existing callers that
    treat unavailability generically keep working."""


class HistoryError(ReproError):
    """An operation history is malformed (e.g. response without invocation)."""
