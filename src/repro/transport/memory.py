"""In-process message bus for protocol unit tests.

Delivers messages FIFO per (source, destination) pair, with explicit
pumping so tests control interleavings exactly.  Messages optionally
round-trip through the binary codec to catch serialisation bugs in the
same tests that exercise protocol logic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from repro.transport.codec import decode_message, encode_message


class MemoryBus:
    """A deterministic in-memory transport.

    Handlers are registered per endpoint name; ``send`` enqueues,
    ``pump`` (or ``pump_all``) delivers.
    """

    def __init__(self, through_codec: bool = False):
        self.through_codec = through_codec
        self._handlers: dict[str, Callable[[str, Any], None]] = {}
        self._queue: deque[tuple[str, str, Any]] = deque()
        self.delivered = 0
        self.dropped: set[str] = set()

    def register(self, name: str, handler: Callable[[str, Any], None]) -> None:
        self._handlers[name] = handler

    def disconnect(self, name: str) -> None:
        """Drop the endpoint: its queued and future messages vanish."""
        self.dropped.add(name)

    def send(self, src: str, dst: str, message: Any) -> None:
        if self.through_codec:
            message = decode_message(encode_message(message))
        self._queue.append((src, dst, message))

    def pump(self) -> bool:
        """Deliver one message; returns False when idle."""
        while self._queue:
            src, dst, message = self._queue.popleft()
            if dst in self.dropped or src in self.dropped:
                continue
            handler = self._handlers.get(dst)
            if handler is None:
                continue
            self.delivered += 1
            handler(src, message)
            return True
        return False

    def pump_all(self, limit: int = 100_000) -> int:
        """Deliver until idle; returns the number delivered."""
        count = 0
        while self.pump():
            count += 1
            if count > limit:
                raise RuntimeError("MemoryBus did not quiesce")
        return count
