"""Sans-I/O reliable session layer: the implemented TCP of the repo.

The paper assumes reliable FIFO channels between correct processes.  The
simulator used to *assume* that model too — the chaos generator refused
to schedule message loss anywhere a lost frame could violate it.  This
module implements the assumption instead, the same move message-passing
atomic-memory systems make when they build reliable channels out of an
unreliable network:

* **per-link monotone sequence numbers** — every data segment on a
  directed link carries the next sequence number;
* **cumulative acknowledgements** — each segment (data or pure ack)
  carries the highest contiguously-received sequence number of the
  *reverse* direction, so acks piggyback on reverse traffic for free and
  a single ack covers a whole burst;
* **timer-driven retransmission with exponential backoff** — unacked
  segments are resent after ``rto``, which doubles up to ``rto_max`` and
  snaps back to ``rto_initial`` whenever the ack horizon advances;
* **receive-side duplicate and reorder suppression** — segments at or
  below the delivery cursor are dropped (and re-acked, so a retransmit
  storm converges); segments beyond the next expected one are buffered
  and delivered in order once the gap fills.

A :class:`ReliableSession` is one *endpoint* of one directed-pair link:
it owns the send state toward a single peer and the receive state from
that same peer.  Two sessions — one per endpoint — form a link.  The
class is sans-I/O in the same sense as the protocol state machines:
callers pass ``now`` explicitly, transmission is "return a
:class:`Segment` for the caller to put on its wire", and retransmission
is "call :meth:`poll` when :attr:`retransmit_deadline` passes".  The
simulator drives it from the event scheduler
(:mod:`repro.runtime.sim_net`); the asyncio runtime drives it from the
event loop and uses it for cross-connection dedup and
retransmit-on-reconnect (:mod:`repro.runtime.asyncio_net`).

Sessions never give up on a live peer: retransmission continues at
``rto_max`` until the runtime learns the peer is dead and calls
:meth:`reset` (in the simulator, the failure detector / cluster does
this; over TCP, a connection reset does).  That mirrors the model: a
channel between *correct* processes is reliable; a channel to a crashed
process is garbage-collected, not drained.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.errors import ConfigurationError, ProtocolError

#: Wire overhead of the session envelope: two u32s (sequence number and
#: cumulative ack).  The simulator charges this on top of the payload;
#: :func:`encode_segment` produces exactly this many header bytes, so
#: simulated and real transports agree on the session layer's cost.
SEGMENT_HEADER_BYTES = 8

_SEGMENT_HEADER = struct.Struct(">II")


@dataclass(frozen=True)
class Segment:
    """One session-layer frame: a payload-bearing data segment
    (``seq > 0``) or a pure cumulative acknowledgement (``seq == 0``).

    ``ack`` always carries the sender's receive cursor for the reverse
    direction, so every segment acknowledges — pure acks exist only for
    links with no reverse traffic to piggyback on.
    """

    seq: int
    ack: int
    payload: Any = None

    @property
    def is_data(self) -> bool:
        return self.seq > 0


@dataclass(frozen=True)
class ReliableConfig:
    """Session-layer tunables.

    ``rto_initial`` must exceed the healthy round-trip of the deployment
    (serialisation + propagation + ack delay), or every segment is sent
    twice; it only needs to be *safe*, not tight, because duplicates are
    suppressed anyway.
    """

    rto_initial: float = 0.05
    rto_max: float = 0.8
    rto_backoff: float = 2.0
    #: How long a receiver waits for reverse traffic to piggyback its ack
    #: before spending a wire slot on a pure ack.
    ack_delay: float = 0.002

    def validate(self) -> "ReliableConfig":
        if self.rto_initial <= 0:
            raise ConfigurationError("rto_initial must be > 0")
        if self.rto_max < self.rto_initial:
            raise ConfigurationError("rto_max must be >= rto_initial")
        if self.rto_backoff < 1.0:
            raise ConfigurationError("rto_backoff must be >= 1")
        if self.ack_delay < 0:
            raise ConfigurationError("ack_delay must be >= 0")
        return self


@dataclass
class SessionStats:
    """Monotone counters, mirrored into the trace by the runtimes."""

    sent: int = 0
    delivered: int = 0
    retransmits: int = 0
    dups_suppressed: int = 0
    reorders_buffered: int = 0
    acks_sent: int = 0


class ReliableSession:
    """One endpoint of a reliable link to a single peer (sans-I/O)."""

    def __init__(self, config: Optional[ReliableConfig] = None):
        self.config = (config or ReliableConfig()).validate()
        # Send state.
        self._next_seq = 1
        self._unacked: dict[int, Any] = {}  # seq -> payload, insertion-ordered
        self._rto = self.config.rto_initial
        self.retransmit_deadline: Optional[float] = None
        # Receive state.
        self._cursor = 0  # highest contiguously delivered seq
        self._out_of_order: dict[int, Any] = {}
        self.ack_owed = False
        self.stats = SessionStats()

    # -- send side -----------------------------------------------------

    @property
    def in_flight(self) -> int:
        """Number of unacknowledged data segments."""
        return len(self._unacked)

    def send(self, payload: Any, now: float) -> Segment:
        """Assign the next sequence number to ``payload`` and return the
        segment to transmit.  The ack rides along, so any owed ack is
        satisfied by this send."""
        seq = self._next_seq
        self._next_seq += 1
        self._unacked[seq] = payload
        if self.retransmit_deadline is None:
            self.retransmit_deadline = now + self._rto
        self.ack_owed = False
        self.stats.sent += 1
        return Segment(seq, self._cursor, payload)

    def poll(self, now: float) -> list[Segment]:
        """Return the retransmissions due at ``now`` (empty if none).

        Each call that retransmits backs the timer off; the caller
        re-arms its timer from :attr:`retransmit_deadline` afterwards.
        """
        if self.retransmit_deadline is None or now < self.retransmit_deadline:
            return []
        self._rto = min(self._rto * self.config.rto_backoff, self.config.rto_max)
        self.retransmit_deadline = now + self._rto
        self.stats.retransmits += len(self._unacked)
        return [Segment(seq, self._cursor, payload)
                for seq, payload in self._unacked.items()]

    def unacked_segments(self) -> list[Segment]:
        """Every in-flight segment, for retransmit-on-reconnect runtimes
        (the asyncio ring sender resends these on a fresh connection)."""
        return [Segment(seq, self._cursor, payload)
                for seq, payload in self._unacked.items()]

    # -- receive side --------------------------------------------------

    def on_segment(self, segment: Segment, now: float) -> list[Any]:
        """Process an arriving segment; returns the payloads that became
        deliverable, in order.  Sets :attr:`ack_owed` when the segment
        needs acknowledging and no reverse send is imminent."""
        self._on_ack(segment.ack, now)
        if not segment.is_data:
            return []
        self.ack_owed = True
        seq = segment.seq
        if seq <= self._cursor:
            self.stats.dups_suppressed += 1
            return []
        if seq > self._cursor + 1:
            if seq in self._out_of_order:
                self.stats.dups_suppressed += 1
            else:
                self._out_of_order[seq] = segment.payload
                self.stats.reorders_buffered += 1
            return []
        # In-order: deliver it plus any buffered successors.
        delivered = [segment.payload]
        self._cursor = seq
        while self._cursor + 1 in self._out_of_order:
            self._cursor += 1
            delivered.append(self._out_of_order.pop(self._cursor))
        self.stats.delivered += len(delivered)
        return delivered

    def make_ack(self) -> Segment:
        """A pure ack segment for the current receive cursor."""
        self.ack_owed = False
        self.stats.acks_sent += 1
        return Segment(0, self._cursor)

    # -- lifecycle -----------------------------------------------------

    def reset(self) -> None:
        """Abandon the link (peer crashed / connection torn down): drop
        all send and receive state.  Stats survive for reporting."""
        self._next_seq = 1
        self._unacked.clear()
        self._rto = self.config.rto_initial
        self.retransmit_deadline = None
        self._cursor = 0
        self._out_of_order.clear()
        self.ack_owed = False

    def _on_ack(self, ack: int, now: float) -> None:
        if ack <= 0 or not self._unacked:
            return
        # ``_unacked`` is insertion-ordered and seqs are assigned
        # monotonically, so the acked prefix is the dict's front.
        advanced = False
        while self._unacked:
            seq = next(iter(self._unacked))
            if seq > ack:
                break
            del self._unacked[seq]
            advanced = True
        if not advanced:
            return
        self._rto = self.config.rto_initial
        self.retransmit_deadline = (now + self._rto) if self._unacked else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ReliableSession next={self._next_seq} unacked={len(self._unacked)} "
            f"cursor={self._cursor} oob={len(self._out_of_order)}>"
        )


# ----------------------------------------------------------------------
# Wire form (asyncio runtime)
# ----------------------------------------------------------------------


def encode_segment(segment: Segment, encode_payload: Callable[[Any], bytes]) -> bytes:
    """Encode a segment: 8-byte header + encoded payload (data only)."""
    body = encode_payload(segment.payload) if segment.is_data else b""
    return _SEGMENT_HEADER.pack(segment.seq, segment.ack) + body


def decode_segment(data: bytes, decode_payload: Callable[[bytes], Any]) -> Segment:
    """Inverse of :func:`encode_segment`."""
    if len(data) < SEGMENT_HEADER_BYTES:
        raise ProtocolError(f"segment too short: {len(data)} bytes")
    seq, ack = _SEGMENT_HEADER.unpack_from(data)
    payload = decode_payload(data[SEGMENT_HEADER_BYTES:]) if seq > 0 else None
    return Segment(seq, ack, payload)


# ----------------------------------------------------------------------
# Batch frames (ring-frame batching, ProtocolConfig.batch_max_messages)
# ----------------------------------------------------------------------

#: Reserved value in a frame's first header slot marking a batch
#: container.  A data segment's ``seq`` starts at 1 and increments by
#: one per message; reaching 2**32 - 1 would overflow the u32 header
#: long before, so the sentinel can never collide with a real segment.
BATCH_SENTINEL = 0xFFFFFFFF

#: Wire overhead of a batch container: the 8-byte ``(sentinel, count)``
#: header plus a u32 length prefix per enclosed segment.  The simulator
#: charges exactly these bytes for a batched frame, so simulated and
#: real transports keep agreeing on wire cost with batching on.
BATCH_HEADER_BYTES = SEGMENT_HEADER_BYTES
BATCH_ENTRY_BYTES = 4

_BATCH_ENTRY = struct.Struct(">I")


def batch_wire_bytes(segment_bytes: Iterable[int]) -> int:
    """Wire bytes of a batch frame enclosing segments of the given
    individual sizes (each already including its segment header)."""
    total = BATCH_HEADER_BYTES
    for size in segment_bytes:
        total += BATCH_ENTRY_BYTES + size
    return total


def encode_batch(
    segments: Sequence[Segment], encode_payload: Callable[[Any], bytes]
) -> bytes:
    """Encode several segments as one wire frame.

    Layout: ``(BATCH_SENTINEL, count)`` in the 8-byte segment-header
    slot, then each segment's :func:`encode_segment` bytes behind a u32
    length prefix.  Each enclosed segment keeps its own sequence number
    and cumulative ack — the container changes framing only, never
    session semantics.
    """
    if not segments:
        raise ProtocolError("cannot encode an empty batch")
    parts = [_SEGMENT_HEADER.pack(BATCH_SENTINEL, len(segments))]
    for segment in segments:
        encoded = encode_segment(segment, encode_payload)
        parts.append(_BATCH_ENTRY.pack(len(encoded)))
        parts.append(encoded)
    return b"".join(parts)


def decode_batch(data: bytes, decode_payload: Callable[[bytes], Any]) -> list[Segment]:
    """Inverse of :func:`encode_batch`."""
    view = memoryview(data)
    if len(view) < BATCH_HEADER_BYTES:
        raise ProtocolError(f"batch too short: {len(view)} bytes")
    sentinel, count = _SEGMENT_HEADER.unpack_from(view)
    if sentinel != BATCH_SENTINEL:
        raise ProtocolError("not a batch frame")
    offset = BATCH_HEADER_BYTES
    segments = []
    for _ in range(count):
        if offset + BATCH_ENTRY_BYTES > len(view):
            raise ProtocolError("truncated batch entry header")
        (length,) = _BATCH_ENTRY.unpack_from(view, offset)
        offset += BATCH_ENTRY_BYTES
        if offset + length > len(view):
            raise ProtocolError("truncated batch entry")
        segments.append(
            decode_segment(bytes(view[offset : offset + length]), decode_payload)
        )
        offset += length
    if offset != len(view):
        raise ProtocolError(
            f"batch length mismatch: {len(view) - offset} trailing byte(s)"
        )
    return segments


def decode_frame(data: bytes, decode_payload: Callable[[bytes], Any]) -> list[Segment]:
    """Decode one wire frame into its segments, whether it is a plain
    segment (one-element list) or a batch container.  Receivers use
    this uniformly, so a sender may batch or not per frame."""
    if len(data) >= SEGMENT_HEADER_BYTES:
        (first,) = _BATCH_ENTRY.unpack_from(data)
        if first == BATCH_SENTINEL:
            return decode_batch(data, decode_payload)
    return [decode_segment(data, decode_payload)]
