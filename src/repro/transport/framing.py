"""Length-prefixed stream framing for the asyncio TCP runtime.

A frame is a 4-byte big-endian length followed by that many bytes of
codec-encoded message.  :class:`FrameDecoder` is an incremental parser
(sans-I/O): feed it arbitrary chunks, iterate complete frames out.
"""

from __future__ import annotations

import struct

from repro.errors import ProtocolError

_LEN = struct.Struct(">I")

#: Upper bound on a single frame; protects against corrupted lengths.
MAX_FRAME_BYTES = 64 * 1024 * 1024


def frame(payload: bytes) -> bytes:
    """Wrap an encoded message into one frame."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame too large: {len(payload)} bytes")
    return _LEN.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental frame parser."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[bytes]:
        """Append ``data``; return every complete frame payload."""
        self._buffer.extend(data)
        frames = []
        while True:
            if len(self._buffer) < _LEN.size:
                break
            (length,) = _LEN.unpack_from(self._buffer, 0)
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(f"frame length {length} exceeds maximum")
            if len(self._buffer) < _LEN.size + length:
                break
            frames.append(bytes(self._buffer[_LEN.size : _LEN.size + length]))
            del self._buffer[: _LEN.size + length]
        return frames

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)
