"""Wire transports: message codec, in-memory bus and real TCP framing.

* :mod:`repro.transport.codec` — a compact binary codec for every
  protocol message; encodings match the analytic sizes charged by the
  simulator (tested), so simulated and real transports agree on cost;
* :mod:`repro.transport.memory` — an in-process message bus with
  deterministic FIFO delivery, used by protocol unit tests;
* :mod:`repro.transport.framing` — length-prefixed stream framing used
  by the asyncio runtime;
* :mod:`repro.transport.reliable` — the sans-I/O reliable session layer
  (sequence numbers, cumulative acks, retransmission, dedup) both
  runtimes put under every link, turning the paper's reliable-FIFO
  channel assumption into implemented machinery.
"""

from repro.transport.codec import decode_message, encode_message
from repro.transport.framing import FrameDecoder, frame
from repro.transport.memory import MemoryBus
from repro.transport.reliable import (
    SEGMENT_HEADER_BYTES,
    ReliableConfig,
    ReliableSession,
    Segment,
    decode_segment,
    encode_segment,
)

__all__ = [
    "FrameDecoder",
    "MemoryBus",
    "ReliableConfig",
    "ReliableSession",
    "SEGMENT_HEADER_BYTES",
    "Segment",
    "decode_message",
    "decode_segment",
    "encode_message",
    "encode_segment",
    "frame",
]
