"""Wire transports: message codec, in-memory bus and real TCP framing.

* :mod:`repro.transport.codec` — a compact binary codec for every
  protocol message; encodings match the analytic sizes charged by the
  simulator (tested), so simulated and real transports agree on cost;
* :mod:`repro.transport.memory` — an in-process message bus with
  deterministic FIFO delivery, used by protocol unit tests;
* :mod:`repro.transport.framing` — length-prefixed stream framing used
  by the asyncio runtime.
"""

from repro.transport.codec import decode_message, encode_message
from repro.transport.framing import FrameDecoder, frame
from repro.transport.memory import MemoryBus

__all__ = [
    "FrameDecoder",
    "MemoryBus",
    "decode_message",
    "encode_message",
    "frame",
]
