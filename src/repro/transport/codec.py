"""Binary codec for protocol messages.

Encodings are deliberately simple: a one-byte type code, fixed-width
integers (big-endian), and length-prefixed byte strings.  The point is
not compactness records but *agreement with the simulator*: for the
client and ring data messages, ``len(encode_message(m))`` equals
``repro.core.messages.payload_size(m)`` (enforced by tests), so a
benchmark run over real sockets moves exactly the bytes the simulator
charges.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Iterable, TypeVar

from repro.core.messages import (
    ClientRead,
    ClientWrite,
    Commit,
    FragmentFetch,
    FragmentReply,
    FragmentStore,
    Heartbeat,
    LeaseGrant,
    LeaseRevoke,
    OpId,
    PendingEntry,
    PreWrite,
    ReadAck,
    ReadFence,
    ReconfigCommit,
    ReconfigToken,
    RejoinRequest,
    StaleEpochNotice,
    StateSync,
    WriteAck,
)
from repro.core.tags import Tag
from repro.errors import ProtocolError

_TYPE_CODES = {
    ClientWrite: 1,
    WriteAck: 2,
    ClientRead: 3,
    ReadAck: 4,
    PreWrite: 5,
    Commit: 6,
    StateSync: 7,
    ReconfigToken: 8,
    ReconfigCommit: 9,
    RejoinRequest: 10,
    StaleEpochNotice: 11,
    Heartbeat: 12,
    LeaseGrant: 13,
    LeaseRevoke: 14,
    ReadFence: 15,
    FragmentStore: 16,
    FragmentFetch: 17,
    FragmentReply: 18,
}
#: Tag encoded as 8-byte ts + 4-byte server id (signed: Tag.ZERO is -1).
_TAG = struct.Struct(">qi")
#: OpId encoded as 8-byte client + 4-byte sequence.
_OP = struct.Struct(">qi")


def _encode_header(code: int, body_len: int) -> bytes:
    """8 bytes: type code, 3 reserved, body length."""
    return struct.pack(">B3xI", code, body_len)


def _tag_bytes(tag: Tag) -> bytes:
    return _TAG.pack(tag.ts, tag.server_id)


def _read_tag(view: memoryview, offset: int) -> tuple[Tag, int]:
    ts, sid = _TAG.unpack_from(view, offset)
    return Tag(ts, sid), offset + _TAG.size

def _op_bytes(op: OpId) -> bytes:
    return _OP.pack(op.client, op.seq)


def _read_op(view: memoryview, offset: int) -> tuple[OpId, int]:
    client, seq = _OP.unpack_from(view, offset)
    return OpId(client, seq), offset + _OP.size


def _tags_bytes(tags: Iterable[Tag]) -> bytes:
    return b"".join(_tag_bytes(t) for t in tags)


# ----------------------------------------------------------------------
# Per-type body encoders/decoders.  Dispatch happens through a dict
# lookup on the message type (or wire code) instead of an isinstance
# chain: encode/decode run once per message on the ring hot path, and
# the chain walked ~half the table for the common PreWrite/Commit case.
# ----------------------------------------------------------------------


def _encode_client_write(message: ClientWrite) -> bytes:
    return _op_bytes(message.op) + message.value


def _encode_write_ack(message: WriteAck) -> bytes:
    tag = message.tag if message.tag is not None else Tag.ZERO
    return _op_bytes(message.op) + _tag_bytes(tag)


def _encode_client_read(message: ClientRead) -> bytes:
    session = message.session if message.session is not None else Tag.ZERO
    return _op_bytes(message.op) + _tag_bytes(session)


def _encode_read_ack(message: ReadAck) -> bytes:
    return _op_bytes(message.op) + _tag_bytes(message.tag) + message.value


def _encode_pre_write(message: PreWrite) -> bytes:
    return (
        _tag_bytes(message.tag)
        + _op_bytes(message.op)
        + struct.pack(">q", message.epoch)
        + struct.pack(">I", len(message.commits))
        + _tags_bytes(message.commits)
        + message.value
    )


def _encode_commit(message: Commit) -> bytes:
    return struct.pack(">q", message.epoch) + _tags_bytes(message.commits)


def _encode_state_sync(message: StateSync) -> bytes:
    return (
        _tag_bytes(message.tag)
        + struct.pack(">q", message.epoch)
        + struct.pack(">I", len(message.commits))
        + _tags_bytes(message.commits)
        + message.value
    )


def _encode_rejoin_request(message: RejoinRequest) -> bytes:
    return struct.pack(">iIq", message.server_id, message.generation, message.epoch)


def _encode_stale_epoch(message: StaleEpochNotice) -> bytes:
    return struct.pack(">qi", message.epoch, message.sender)


def _encode_heartbeat(message: Heartbeat) -> bytes:
    return struct.pack(">i", message.server_id)


def _encode_lease_grant(message: LeaseGrant) -> bytes:
    return struct.pack(">iqd", message.grantor, message.epoch, message.sent_at)


def _encode_lease_revoke(message: LeaseRevoke) -> bytes:
    return struct.pack(">iq", message.grantor, message.epoch)


def _encode_read_fence(message: ReadFence) -> bytes:
    return struct.pack(">qiq", message.nonce, message.origin, message.epoch)


def _encode_fragment_store(message: FragmentStore) -> bytes:
    return (
        _tag_bytes(message.tag)
        + _op_bytes(message.op)
        + struct.pack(">iq", message.index, message.epoch)
        + message.fragment
    )


def _encode_fragment_fetch(message: FragmentFetch) -> bytes:
    return (
        struct.pack(">q", message.nonce)
        + _tag_bytes(message.tag)
        + struct.pack(">iq", message.requester, message.epoch)
    )


def _encode_fragment_reply(message: FragmentReply) -> bytes:
    return (
        struct.pack(">q", message.nonce)
        + _tag_bytes(message.tag)
        + struct.pack(">iq", message.index, message.epoch)
        + message.fragment
    )


def encode_message(message: Any) -> bytes:
    """Serialise ``message`` to bytes (see module docstring)."""
    kind = type(message)
    code = _TYPE_CODES.get(kind)
    if code is None:
        raise ProtocolError(f"cannot encode {kind.__name__}")
    body = _ENCODERS[kind](message)
    return _encode_header(code, len(body)) + body


def _decode_client_write(body: memoryview) -> ClientWrite:
    op, offset = _read_op(body, 0)
    return ClientWrite(op, bytes(body[offset:]))


def _decode_write_ack(body: memoryview) -> WriteAck:
    op, offset = _read_op(body, 0)
    tag, _ = _read_tag(body, offset)
    return WriteAck(op, None if tag == Tag.ZERO else tag)


def _decode_client_read(body: memoryview) -> ClientRead:
    op, offset = _read_op(body, 0)
    session, _ = _read_tag(body, offset)
    return ClientRead(op, None if session == Tag.ZERO else session)


def _decode_read_ack(body: memoryview) -> ReadAck:
    op, offset = _read_op(body, 0)
    tag, offset = _read_tag(body, offset)
    return ReadAck(op, bytes(body[offset:]), tag)


def _read_commit_block(body: memoryview, offset: int) -> tuple[tuple, int]:
    (count,) = struct.unpack_from(">I", body, offset)
    offset += 4
    commits = []
    for _ in range(count):
        commit, offset = _read_tag(body, offset)
        commits.append(commit)
    return tuple(commits), offset


def _decode_pre_write(body: memoryview) -> PreWrite:
    tag, offset = _read_tag(body, 0)
    op, offset = _read_op(body, offset)
    (epoch,) = struct.unpack_from(">q", body, offset)
    commits, offset = _read_commit_block(body, offset + 8)
    return PreWrite(tag, bytes(body[offset:]), op, commits, epoch)


def _decode_commit(body: memoryview) -> Commit:
    (epoch,) = struct.unpack_from(">q", body, 0)
    commits = []
    offset = 8
    while offset < len(body):
        tag, offset = _read_tag(body, offset)
        commits.append(tag)
    return Commit(tuple(commits), epoch)


def _decode_state_sync(body: memoryview) -> StateSync:
    tag, offset = _read_tag(body, 0)
    (epoch,) = struct.unpack_from(">q", body, offset)
    commits, offset = _read_commit_block(body, offset + 8)
    return StateSync(tag, bytes(body[offset:]), commits, epoch)


def _decode_rejoin_request(body: memoryview) -> RejoinRequest:
    server_id, generation, epoch = struct.unpack_from(">iIq", body, 0)
    return RejoinRequest(server_id, generation, epoch)


def _decode_stale_epoch(body: memoryview) -> StaleEpochNotice:
    epoch, sender = struct.unpack_from(">qi", body, 0)
    return StaleEpochNotice(epoch, sender)


def _decode_heartbeat(body: memoryview) -> Heartbeat:
    (server_id,) = struct.unpack_from(">i", body, 0)
    return Heartbeat(server_id)


def _decode_lease_grant(body: memoryview) -> LeaseGrant:
    grantor, epoch, sent_at = struct.unpack_from(">iqd", body, 0)
    return LeaseGrant(grantor, epoch, sent_at)


def _decode_lease_revoke(body: memoryview) -> LeaseRevoke:
    grantor, epoch = struct.unpack_from(">iq", body, 0)
    return LeaseRevoke(grantor, epoch)


def _decode_read_fence(body: memoryview) -> ReadFence:
    nonce, origin, epoch = struct.unpack_from(">qiq", body, 0)
    return ReadFence(nonce, origin, epoch)


def _decode_fragment_store(body: memoryview) -> FragmentStore:
    tag, offset = _read_tag(body, 0)
    op, offset = _read_op(body, offset)
    index, epoch = struct.unpack_from(">iq", body, offset)
    return FragmentStore(tag, op, index, bytes(body[offset + 12 :]), epoch)


def _decode_fragment_fetch(body: memoryview) -> FragmentFetch:
    (nonce,) = struct.unpack_from(">q", body, 0)
    tag, offset = _read_tag(body, 8)
    requester, epoch = struct.unpack_from(">iq", body, offset)
    return FragmentFetch(nonce, tag, requester, epoch)


def _decode_fragment_reply(body: memoryview) -> FragmentReply:
    (nonce,) = struct.unpack_from(">q", body, 0)
    tag, offset = _read_tag(body, 8)
    index, epoch = struct.unpack_from(">iq", body, offset)
    return FragmentReply(nonce, tag, index, bytes(body[offset + 12 :]), epoch)


def decode_message(data: bytes) -> Any:
    """Inverse of :func:`encode_message`.

    Any body shorter than its fixed fields or declared length-prefixed
    fields raises ``ProtocolError("truncated frame")`` — a decoder never
    yields silently short bytes (the pre-hardening failure mode: a
    truncated reconfiguration token decoded into short values that
    round-tripped as plausible state).
    """
    if len(data) < 8:
        raise ProtocolError(f"message too short: {len(data)} bytes")
    code, body_len = struct.unpack_from(">B3xI", data, 0)
    decoder = _DECODERS.get(code)
    if decoder is None:
        raise ProtocolError(f"unknown message type code {code}")
    body = memoryview(data)[8:]
    if len(body) != body_len:
        raise ProtocolError(f"length mismatch: header {body_len}, body {len(body)}")
    try:
        return decoder(body)
    except struct.error as exc:
        # A fixed-width field ran past the end of the body.
        raise ProtocolError("truncated frame") from exc


def _encode_reconfig(message: ReconfigToken | ReconfigCommit) -> bytes:
    parts = [
        struct.pack(
            ">qqiI",
            message.nonce,
            message.epoch,
            message.coordinator,
            len(message.dead),
        ),
        b"".join(struct.pack(">i", d) for d in message.dead),
        struct.pack(">I", len(message.revived)),
        b"".join(struct.pack(">i", r) for r in message.revived),
        _tag_bytes(message.tag),
        struct.pack(">I", len(message.value)),
        message.value,
        struct.pack(">I", len(message.pending)),
    ]
    for entry in message.pending:
        parts.append(_tag_bytes(entry.tag))
        parts.append(_op_bytes(entry.op))
        parts.append(struct.pack(">I", len(entry.value)))
        parts.append(entry.value)
    parts.append(struct.pack(">I", len(message.completed_ops)))
    for client, seq in message.completed_ops:
        parts.append(struct.pack(">qi", client, seq))
    parts.append(struct.pack(">I", len(message.completed_tags)))
    for client, tag in message.completed_tags:
        parts.append(struct.pack(">q", client))
        parts.append(_tag_bytes(tag))
    return b"".join(parts)


_ReconfigT = TypeVar("_ReconfigT", ReconfigToken, ReconfigCommit)


def _read_sized(body: memoryview, offset: int, length: int) -> tuple[bytes, int]:
    """Slice ``length`` declared bytes, refusing to run past the body.

    ``bytes(body[offset : offset + length])`` silently yields *short*
    bytes when the buffer ends early — the truncation bug this helper
    exists to close: every length-prefixed field must either be fully
    present or fail the frame.
    """
    if offset + length > len(body):
        raise ProtocolError("truncated frame")
    return bytes(body[offset : offset + length]), offset + length


def _decode_reconfig(cls: Callable[..., _ReconfigT], body: memoryview) -> _ReconfigT:
    nonce, epoch, coordinator, dead_count = struct.unpack_from(">qqiI", body, 0)
    offset = struct.calcsize(">qqiI")
    dead = []
    for _ in range(dead_count):
        (d,) = struct.unpack_from(">i", body, offset)
        dead.append(d)
        offset += 4
    (revived_count,) = struct.unpack_from(">I", body, offset)
    offset += 4
    revived = []
    for _ in range(revived_count):
        (r,) = struct.unpack_from(">i", body, offset)
        revived.append(r)
        offset += 4
    tag, offset = _read_tag(body, offset)
    (value_len,) = struct.unpack_from(">I", body, offset)
    offset += 4
    value, offset = _read_sized(body, offset, value_len)
    (pending_count,) = struct.unpack_from(">I", body, offset)
    offset += 4
    pending = []
    for _ in range(pending_count):
        entry_tag, offset = _read_tag(body, offset)
        op, offset = _read_op(body, offset)
        (entry_len,) = struct.unpack_from(">I", body, offset)
        offset += 4
        entry_value, offset = _read_sized(body, offset, entry_len)
        pending.append(PendingEntry(entry_tag, entry_value, op))
    (completed_count,) = struct.unpack_from(">I", body, offset)
    offset += 4
    completed = []
    for _ in range(completed_count):
        client, seq = struct.unpack_from(">qi", body, offset)
        completed.append((client, seq))
        offset += struct.calcsize(">qi")
    (tagged_count,) = struct.unpack_from(">I", body, offset)
    offset += 4
    completed_tags = []
    for _ in range(tagged_count):
        (client,) = struct.unpack_from(">q", body, offset)
        offset += 8
        client_tag, offset = _read_tag(body, offset)
        completed_tags.append((client, client_tag))
    return cls(
        nonce=nonce,
        epoch=epoch,
        coordinator=coordinator,
        dead=tuple(dead),
        tag=tag,
        value=value,
        pending=tuple(pending),
        completed_ops=tuple(completed),
        revived=tuple(revived),
        completed_tags=tuple(completed_tags),
    )


_ENCODERS = {
    ClientWrite: _encode_client_write,
    WriteAck: _encode_write_ack,
    ClientRead: _encode_client_read,
    ReadAck: _encode_read_ack,
    PreWrite: _encode_pre_write,
    Commit: _encode_commit,
    StateSync: _encode_state_sync,
    ReconfigToken: _encode_reconfig,
    ReconfigCommit: _encode_reconfig,
    RejoinRequest: _encode_rejoin_request,
    StaleEpochNotice: _encode_stale_epoch,
    Heartbeat: _encode_heartbeat,
    LeaseGrant: _encode_lease_grant,
    LeaseRevoke: _encode_lease_revoke,
    ReadFence: _encode_read_fence,
    FragmentStore: _encode_fragment_store,
    FragmentFetch: _encode_fragment_fetch,
    FragmentReply: _encode_fragment_reply,
}

_DECODERS = {
    _TYPE_CODES[ClientWrite]: _decode_client_write,
    _TYPE_CODES[WriteAck]: _decode_write_ack,
    _TYPE_CODES[ClientRead]: _decode_client_read,
    _TYPE_CODES[ReadAck]: _decode_read_ack,
    _TYPE_CODES[PreWrite]: _decode_pre_write,
    _TYPE_CODES[Commit]: _decode_commit,
    _TYPE_CODES[StateSync]: _decode_state_sync,
    _TYPE_CODES[ReconfigToken]: lambda body: _decode_reconfig(ReconfigToken, body),
    _TYPE_CODES[ReconfigCommit]: lambda body: _decode_reconfig(ReconfigCommit, body),
    _TYPE_CODES[RejoinRequest]: _decode_rejoin_request,
    _TYPE_CODES[StaleEpochNotice]: _decode_stale_epoch,
    _TYPE_CODES[Heartbeat]: _decode_heartbeat,
    _TYPE_CODES[LeaseGrant]: _decode_lease_grant,
    _TYPE_CODES[LeaseRevoke]: _decode_lease_revoke,
    _TYPE_CODES[ReadFence]: _decode_read_fence,
    _TYPE_CODES[FragmentStore]: _decode_fragment_store,
    _TYPE_CODES[FragmentFetch]: _decode_fragment_fetch,
    _TYPE_CODES[FragmentReply]: _decode_fragment_reply,
}
