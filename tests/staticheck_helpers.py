"""Helpers for the staticheck fixture tests.

Snippets are written under ``tmp_path/repro/...`` because the analyzer
relativises paths to the last ``repro`` segment — a fixture at
``tmp/repro/sim/foo.py`` is scoped exactly like the real
``src/repro/sim/foo.py``.
"""

from __future__ import annotations

from pathlib import Path

from repro.staticheck import run_paths


def run_tree(tmp_path: Path, files: dict[str, str]):
    """Write ``files`` (repro-relative path -> source) and analyze them."""
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
    return run_paths([str(tmp_path)])


def rules_of(violations) -> list[str]:
    return sorted({violation.rule for violation in violations})
