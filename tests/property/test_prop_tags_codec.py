"""Property-based tests: tag ordering laws and codec round-trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import (
    ClientRead,
    ClientWrite,
    Commit,
    OpId,
    PendingEntry,
    PreWrite,
    ReadAck,
    ReconfigCommit,
    ReconfigToken,
    StateSync,
    WriteAck,
    payload_size,
)
from repro.core.tags import Tag, max_tag
from repro.transport.codec import decode_message, encode_message
from repro.transport.framing import FrameDecoder, frame

tags = st.builds(Tag, st.integers(0, 2**40), st.integers(0, 1000))
ops = st.builds(OpId, st.integers(0, 2**40), st.integers(0, 2**30))
values = st.binary(max_size=200)


@given(tags, tags, tags)
def test_tag_order_is_transitive_total(a, b, c):
    assert (a < b) or (b < a) or (a == b)
    if a < b and b < c:
        assert a < c
    assert not (a < a)


@given(tags, tags)
def test_tag_order_matches_tuple_order(a, b):
    assert (a < b) == ((a.ts, a.server_id) < (b.ts, b.server_id))


@given(st.lists(tags, min_size=1))
def test_max_tag_is_upper_bound_and_member(ts):
    top = max_tag(ts)
    assert top in ts
    assert all(t <= top for t in ts)


@given(tags, st.integers(0, 100))
def test_next_for_strictly_increases(tag, server_id):
    assert tag.next_for(server_id) > tag


message_strategy = st.one_of(
    st.builds(ClientWrite, ops, values),
    st.builds(WriteAck, ops, st.one_of(st.none(), tags)),
    st.builds(ClientRead, ops),
    st.builds(ReadAck, ops, values, tags),
    st.builds(PreWrite, tags, values, ops, st.lists(tags, max_size=5).map(tuple)),
    st.builds(Commit, st.lists(tags, max_size=8).map(tuple)),
    st.builds(StateSync, tags, values, st.lists(tags, max_size=5).map(tuple)),
    st.builds(
        ReconfigToken,
        st.integers(0, 2**30),
        st.integers(0, 100),
        st.integers(0, 100),
        st.lists(st.integers(0, 100), max_size=4).map(tuple),
        tags,
        values,
        st.lists(st.builds(PendingEntry, tags, values, ops), max_size=3).map(tuple),
        st.lists(st.tuples(st.integers(0, 2**40), st.integers(0, 2**30)), max_size=3).map(tuple),
        revived=st.lists(st.integers(0, 100), max_size=2).map(tuple),
        completed_tags=st.lists(
            st.tuples(st.integers(0, 2**40), tags), max_size=3
        ).map(tuple),
    ),
    st.builds(
        ReconfigCommit,
        st.integers(0, 2**30),
        st.integers(0, 100),
        st.integers(0, 100),
        st.lists(st.integers(0, 100), max_size=4).map(tuple),
        tags,
        values,
        st.lists(st.builds(PendingEntry, tags, values, ops), max_size=3).map(tuple),
        st.lists(st.tuples(st.integers(0, 2**40), st.integers(0, 2**30)), max_size=3).map(tuple),
        revived=st.lists(st.integers(0, 100), max_size=2).map(tuple),
        completed_tags=st.lists(
            st.tuples(st.integers(0, 2**40), tags), max_size=3
        ).map(tuple),
    ),
)


@given(message_strategy)
@settings(max_examples=300)
def test_codec_roundtrip(message):
    encoded = encode_message(message)
    assert decode_message(encoded) == message


@given(message_strategy)
@settings(max_examples=300)
def test_codec_length_matches_simulator_charge(message):
    # WriteAck with tag=None decodes fine but the size formula still
    # charges the fixed tag slot; the encoding always includes it.
    assert len(encode_message(message)) == payload_size(message)


@given(st.lists(message_strategy, max_size=6), st.integers(1, 13))
@settings(max_examples=100)
def test_framing_reassembles_any_chunking(messages, chunk):
    stream = b"".join(frame(encode_message(m)) for m in messages)
    decoder = FrameDecoder()
    out = []
    for i in range(0, len(stream), chunk):
        for payload in decoder.feed(stream[i : i + chunk]):
            out.append(decode_message(payload))
    assert out == messages
