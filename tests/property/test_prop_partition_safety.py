"""Property-based partition tolerance under the imperfect detector.

Hypothesis draws random partition/heal schedules (cut placement, window
timing, hold vs drop semantics, optional second cut) against clusters
running the heartbeat failure detector with epoch-guarded,
quorum-installed views, plus an aggressively-retrying client workload.
Two properties must hold on every run:

* the recorded history is linearizable — wrong suspicion may stall
  progress, never break atomicity;
* epochs are *exclusive*: across all servers, each epoch number is
  headed by exactly one reconfiguration commit (one ``(coordinator,
  nonce)``) — two sides of a partition can never both install the same
  epoch, which is the quorum-intersection claim made concrete.
"""

from collections import defaultdict

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import History, check_register_history
from repro.core.config import ProtocolConfig
from repro.runtime.sim_net import SimCluster
from repro.sim.faults import FaultPlan


def drive_paced(cluster, clients, ops_per_client, span, deadline):
    """Closed-loop workload paced across ``span``; stop at ``deadline``
    even if operations are still open (partitions may stall them)."""
    remaining = {"count": len(clients)}
    pacing = span / max(1, ops_per_client)

    def spawn(host, kind, stagger):
        state = {"i": 0}

        def on_complete(_result):
            state["i"] += 1
            if state["i"] >= ops_per_client:
                remaining["count"] -= 1
                return
            cluster.env.scheduler.schedule(pacing, issue)

        def issue():
            if kind == "write":
                value = b"%d:%d" % (host.client_id, state["i"])
                host.write(value + b"!" * 8, on_complete)
            else:
                host.read(on_complete)

        cluster.env.scheduler.schedule(stagger, issue)

    for index, (host, kind) in enumerate(clients):
        spawn(host, kind, stagger=pacing * index / max(1, len(clients)))

    scheduler = cluster.env.scheduler
    while remaining["count"] > 0 and cluster.now < deadline:
        if not scheduler.step():
            break


def assert_epoch_exclusive(cluster):
    """No epoch number is ever headed by two different commits."""
    heads = defaultdict(set)
    for host in cluster.servers.values():
        for epoch, coordinator, nonce in host.proto.view_log:
            heads[epoch].add((coordinator, nonce))
    for epoch, installs in heads.items():
        assert len(installs) == 1, (
            f"epoch {epoch} headed by competing installs {sorted(installs)}"
        )


@given(
    seed=st.integers(0, 10_000),
    num_servers=st.integers(3, 5),
    cut=st.integers(1, 4),
    start=st.floats(0.1, 0.5),
    length=st.floats(0.25, 0.6),
    drop_mode=st.booleans(),
    second_cut=st.one_of(st.none(), st.integers(1, 4)),
    num_writers=st.integers(1, 2),
    num_readers=st.integers(1, 2),
)
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_random_partitions_stay_linearizable_with_exclusive_epochs(
    seed, num_servers, cut, start, length, drop_mode, second_cut,
    num_writers, num_readers,
):
    cut = min(cut, num_servers - 1)
    config = ProtocolConfig(client_timeout=0.25, client_max_retries=40)
    cluster = SimCluster.build(
        num_servers, seed=seed, protocol=config, fd="heartbeat"
    )
    cluster.history = History()

    servers = [f"s{i}" for i in range(num_servers)]
    heal = round(start + length, 4)
    plan = FaultPlan()
    plan.partition(
        [servers[:cut], servers[cut:]],
        at=round(start, 4),
        heal_at=heal,
        mode="drop" if drop_mode else "hold",
    )
    if second_cut is not None:
        cut2 = min(second_cut, num_servers - 1)
        plan.partition(
            [servers[:cut2], servers[cut2:]],
            at=round(heal + 0.2, 4),
            heal_at=round(heal + 0.55, 4),
            mode="hold" if drop_mode else "drop",
        )

    clients = []
    for i in range(num_writers):
        clients.append((cluster.add_client(home_server=i % num_servers), "write"))
    for i in range(num_readers):
        clients.append(
            (cluster.add_client(home_server=(num_writers + i) % num_servers), "read")
        )
    cluster.apply_faults(plan)

    horizon = plan.stall_horizon()
    drive_paced(
        cluster, clients, ops_per_client=6, span=horizon + 0.3,
        deadline=horizon + 4.0,
    )
    cluster.history.close()

    ok, reason = check_register_history(cluster.history)
    assert ok, reason
    assert_epoch_exclusive(cluster)
    # Wrong suspicion must have been survivable, not avoided: partitions
    # longer than the heartbeat timeout suspect live servers.
    if length > 0.3:
        assert cluster.env.trace.counters.get("fd.suspicions", 0) > 0
