"""Determinism property: identical seed => byte-identical event trace.

Chaos failures are only actionable if a failing schedule can be replayed
bit-for-bit from its seed, so the whole simulator — scheduler ordering,
RNG streams, nemesis fault rolls — must be a pure function of the seed.
Two full cluster runs (network traffic, faults, reconfiguration) with
the same seed must produce byte-identical `repro.sim.trace` event logs;
a different seed must not.
"""

from __future__ import annotations

import pytest

from repro.analysis.history import History
from repro.chaos import generate_schedule, run_schedule
from repro.core.config import ProtocolConfig
from repro.runtime.sim_net import SimCluster
from repro.sim.faults import FaultPlan


def _run_cluster(seed: int) -> tuple[bytes, dict]:
    """One full cluster run under faults; returns (trace bytes, counters)."""
    cluster = SimCluster.build(
        num_servers=4,
        seed=seed,
        protocol=ProtocolConfig(client_timeout=0.6, client_max_retries=20),
    )
    cluster.env.trace.record_events = True
    cluster.history = History()

    left = {"n": 4}

    def spawn(host, kind: str) -> None:
        state = {"i": 0}

        def on_complete(result) -> None:
            state["i"] += 1
            if state["i"] >= 6:
                left["n"] -= 1
                return
            cluster.env.scheduler.schedule(0.05, issue)

        def issue() -> None:
            if kind == "write":
                host.write(b"%d:%d" % (host.client_id, state["i"]), on_complete)
            else:
                host.read(on_complete)

        issue()

    for i, kind in enumerate(["write", "write", "read", "read"]):
        spawn(cluster.add_client(home_server=i % 4), kind)

    plan = (
        FaultPlan()
        .partition([["s0", "s1"], ["s2", "s3"]], at=0.05, heal_at=0.12)
        .delay("s1", "s2", at=0.0, until=0.4, extra=0.001, jitter=0.002, symmetric=True)
        .duplicate("c0", "s0", p=0.4, at=0.0, until=0.4, symmetric=True)
        .drop("c1", "s1", p=0.2, at=0.0, until=0.4, symmetric=True)
        .throttle("s3", factor=3.0, at=0.1, until=0.3)
        .pause("s2", at=0.2, resume_at=0.26)
        .crash("s0", at=0.45)
    )
    cluster.apply_faults(plan)
    cluster.run(until=3.0)
    cluster.history.close()

    blob = "\n".join(repr(event) for event in cluster.env.trace.events).encode()
    return blob, dict(cluster.env.trace.counters)


def test_identical_seed_gives_byte_identical_trace():
    blob_a, counters_a = _run_cluster(seed=1234)
    blob_b, counters_b = _run_cluster(seed=1234)
    assert blob_a == blob_b
    assert counters_a == counters_b
    assert counters_a.get("nemesis.delayed", 0) > 0, "faults must have fired"


def test_different_seed_gives_different_trace():
    blob_a, _ = _run_cluster(seed=1234)
    blob_b, _ = _run_cluster(seed=4321)
    # The nemesis jitter/drop rolls depend on the seed, so the timing of
    # deliveries (and hence the event log) must differ.
    assert blob_a != blob_b


@pytest.mark.parametrize("index", [0, 7, 13])
def test_chaos_runs_replay_identically(index):
    """The chaos harness property: a run is a pure function of its
    schedule coordinates — histories and verdicts replay exactly."""
    schedule_a = generate_schedule(seed=5, index=index)
    schedule_b = generate_schedule(seed=5, index=index)
    assert schedule_a == schedule_b
    result_a = run_schedule(schedule_a)
    result_b = run_schedule(schedule_b)
    assert result_a.linearizable and result_b.linearizable
    assert result_a.ops_completed == result_b.ops_completed
    assert result_a.exercised == result_b.exercised
