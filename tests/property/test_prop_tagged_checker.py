"""Property-based cross-validation of the tagged checker.

``check_tagged_history`` trusts protocol tags: it accepts exactly when
the tag order is a valid linearization witness.  Two properties pin it
against the value-based search on random small multi-client histories:

* **soundness** — whenever the tagged checker accepts a fully-tagged
  history with unique written values, the value-based checker must
  accept too (the tag order *is* a witness the search must find);
  contrapositively, any history the value search rejects must also be
  rejected by the tag order.
* **completeness on real executions** — histories generated from a
  random valid linearization (operations placed at ordered points
  inside their intervals, tags taken from the committing write) pass
  both checkers.

The reverse of soundness is deliberately not a property: a history can
be value-linearizable through an order *different* from what its tags
claim — that is precisely the protocol bug the tagged checker exists to
catch.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.history import History, Operation
from repro.analysis.linearizability import (
    check_register_history,
    check_tagged_history,
)
from repro.core.tags import Tag


@st.composite
def tagged_histories(draw):
    """Random fully-tagged histories with unique written values.

    Write tags are drawn from a small pool (collisions possible — the
    tagged checker must reject those); each read copies the (value, tag)
    of some write, or the initial value with the zero tag.  Intervals
    overlap arbitrarily, so legal and illegal histories both occur.
    """
    num_writes = draw(st.integers(1, 4))
    num_reads = draw(st.integers(0, 4))
    operations = []
    writes = []
    for i in range(num_writes):
        start = draw(st.integers(0, 20))
        length = draw(st.integers(0, 10))
        tag = Tag(draw(st.integers(1, 5)), draw(st.integers(0, 1)))
        value = bytes([65 + i])
        writes.append((value, tag))
        operations.append(
            Operation(i, "write", value, start, start + length, tag=tag)
        )
    for j in range(num_reads):
        start = draw(st.integers(0, 20))
        length = draw(st.integers(0, 10))
        value, tag = draw(st.sampled_from(writes + [(b"", Tag(0, 0))]))
        operations.append(
            Operation(100 + j, "read", value, start, start + length, tag=tag)
        )
    return History.of(operations)


@given(tagged_histories())
@settings(max_examples=400, deadline=None)
def test_tagged_acceptance_implies_value_acceptance(history):
    tagged_ok, tagged_reason = check_tagged_history(
        history, require_full_coverage=True
    )
    if not tagged_ok:
        return
    value_ok, value_reason = check_register_history(history)
    assert value_ok, (
        f"tag order accepted ({tagged_reason}) but the value search "
        f"rejected ({value_reason}); ops={history.operations}"
    )


@st.composite
def valid_execution_histories(draw):
    """Histories read off a random valid linearization.

    Operations take effect at strictly increasing points; each op's
    interval is drawn to contain its point, so arbitrary concurrency
    arises while a witness order exists by construction.  Tags follow
    the committing write, exactly as the runtimes record them.
    """
    num_ops = draw(st.integers(1, 8))
    operations = []
    value, tag = b"", Tag(0, 0)
    writes = 0
    point = 0
    for i in range(num_ops):
        point += draw(st.integers(1, 3))
        start = point - draw(st.integers(0, 2))
        end = point + draw(st.integers(0, 2))
        if draw(st.booleans()):
            writes += 1
            value, tag = bytes([65 + writes]), Tag(writes, 0)
            operations.append(Operation(i, "write", value, start, end, tag=tag))
        else:
            operations.append(Operation(i, "read", value, start, end, tag=tag))
    return History.of(operations)


@given(valid_execution_histories())
@settings(max_examples=300, deadline=None)
def test_histories_from_valid_executions_pass_both_checkers(history):
    tagged_ok, tagged_reason = check_tagged_history(
        history, require_full_coverage=True
    )
    assert tagged_ok, f"{tagged_reason}; ops={history.operations}"
    value_ok, value_reason = check_register_history(history)
    assert value_ok, f"{value_reason}; ops={history.operations}"
