"""Property-based tests for the event scheduler and wire model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.events import EventScheduler
from repro.sim.wire import WireModel


@given(st.lists(st.floats(0, 1e6, allow_nan=False), max_size=60))
@settings(max_examples=200)
def test_scheduler_fires_in_nondecreasing_time_order(delays):
    sched = EventScheduler()
    fired = []
    for delay in delays:
        sched.schedule(delay, lambda d=delay: fired.append(sched.now))
    sched.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    st.lists(st.tuples(st.floats(0, 100), st.booleans()), max_size=40),
)
@settings(max_examples=200)
def test_cancelled_events_never_fire(entries):
    sched = EventScheduler()
    fired = []
    handles = []
    for delay, cancel in entries:
        handle = sched.schedule(delay, lambda i=len(handles): fired.append(i))
        handles.append((handle, cancel))
    for handle, cancel in handles:
        if cancel:
            handle.cancel()
    sched.run()
    expected = [i for i, (_h, cancel) in enumerate(handles) if not cancel]
    assert sorted(fired) == expected


@given(st.integers(0, 10**7))
@settings(max_examples=300)
def test_wire_bytes_monotone_and_bounded(payload):
    wire = WireModel()
    cost = wire.wire_bytes(payload)
    assert cost >= payload
    assert cost >= wire.min_frame
    # Overhead is at most header + one segment's overhead per MSS chunk
    # of the *framed* payload (header included in segmentation).
    framed = payload + wire.app_header
    max_segments = framed // wire.mss + 1
    assert cost <= max(wire.min_frame, framed + max_segments * wire.segment_overhead)


@given(st.integers(0, 10**6), st.integers(1, 10**6))
@settings(max_examples=200)
def test_wire_bytes_superadditive_in_payload(a, b):
    """Sending one big message never costs more than two smaller ones
    (per-message framing amortises)."""
    wire = WireModel()
    assert wire.wire_bytes(a + b) <= wire.wire_bytes(a) + wire.wire_bytes(b)
