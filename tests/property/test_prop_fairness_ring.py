"""Property-based tests: fairness never starves; ring views stay sane."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fairness import INITIATE_OWN, FairScheduler
from repro.core.ring import RingView


@given(
    st.lists(st.integers(1, 5), min_size=1, max_size=60),
    st.integers(0, 5),
)
@settings(max_examples=200)
def test_fairness_serves_every_enqueued_message(origins, self_id):
    """Everything enqueued is eventually chosen, in per-origin FIFO order."""
    sched = FairScheduler(self_id)
    expected: dict[int, list[int]] = {}
    for index, origin in enumerate(origins):
        sched.enqueue(origin, index)
        expected.setdefault(origin, []).append(index)
    served: dict[int, list[int]] = {}
    for _ in range(len(origins)):
        choice = sched.choose(want_initiate=False)
        assert choice is not None and choice != INITIATE_OWN
        origin, item = choice
        served.setdefault(origin, []).append(item)
    assert served == expected
    assert sched.choose(want_initiate=False) is None


@given(
    st.integers(2, 8),
    st.lists(st.integers(0, 7), max_size=20),
)
@settings(max_examples=200)
def test_fairness_bounded_wait_under_saturation(num_origins, noise):
    """With k active origins, any origin waits at most k picks for its
    turn (the liveness bound behind the paper's l_max)."""
    sched = FairScheduler(server_id=99)
    for origin in range(num_origins):
        for i in range(50):
            sched.enqueue(origin, (origin, i))
    since_served = {origin: 0 for origin in range(num_origins)}
    for _ in range(num_origins * 40):
        origin, _item = sched.choose(want_initiate=False)
        for other in since_served:
            since_served[other] += 1
        since_served[origin] = 0
        assert max(since_served.values()) <= num_origins


@given(st.integers(1, 10), st.data())
@settings(max_examples=200)
def test_ring_view_successor_predecessor_inverse(n, data):
    ring = RingView.initial(n)
    kill = data.draw(st.lists(st.sampled_from(range(n)), unique=True,
                              max_size=n - 1))
    ring = ring.with_dead(kill)
    for server in ring.alive():
        assert ring.predecessor(ring.successor(server)) == server
        assert ring.successor(ring.predecessor(server)) == server


@given(st.integers(2, 10), st.data())
@settings(max_examples=200)
def test_ring_view_adopter_is_alive_and_unique(n, data):
    ring = RingView.initial(n)
    kill = data.draw(st.lists(st.sampled_from(range(n)), unique=True,
                              min_size=1, max_size=n - 1))
    ring = ring.with_dead(kill)
    for dead in ring.dead:
        adopter = ring.adopter(dead)
        assert ring.is_alive(adopter)
        # Walking forward from the adopter, the first member reached in
        # the dead set direction is consistent: recomputing gives the
        # same adopter (determinism across servers).
        assert ring.adopter(dead) == adopter
