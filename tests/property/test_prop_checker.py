"""Property-based cross-validation of the linearizability checkers.

The fast cluster-based register checker must agree with the exponential
Wing–Gong reference on arbitrary small histories — both on acceptances
and rejections.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.history import History, Operation
from repro.analysis.linearizability import (
    check_register_history,
    check_register_history_slow,
)


@st.composite
def small_histories(draw):
    """Random histories with unique written values and arbitrary
    overlapping intervals (reads may return any written value or the
    initial one, so both legal and illegal histories are generated)."""
    num_writes = draw(st.integers(0, 4))
    num_reads = draw(st.integers(0, 4))
    operations = []
    write_values = [bytes([65 + i]) for i in range(num_writes)]
    for i, value in enumerate(write_values):
        start = draw(st.integers(0, 20))
        length = draw(st.integers(0, 10))
        operations.append(Operation(i, "write", value, start, start + length))
    for j in range(num_reads):
        start = draw(st.integers(0, 20))
        length = draw(st.integers(0, 10))
        value = draw(st.sampled_from(write_values + [b""])) if write_values else b""
        operations.append(
            Operation(100 + j, "read", value, start, start + length)
        )
    return History.of(operations)


@given(small_histories())
@settings(max_examples=400, deadline=None)
def test_fast_checker_agrees_with_wing_gong(history):
    fast, fast_reason = check_register_history(history)
    slow, _ = check_register_history_slow(history)
    assert fast == slow, (
        f"disagreement ({fast_reason}); ops={history.operations}"
    )


@given(small_histories())
@settings(max_examples=200, deadline=None)
def test_checker_is_deterministic(history):
    assert check_register_history(history) == check_register_history(history)


@given(st.integers(1, 6))
def test_sequential_histories_always_pass(n):
    operations = []
    t = 0.0
    for i in range(n):
        operations.append(Operation(0, "write", bytes([65 + i]), t, t + 1))
        operations.append(Operation(1, "read", bytes([65 + i]), t + 2, t + 3))
        t += 4
    ok, reason = check_register_history(History.of(operations))
    assert ok, reason
