"""Property-based end-to-end atomicity: random workloads and crash times.

Hypothesis drives the full simulated cluster with random cluster sizes,
client mixes and (optionally) randomly-timed crashes; the recorded
history must always be linearizable.  This is the strongest automated
statement of the paper's correctness claims in the repository.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import History, check_register_history, check_tagged_history
from repro.core.config import ProtocolConfig
from repro.runtime.sim_net import SimCluster


def drive(cluster, clients, ops_per_client):
    remaining = {"count": len(clients)}

    def spawn(host, kind):
        state = {"i": 0}

        def on_complete(_result):
            state["i"] += 1
            if state["i"] >= ops_per_client:
                remaining["count"] -= 1
                return
            issue()

        def issue():
            if kind == "write":
                value = b"%d:%d" % (host.client_id, state["i"])
                host.write(value + b"!" * 8, on_complete)
            else:
                host.read(on_complete)

        issue()

    for host, kind in clients:
        spawn(host, kind)
    cluster.run_until(lambda: remaining["count"] == 0, max_events=5_000_000)


@given(
    num_servers=st.integers(2, 5),
    seed=st.integers(0, 10_000),
    num_writers=st.integers(1, 3),
    num_readers=st.integers(1, 3),
)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_random_failure_free_runs_are_atomic(num_servers, seed, num_writers, num_readers):
    cluster = SimCluster.build(num_servers=num_servers, seed=seed)
    cluster.history = History()
    clients = []
    for i in range(num_writers):
        clients.append((cluster.add_client(home_server=i % num_servers), "write"))
    for i in range(num_readers):
        clients.append((cluster.add_client(home_server=i % num_servers), "read"))
    drive(cluster, clients, ops_per_client=6)
    cluster.history.close()
    ok, reason = check_register_history(cluster.history)
    assert ok, reason
    ok, reason = check_tagged_history(cluster.history)
    assert ok, reason


@given(
    num_servers=st.integers(3, 5),
    seed=st.integers(0, 10_000),
    crash_at_us=st.integers(100, 20_000),
    victim_index=st.integers(0, 4),
)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_random_crash_timing_preserves_atomicity(num_servers, seed, crash_at_us, victim_index):
    config = ProtocolConfig(client_timeout=0.1, client_max_retries=40)
    cluster = SimCluster.build(num_servers=num_servers, seed=seed, protocol=config)
    cluster.history = History()
    victim = victim_index % num_servers
    cluster.env.scheduler.schedule_at(crash_at_us / 1e6, cluster.crash_server, victim)
    clients = []
    for i in range(2):
        clients.append((cluster.add_client(home_server=i % num_servers), "write"))
    for i in range(3):
        clients.append((cluster.add_client(home_server=(i + 1) % num_servers), "read"))
    drive(cluster, clients, ops_per_client=5)
    cluster.history.close()
    ok, reason = check_register_history(cluster.history)
    assert ok, f"seed={seed} crash@{crash_at_us}us victim={victim}: {reason}"
