"""Property-based tests for ring-frame batching.

Two claims back the `batch_max_messages` knob:

* the batch container round-trips byte-exactly, and every enclosed
  segment's bytes are exactly what `encode_segment`/`encode_message`
  would produce standalone (the container changes framing, not
  encodings); and
* a receiver fed random message mixes through batched frames delivers
  the *identical payload sequence* as one fed the same messages one
  frame per segment — batching on/off is invisible above the session
  layer.
"""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import ClientWrite, Commit, OpId, PreWrite, StateSync
from repro.core.tags import Tag
from repro.errors import ProtocolError
from repro.transport.codec import decode_message, encode_message
from repro.transport.reliable import (
    BATCH_ENTRY_BYTES,
    BATCH_HEADER_BYTES,
    BATCH_SENTINEL,
    ReliableSession,
    Segment,
    batch_wire_bytes,
    decode_batch,
    decode_frame,
    encode_batch,
    encode_segment,
)

tags = st.builds(Tag, st.integers(0, 2**40), st.integers(0, 1000))
ops = st.builds(OpId, st.integers(0, 2**40), st.integers(0, 2**30))
values = st.binary(max_size=120)

#: Ring-shaped payloads (what actually rides in batched frames) plus a
#: client write for variety.
messages = st.one_of(
    st.builds(PreWrite, tags, values, ops, st.lists(tags, max_size=4).map(tuple)),
    st.builds(Commit, st.lists(tags, max_size=6).map(tuple)),
    st.builds(StateSync, tags, values, st.lists(tags, max_size=4).map(tuple)),
    st.builds(ClientWrite, ops, values),
)

#: Segments as a sender session would produce them: monotone data seqs
#: or pure acks (seq 0, no payload).
data_segments = st.builds(
    Segment, st.integers(1, 2**31), st.integers(0, 2**31), messages
)
pure_acks = st.builds(Segment, st.just(0), st.integers(0, 2**31))
segments = st.one_of(data_segments, pure_acks)


@given(st.lists(segments, min_size=1, max_size=10))
@settings(max_examples=300)
def test_batch_roundtrips_byte_exactly(segs):
    encoded = encode_batch(segs, encode_message)
    assert decode_batch(encoded, decode_message) == segs
    # Decoding and re-encoding reproduces the identical bytes.
    assert encode_batch(decode_batch(encoded, decode_message), encode_message) == encoded


@given(st.lists(segments, min_size=1, max_size=10))
@settings(max_examples=200)
def test_batch_embeds_standalone_segment_encodings(segs):
    """Cross-validation against encode_segment/encode_message: the batch
    is exactly the sentinel header plus each segment's standalone bytes
    behind a length prefix — and its length matches the simulator's
    wire-byte charge (batch_wire_bytes)."""
    encoded = encode_batch(segs, encode_message)
    standalone = [encode_segment(s, encode_message) for s in segs]
    expected = struct.pack(">II", BATCH_SENTINEL, len(segs)) + b"".join(
        struct.pack(">I", len(b)) + b for b in standalone
    )
    assert encoded == expected
    assert len(encoded) == batch_wire_bytes(len(b) for b in standalone)
    assert len(encoded) == BATCH_HEADER_BYTES + sum(
        BATCH_ENTRY_BYTES + len(b) for b in standalone
    )


@given(segments)
@settings(max_examples=200)
def test_decode_frame_distinguishes_plain_and_batch(segment):
    plain = encode_segment(segment, encode_message)
    assert decode_frame(plain, decode_message) == [segment]
    batched = encode_batch([segment], encode_message)
    assert decode_frame(batched, decode_message) == [segment]
    assert plain != batched  # the container is never mistaken for a segment


@given(
    st.lists(messages, min_size=1, max_size=24),
    st.integers(1, 8),
)
@settings(max_examples=150)
def test_batched_delivery_equals_unbatched_delivery(mix, batch_max):
    """Chunking a message mix into batch frames of any size delivers the
    identical payload sequence as one-segment-per-frame delivery."""
    now = 0.0

    def run(chunked: bool) -> list:
        sender, receiver = ReliableSession(), ReliableSession()
        segs = [sender.send(m, now) for m in mix]
        frames = []
        if chunked:
            for start in range(0, len(segs), batch_max):
                chunk = segs[start : start + batch_max]
                if len(chunk) == 1:
                    frames.append(encode_segment(chunk[0], encode_message))
                else:
                    frames.append(encode_batch(chunk, encode_message))
        else:
            frames = [encode_segment(s, encode_message) for s in segs]
        delivered = []
        for wire in frames:
            for seg in decode_frame(wire, decode_message):
                delivered.extend(receiver.on_segment(seg, now))
        return delivered

    assert run(chunked=True) == run(chunked=False) == mix


def test_empty_batch_is_rejected():
    with pytest.raises(ProtocolError):
        encode_batch([], encode_message)


def test_truncated_batch_is_rejected():
    seg = Segment(1, 0, Commit((Tag(3, 1),)))
    encoded = encode_batch([seg, seg], encode_message)
    with pytest.raises(ProtocolError):
        decode_batch(encoded[:-3], decode_message)
    with pytest.raises(ProtocolError):
        decode_batch(encoded + b"\x00", decode_message)


def test_sentinel_is_unreachable_as_a_sequence_number():
    """Seqs start at 1 and increment by one per message; the sentinel
    sits at the top of the u32 range, so a session would have to send
    2**32 - 1 messages on one link before framing could misparse."""
    session = ReliableSession()
    first = session.send(Commit(()), 0.0)
    assert first.seq == 1
    assert BATCH_SENTINEL == 2**32 - 1
