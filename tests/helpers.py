"""Protocol-driving helpers shared across the test-suite."""

from __future__ import annotations

from repro.analysis.history import History
from repro.core.config import ProtocolConfig
from repro.core.messages import ClientRead, ClientWrite, OpId
from repro.core.ring import RingView
from repro.core.server import ServerProtocol
from repro.runtime.sim_net import SimCluster


def make_servers(n: int, config: ProtocolConfig | None = None) -> list[ServerProtocol]:
    ring = RingView.initial(n)
    return [ServerProtocol(i, ring, config or ProtocolConfig()) for i in range(n)]


class RingHarness:
    """Drives a set of ServerProtocols over an in-memory lossless ring.

    Message delivery is explicit (``pump``), which lets tests control
    interleavings precisely; each pump round lets every server send one
    ring message and delivers everything currently in flight.
    """

    def __init__(self, n: int, config: ProtocolConfig | None = None):
        self.servers = make_servers(n, config)
        self.in_flight: list[tuple[int, object]] = []  # (dst, message)
        self.replies: list = []
        self._next_op = 0

    def server(self, i: int) -> ServerProtocol:
        return self.servers[i]

    def client_write(self, server_id: int, value: bytes, client: int = 900) -> OpId:
        op = OpId(client, self._next_op)
        self._next_op += 1
        self.replies.extend(
            self.servers[server_id].on_client_message(client, ClientWrite(op, value))
        )
        return op

    def client_read(self, server_id: int, client: int = 901) -> OpId:
        op = OpId(client, self._next_op)
        self._next_op += 1
        self.replies.extend(
            self.servers[server_id].on_client_message(client, ClientRead(op))
        )
        return op

    def crash(self, server_id: int) -> None:
        """Deliver a perfect-FD notification to every other server."""
        for server in self.servers:
            if server.server_id != server_id:
                self.replies.extend(server.on_server_crash(server_id))

    def pump(self, rounds: int = 1) -> None:
        """One pump: every alive server sends one message; deliver all."""
        for _ in range(rounds):
            for server in self.servers:
                message = server.next_ring_message()
                if message is not None:
                    self.in_flight.append((server.successor, message))
            deliveries, self.in_flight = self.in_flight, []
            for dst, message in deliveries:
                self.replies.extend(self.servers[dst].on_ring_message(message))
                self.replies.extend(self.servers[dst].drain_replies())

    def pump_until_quiet(self, max_rounds: int = 200) -> None:
        for _ in range(max_rounds):
            if not self.in_flight and not any(s.has_ring_work for s in self.servers):
                return
            self.pump()
        raise AssertionError("ring did not quiesce")

    def acks_for(self, op: OpId) -> list:
        return [r for r in self.replies if getattr(r.message, "op", None) == op]


def run_recorded_cluster(num_servers: int, script, seed: int = 0, **kwargs):
    """Build a cluster with history recording, run ``script(cluster)``,
    return the closed history."""
    cluster = SimCluster.build(num_servers=num_servers, seed=seed, **kwargs)
    cluster.history = History()
    script(cluster)
    cluster.history.close()
    return cluster.history
