"""Shared pytest fixtures (driving helpers live in tests.helpers)."""

from __future__ import annotations

import pytest

from repro.core.ring import RingView
from tests.helpers import RingHarness


@pytest.fixture
def ring5() -> RingView:
    return RingView.initial(5)


@pytest.fixture
def harness3() -> RingHarness:
    return RingHarness(3)


@pytest.fixture
def harness5() -> RingHarness:
    return RingHarness(5)
