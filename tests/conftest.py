"""Shared pytest fixtures (driving helpers live in tests.helpers)."""

from __future__ import annotations

import random

import pytest

from repro.core.ring import RingView
from tests.helpers import RingHarness


@pytest.fixture(autouse=True)
def _global_rng_guard():
    """Fail any test that draws from the process-global ``random`` stream.

    Same guard as ``benchmarks/conftest.py``: all randomness in the tree
    must flow through seeded per-cluster RNG registries, or run-to-run
    results diverge.  A test that *wants* process-global randomness should
    seed and restore the state itself (none currently do).
    """
    state = random.getstate()
    yield
    assert random.getstate() == state, (
        "test touched the process-global random stream; use the seeded "
        "cluster RNG registry (env.rng.stream(...)) instead"
    )


@pytest.fixture
def ring5() -> RingView:
    return RingView.initial(5)


@pytest.fixture
def harness3() -> RingHarness:
    return RingHarness(3)


@pytest.fixture
def harness5() -> RingHarness:
    return RingHarness(5)
