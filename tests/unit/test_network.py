"""Unit tests for the network fabric: unicast path and multicast collisions."""

import pytest

from repro.errors import SimulationError
from repro.sim.env import SimEnv
from repro.sim.network import Network
from repro.sim.nic import Nic
from repro.sim.wire import WireModel


def _net(env, bandwidth=8_000.0, prop=0.01):
    wire = WireModel(app_header=0, segment_overhead=0, min_frame=1, mss=10**9)
    net = Network(env, "lan", wire, propagation_delay=prop)
    nics = [Nic(env, f"n{i}", bandwidth) for i in range(3)]
    for nic in nics:
        net.attach(nic)
    return net, nics


def test_unicast_charges_tx_prop_rx():
    env = SimEnv()
    net, nics = _net(env)
    got = []
    net.unicast(nics[0], nics[1], 500, "hello", lambda m: got.append((m, env.now)))
    env.run_until_idle()
    # 0.5s tx + 0.01 prop + 0.5s rx.
    assert got == [("hello", pytest.approx(1.01))]


def test_unicast_fifo_between_pair():
    env = SimEnv()
    net, nics = _net(env)
    got = []
    net.unicast(nics[0], nics[1], 100, "a", got.append)
    net.unicast(nics[0], nics[1], 100, "b", got.append)
    env.run_until_idle()
    assert got == ["a", "b"]


def test_unicast_requires_attached_nics():
    env = SimEnv()
    net, nics = _net(env)
    stranger = Nic(env, "x", 8_000)
    with pytest.raises(SimulationError):
        net.unicast(nics[0], stranger, 10, "m", lambda m: None)


def test_nic_cannot_attach_twice():
    env = SimEnv()
    net, nics = _net(env)
    other = Network(env, "other")
    with pytest.raises(SimulationError):
        other.attach(nics[0])


def test_multicast_delivers_to_all_without_contention():
    env = SimEnv()
    net, nics = _net(env)
    got = []
    net.multicast(nics[0], [nics[1], nics[2]], 100, "m", lambda d, m: got.append(d.name))
    env.run_until_idle()
    assert sorted(got) == ["n1", "n2"]
    assert env.trace.counters["lan.multicasts"] == 1
    assert env.trace.counters.get("lan.collisions", 0) == 0


def test_overlapping_multicasts_collide_and_retry():
    env = SimEnv()
    net, nics = _net(env)
    got = []
    net.multicast(nics[0], [nics[2]], 500, "a", lambda d, m: got.append(m))
    net.multicast(nics[1], [nics[2]], 500, "b", lambda d, m: got.append(m))
    env.run_until_idle()
    # Both frames eventually deliver (after backoff), and at least one
    # collision was recorded.
    assert sorted(got) == ["a", "b"]
    assert env.trace.counters["lan.collisions"] >= 1


def test_crashed_receiver_drops_frames():
    env = SimEnv()
    net, nics = _net(env)

    class FakeOwner:
        alive = False

    nics[1].owner = FakeOwner()
    got = []
    net.unicast(nics[0], nics[1], 100, "m", got.append)
    env.run_until_idle()
    assert got == []


def test_crashed_sender_loses_in_flight_frame():
    env = SimEnv()
    net, nics = _net(env)

    class Owner:
        alive = True

    owner = Owner()
    nics[0].owner = owner
    got = []
    net.unicast(nics[0], nics[1], 500, "m", got.append)
    env.scheduler.run(until=0.2)  # mid-transmission
    owner.alive = False
    env.run_until_idle()
    assert got == []
