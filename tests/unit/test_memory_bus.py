"""Unit tests for the in-memory transport bus."""

from repro.core.messages import ClientRead, OpId
from repro.transport.memory import MemoryBus


def test_fifo_delivery():
    bus = MemoryBus()
    got = []
    bus.register("b", lambda src, m: got.append((src, m)))
    bus.send("a", "b", 1)
    bus.send("a", "b", 2)
    assert bus.pump_all() == 2
    assert got == [("a", 1), ("a", 2)]


def test_pump_one_at_a_time():
    bus = MemoryBus()
    got = []
    bus.register("b", lambda src, m: got.append(m))
    bus.send("a", "b", 1)
    bus.send("a", "b", 2)
    assert bus.pump() is True
    assert got == [1]
    bus.pump_all()
    assert got == [1, 2]
    assert bus.pump() is False


def test_disconnect_drops_messages():
    bus = MemoryBus()
    got = []
    bus.register("b", lambda src, m: got.append(m))
    bus.send("a", "b", 1)
    bus.disconnect("b")
    bus.send("a", "b", 2)
    bus.pump_all()
    assert got == []


def test_codec_roundtrip_mode():
    bus = MemoryBus(through_codec=True)
    got = []
    bus.register("b", lambda src, m: got.append(m))
    message = ClientRead(OpId(1, 2))
    bus.send("a", "b", message)
    bus.pump_all()
    assert got == [message]
    assert got[0] is not message, "message was re-materialised via the codec"


def test_unregistered_destination_ignored():
    bus = MemoryBus()
    bus.send("a", "nowhere", 1)
    assert bus.pump_all() == 0
