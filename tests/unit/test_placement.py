"""Unit tests for the versioned placement table and rebalance policy."""

import pytest

from repro.core.placement import (
    MigrationPlan,
    PlacementTable,
    plan_rebalance,
)
from repro.errors import ConfigurationError


def _table(num_blocks=4, rings=((0, 1), (2, 3)), pack=False):
    return PlacementTable.initial(num_blocks, list(rings), pack=pack)


# ----------------------------------------------------------------------
# PlacementTable
# ----------------------------------------------------------------------


def test_initial_spreads_blocks_contiguously():
    table = _table(num_blocks=4)
    assert table.blocks_on(0) == (0, 1)
    assert table.blocks_on(1) == (2, 3)
    assert table.servers_of(0) == (0, 1)
    assert table.servers_of(3) == (2, 3)


def test_initial_pack_places_everything_on_ring_zero():
    table = _table(num_blocks=4, pack=True)
    assert table.blocks_on(0) == (0, 1, 2, 3)
    assert table.blocks_on(1) == ()


def test_blocks_of_server_follows_its_ring():
    table = _table(num_blocks=6, rings=((0, 1), (2, 3), (4, 5)))
    assert table.blocks_of(0) == (0, 1)
    assert table.blocks_of(3) == (2, 3)
    assert table.blocks_of(5) == (4, 5)
    assert table.blocks_of(9) == ()


def test_move_bumps_block_and_global_versions():
    table = _table(num_blocks=2)
    assert table.entry(0) == (0, (0, 1))
    table.move(0, 1)
    assert table.ring_of(0) == 1
    assert table.entry(0) == (1, (2, 3))
    assert table.version == 1
    # The untouched block's version is unchanged.
    assert table.entry(1)[0] == 0


def test_move_rejects_noop_and_unknown_ring():
    table = _table(num_blocks=2)
    with pytest.raises(ConfigurationError):
        table.move(0, 0)  # already there
    with pytest.raises(ConfigurationError):
        table.move(0, 7)


def test_rings_must_be_disjoint():
    with pytest.raises(ConfigurationError):
        PlacementTable(rings={0: (0, 1), 1: (1, 2)}, blocks={0: 0})
    with pytest.raises(ConfigurationError):
        PlacementTable(rings={0: ()}, blocks={})
    with pytest.raises(ConfigurationError):
        PlacementTable(rings={0: (0,)}, blocks={0: 3})


# ----------------------------------------------------------------------
# plan_rebalance
# ----------------------------------------------------------------------


def test_balanced_load_plans_nothing():
    table = _table(num_blocks=4)
    loads = {0: 10.0, 1: 10.0, 2: 10.0, 3: 10.0}
    assert plan_rebalance(loads, table) is None


def test_tiny_load_plans_nothing():
    """The min_load floor: noise on a near-idle cluster must not churn."""
    table = _table(num_blocks=4, pack=True)
    assert plan_rebalance({0: 0.4, 1: 0.1}, table, min_load=1.0) is None


def test_imbalance_moves_a_block_to_the_cold_ring():
    table = _table(num_blocks=4, pack=True)
    plan = plan_rebalance({0: 5.0, 1: 4.0, 2: 3.0, 3: 2.0}, table)
    assert plan is not None
    assert plan.source == 0 and plan.dest == 1
    # No block dominates (hottest is 5/14 < 0.5), so this is a plain
    # move of the hottest block — its relocation strictly improves the
    # pair (max(0+5, 14-5) = 9 < 14).
    assert not plan.split
    assert plan.block == 0


def test_dominant_block_triggers_split_evicting_co_resident():
    table = _table(num_blocks=4, pack=True)
    plan = plan_rebalance({0: 50.0, 1: 3.0, 2: 2.0, 3: 1.0}, table)
    assert plan is not None and plan.split
    # The dominant block itself stays put; its hottest co-resident is
    # evicted so block 0 converges toward a dedicated ring.
    assert plan.block == 1
    assert plan.source == 0 and plan.dest == 1


def test_lone_block_ring_cannot_shed():
    """A ring already reduced to one block has nothing to move — even if
    it is the hottest ring on the table."""
    table = _table(num_blocks=2)
    assert table.blocks_on(0) == (0,)
    assert plan_rebalance({0: 100.0, 1: 1.0}, table) is None


def test_single_ring_table_never_plans():
    table = PlacementTable.initial(4, [(0, 1, 2)])
    assert plan_rebalance({0: 100.0, 1: 0.0}, table) is None


def test_policy_is_deterministic_under_ties():
    table = _table(num_blocks=4, pack=True)
    loads = {0: 50.0, 1: 2.0, 2: 2.0, 3: 2.0}
    plans = {plan_rebalance(dict(loads), table).block for _ in range(5)}
    assert plans == {1}, "ties must break toward the lowest block id"


def test_plan_is_a_frozen_value():
    plan = MigrationPlan(block=1, source=0, dest=1, split=True)
    with pytest.raises(AttributeError):
        plan.block = 2
