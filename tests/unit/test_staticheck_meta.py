"""Meta-tests: the committed tree is violation-free, and the checker
actually guards the invariants the acceptance criteria name — deleting
any persist call, un-registering any codec dispatch entry, or renaming a
gated trace counter must each turn the checker red."""

from __future__ import annotations

import re
import shutil
from pathlib import Path

import pytest

from repro.staticheck import run_paths
from tests.staticheck_helpers import rules_of

_SRC = Path(__file__).resolve().parents[2] / "src"
_PERSIST_LINE = re.compile(r"^\s*(?:self|proto)\._maybe_persist\(\)\s*$")


def test_committed_tree_is_violation_free():
    assert run_paths([str(_SRC)]) == []


def _persist_line_indexes() -> list[int]:
    lines = (_SRC / "repro/core/server.py").read_text().splitlines()
    return [i for i, line in enumerate(lines) if _PERSIST_LINE.match(line)]


def test_server_has_persist_calls_to_mutate():
    assert len(_persist_line_indexes()) >= 5


@pytest.mark.parametrize("index", range(len(_persist_line_indexes())))
def test_deleting_any_persist_call_is_caught(tmp_path, index):
    source = _SRC / "repro/core/server.py"
    lines = source.read_text().splitlines(keepends=True)
    del lines[_persist_line_indexes()[index]]
    mutated = tmp_path / "repro/core/server.py"
    mutated.parent.mkdir(parents=True)
    mutated.write_text("".join(lines))
    violations = run_paths([str(tmp_path)])
    assert "writeahead.persist-before-output" in rules_of(violations)


def test_unregistering_codec_entry_is_caught(tmp_path):
    for rel in (
        "repro/core/messages.py",
        "repro/transport/codec.py",
        "repro/transport/reliable.py",
    ):
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text((_SRC / rel).read_text())
    codec = tmp_path / "repro/transport/codec.py"
    lines = codec.read_text().splitlines(keepends=True)
    index = next(
        i
        for i, line in enumerate(lines)
        if re.match(r"^    PreWrite: _encode_pre_write,\s*$", line)
    )
    del lines[index]
    codec.write_text("".join(lines))
    violations = run_paths([str(tmp_path)])
    assert "codec.dispatch" in rules_of(violations)
    assert any("PreWrite" in v.message for v in violations)


def test_renaming_gated_counter_emit_site_is_caught(tmp_path):
    shutil.copytree(_SRC / "repro", tmp_path / "repro")
    sim_net = tmp_path / "repro/runtime/sim_net.py"
    text = sim_net.read_text()
    assert "count(FD_WRONG_SUSPICIONS)" in text
    sim_net.write_text(
        text.replace('count(FD_WRONG_SUSPICIONS)', 'count("fd.wrong_suspicionz")')
    )
    violations = run_paths([str(tmp_path)])
    rules = rules_of(violations)
    # The typo'd emit site is unregistered, and the chaos gate now
    # consumes a counter nothing emits — both fire.
    assert "counters.unregistered" in rules
    assert "counters.consumed-not-emitted" in rules
