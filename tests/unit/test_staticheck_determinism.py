"""Red/green/pragma fixtures for the determinism.* rule family."""

from __future__ import annotations

from tests.staticheck_helpers import rules_of, run_tree


def test_wall_clock_flagged_in_core(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/sim/clock_user.py": (
                "import time\n"
                "\n"
                "def stamp():\n"
                "    return time.time()\n"
            )
        },
    )
    assert rules_of(violations) == ["determinism.wall-clock"]
    assert violations[0].line == 4


def test_wall_clock_via_from_import_and_datetime(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/core/clocks.py": (
                "from time import monotonic\n"
                "import datetime\n"
                "\n"
                "def a():\n"
                "    return monotonic()\n"
                "\n"
                "def b():\n"
                "    return datetime.datetime.now()\n"
            )
        },
    )
    assert rules_of(violations) == ["determinism.wall-clock"]
    assert len(violations) == 2


def test_wall_clock_outside_scope_not_flagged(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/analysis/report_time.py": (
                "import time\n"
                "\n"
                "def stamp():\n"
                "    return time.time()\n"
            )
        },
    )
    assert violations == []


def test_global_rng_flagged_seeded_instance_allowed(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/sim/rng_user.py": (
                "import random\n"
                "from random import randint\n"
                "\n"
                "def bad():\n"
                "    return random.random() + randint(0, 9)\n"
                "\n"
                "def good():\n"
                "    rng = random.Random(7)\n"
                "    return rng.random()\n"
            )
        },
    )
    assert rules_of(violations) == ["determinism.global-rng"]
    assert len(violations) == 2
    assert all(violation.line == 5 for violation in violations)


def test_entropy_sources_flagged(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/transport/nonce.py": (
                "import os\n"
                "import uuid\n"
                "import secrets\n"
                "\n"
                "def nonce():\n"
                "    return os.urandom(8), uuid.uuid4(), secrets.token_bytes(8)\n"
            )
        },
    )
    assert rules_of(violations) == ["determinism.global-rng"]
    assert len(violations) == 3


def test_set_iteration_flagged_sorted_allowed(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/sim/members.py": (
                "def bad(names):\n"
                "    alive = {n for n in names}\n"
                "    order = []\n"
                "    for name in alive:\n"
                "        order.append(name)\n"
                "    return order\n"
                "\n"
                "def good(names):\n"
                "    alive = set(names)\n"
                "    return [name for name in sorted(alive)]\n"
                "\n"
                "def reducers(names):\n"
                "    alive = frozenset(names)\n"
                "    return min(n for n in alive), len(alive)\n"
            )
        },
    )
    assert rules_of(violations) == ["determinism.unordered-iter"]
    assert [violation.line for violation in violations] == [4]


def test_dict_comp_over_set_flagged(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/fd/suspects.py": (
                "def table(ids):\n"
                "    suspected = set(ids)\n"
                "    return {sid: True for sid in suspected}\n"
            )
        },
    )
    assert rules_of(violations) == ["determinism.unordered-iter"]


def test_pragma_suppresses_with_justification(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/sim/clock_user.py": (
                "import time\n"
                "\n"
                "def stamp():\n"
                "    return time.time()  # staticheck: allow(determinism.wall-clock)"
                " -- diagnostic only, nothing simulated reads it\n"
            )
        },
    )
    assert violations == []


def test_family_pragma_on_line_above(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/sim/clock_user.py": (
                "import time\n"
                "\n"
                "def stamp():\n"
                "    # staticheck: allow(determinism) -- wall time is reporting"
                " metadata only\n"
                "    return time.time()\n"
            )
        },
    )
    assert violations == []


def test_pragma_without_justification_is_a_violation(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/sim/clock_user.py": (
                "import time\n"
                "\n"
                "def stamp():\n"
                "    return time.time()  # staticheck: allow(determinism.wall-clock)\n"
            )
        },
    )
    assert rules_of(violations) == ["pragma.unjustified"]


def test_unused_pragma_is_a_violation(tmp_path):
    violations = run_tree(
        tmp_path,
        {
            "repro/sim/tidy.py": (
                "def fine():  # staticheck: allow(determinism.wall-clock)"
                " -- nothing here needs this\n"
                "    return 1\n"
            )
        },
    )
    assert rules_of(violations) == ["pragma.unused"]
